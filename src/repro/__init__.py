"""clMPI reproduction: an OpenCL extension for MPI interoperation.

Reproduces Takizawa et al., *"clMPI: An OpenCL Extension for
Interoperation with the Message Passing Interface"* (IPDPS 2013) as a
pure-Python library: a deterministic discrete-event-simulated GPU cluster
(:mod:`repro.sim`, :mod:`repro.hardware`, :mod:`repro.systems`), simulated
MPI (:mod:`repro.mpi`) and OpenCL (:mod:`repro.ocl`) runtimes, the clMPI
extension itself (:mod:`repro.clmpi`), the paper's evaluation applications
(:mod:`repro.apps`) and the harness regenerating every evaluation table
and figure (:mod:`repro.harness`).

Quick start::

    from repro import ClusterApp, clmpi
    from repro.systems import cichlid

    app = ClusterApp(cichlid(), num_nodes=2)

    def main(ctx):
        q = ctx.queue()
        buf = ctx.ocl.create_buffer(1 << 20)
        if ctx.rank == 0:
            evt = yield from clmpi.enqueue_send_buffer(
                q, buf, False, 0, buf.size, dest=1, tag=0, comm=ctx.comm)
        else:
            evt = yield from clmpi.enqueue_recv_buffer(
                q, buf, False, 0, buf.size, source=0, tag=0, comm=ctx.comm)
        yield from q.finish()

    app.run(main)
"""

from repro import clmpi, cuda, mpi, ocl, sim
from repro.errors import (
    ClmpiError,
    ConfigurationError,
    MpiError,
    OclError,
    ReproError,
)
from repro.launcher import ClusterApp, RankContext, launch

__version__ = "1.0.0"

__all__ = [
    "clmpi",
    "cuda",
    "mpi",
    "ocl",
    "sim",
    "ClusterApp",
    "RankContext",
    "launch",
    "ReproError",
    "ConfigurationError",
    "OclError",
    "MpiError",
    "ClmpiError",
    "__version__",
]
