"""repro.obs — observability: metrics, flow tracing, critical path,
and per-run reports.

Three pieces on top of the simulator's existing tracer:

* :class:`MetricsRegistry` — counters/gauges/histograms attached as
  ``env.metrics`` (zero cost when detached).
* :func:`critical_path` — backward walk over flow-linked trace records
  with per-category attribution; explains *why* a run took this long.
* :class:`RunReport` — deterministic JSON artifact bundling the above,
  produced by the harness for figure runs and sweep points; compare two
  with ``python -m repro.obs diff a.json b.json``.

Two service-facing pieces (PR 9):

* :mod:`repro.obs.telemetry` — job-lifecycle spans, the daemon's
  Prometheus ``/metrics`` exposition, and Perfetto export of a sweep's
  timeline (``python -m repro.obs timeline``).
* :mod:`repro.obs.regress` — CI-aware regression gating between two
  RunReports or BENCH trajectories
  (``python -m repro.obs regress baseline.json current.json``).

See ``docs/observability.md``.
"""

from repro.obs.critical import CriticalPath, critical_path
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.regress import RegressError, compare_artifacts
from repro.obs.report import (REPORT_SCHEMA, STATS_KEYS,
                              SUPPORTED_SCHEMA_VERSIONS, RunReport,
                              build_report, diff_reports,
                              validate_report)
from repro.obs.telemetry import (PROM_CONTENT_TYPE, SpanLog, Telemetry,
                                 render_prometheus, span_structure,
                                 spans_to_chrome_trace)

__all__ = [
    "MetricsRegistry", "merge_snapshots",
    "CriticalPath", "critical_path",
    "RunReport", "REPORT_SCHEMA", "SUPPORTED_SCHEMA_VERSIONS",
    "STATS_KEYS", "build_report", "validate_report",
    "diff_reports",
    "SpanLog", "Telemetry", "PROM_CONTENT_TYPE", "render_prometheus",
    "span_structure", "spans_to_chrome_trace",
    "RegressError", "compare_artifacts",
]
