"""repro.obs — observability: metrics, flow tracing, critical path,
and per-run reports.

Three pieces on top of the simulator's existing tracer:

* :class:`MetricsRegistry` — counters/gauges/histograms attached as
  ``env.metrics`` (zero cost when detached).
* :func:`critical_path` — backward walk over flow-linked trace records
  with per-category attribution; explains *why* a run took this long.
* :class:`RunReport` — deterministic JSON artifact bundling the above,
  produced by the harness for figure runs and sweep points; compare two
  with ``python -m repro.obs diff a.json b.json``.

See ``docs/observability.md``.
"""

from repro.obs.critical import CriticalPath, critical_path
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.report import (REPORT_SCHEMA, STATS_KEYS,
                              SUPPORTED_SCHEMA_VERSIONS, RunReport,
                              build_report, diff_reports,
                              validate_report)

__all__ = [
    "MetricsRegistry", "merge_snapshots",
    "CriticalPath", "critical_path",
    "RunReport", "REPORT_SCHEMA", "SUPPORTED_SCHEMA_VERSIONS",
    "STATS_KEYS", "build_report", "validate_report",
    "diff_reports",
]
