"""CI-aware regression gating between two measurement artifacts.

``python -m repro.obs regress BASELINE.json CURRENT.json`` answers one
question with an exit code: *did performance regress?*  Two artifact
families are understood:

* **RunReports** (:class:`~repro.obs.report.RunReport`, schema v1/v2).
  When both sides carry non-empty schema-v2 ``stats`` the comparison is
  statistical, per Hunold & Carpen-Amarie: overlapping confidence
  intervals ⇒ *no change* (the difference is within measurement noise);
  disjoint intervals ⇒ a directional verdict (regression when current
  is slower).  Without stats the single-shot ``makespan_s`` values are
  compared against a relative threshold (default 5 %).
* **BENCH_*.json trajectories** (the ``benchmarks`` records every PR
  leaves behind).  Each ``mean_s`` leaf is compared; when a sibling
  ``variance_s2``/``samples`` pair exists, Student-t CIs are rebuilt
  from them so the same overlap rule applies; bare means fall back to
  the threshold rule.

Exit codes mirror ``python -m repro.obs diff``: 0 = no regression,
1 = regression detected, 2 = invalid/unreadable input.  ``--json``
emits the full finding list for dashboards.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Optional

from repro.obs.report import validate_report

__all__ = ["compare_artifacts", "load_artifact", "RegressError",
           "DEFAULT_THRESHOLD"]

#: relative slowdown tolerated when no CI information is available
DEFAULT_THRESHOLD = 0.05


class RegressError(ValueError):
    """An artifact could not be read or recognized (CLI exit code 2)."""


def load_artifact(path: str | Path) -> tuple[str, dict]:
    """Read one artifact and classify it: ``("report" | "bench", data)``.

    A dict with a ``benchmarks`` key is a BENCH_*.json trajectory; a
    dict with ``schema_version`` + ``makespan_s`` is a RunReport (and is
    schema-validated).  Anything else raises :class:`RegressError`.
    """
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        raise RegressError(f"cannot read {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise RegressError(f"{path}: expected a JSON object, "
                           f"got {type(data).__name__}")
    if "benchmarks" in data:
        if not isinstance(data["benchmarks"], dict):
            raise RegressError(
                f"{path}: 'benchmarks' must be an object")
        return "bench", data
    if "schema_version" in data and "makespan_s" in data:
        try:
            validate_report(data)
        except ValueError as exc:
            raise RegressError(f"{path}: {exc}") from exc
        return "report", data
    raise RegressError(
        f"{path}: neither a RunReport (schema_version + makespan_s) "
        "nor a BENCH record (benchmarks)")


def _interval_from_stats(stats: dict) -> Optional[tuple[float, float, float]]:
    """``(mean, lo, hi)`` from a schema-v2 stats record, or ``None``."""
    if not stats:
        return None
    try:
        return (float(stats["mean_s"]), float(stats["ci_low"]),
                float(stats["ci_high"]))
    except (KeyError, TypeError, ValueError):
        return None


def _interval_from_bench(leaf: dict) -> Optional[tuple[float, float, float]]:
    """Rebuild a 95 % CI from a bench record's mean/variance/samples."""
    try:
        mean = float(leaf["mean_s"])
        var = float(leaf["variance_s2"])
        n = int(leaf.get("kept", leaf.get("samples", 0)))
    except (KeyError, TypeError, ValueError):
        return None
    if n < 2 or var < 0:
        return (mean, mean, mean)
    # Lazy: keeps repro.obs import-time independent of repro.harness
    # (the harness imports obs lazily for the same layering reason).
    from repro.harness.stats import t_critical
    half = t_critical(n - 1, 0.95) * math.sqrt(var / n)
    return (mean, mean - half, mean + half)


def _judge(name: str, base: tuple[float, float, float],
           cur: tuple[float, float, float],
           threshold: float) -> dict:
    """One finding comparing two ``(mean, lo, hi)`` intervals.

    Degenerate intervals (single-shot: lo == mean == hi on both sides)
    use the relative threshold; otherwise the CI-overlap rule decides.
    Verdicts: ``no-change`` / ``regression`` / ``improvement``.
    """
    b_mean, b_lo, b_hi = base
    c_mean, c_lo, c_hi = cur
    delta = ((c_mean - b_mean) / b_mean) if b_mean else 0.0
    finding = {"metric": name, "baseline_mean_s": b_mean,
               "current_mean_s": c_mean, "delta_rel": delta}
    degenerate = (b_lo == b_hi == b_mean) and (c_lo == c_hi == c_mean)
    if degenerate:
        finding["method"] = "threshold"
        if delta > threshold:
            finding["verdict"] = "regression"
        elif delta < -threshold:
            finding["verdict"] = "improvement"
        else:
            finding["verdict"] = "no-change"
        return finding
    finding["method"] = "ci-overlap"
    finding["baseline_ci"] = [b_lo, b_hi]
    finding["current_ci"] = [c_lo, c_hi]
    if c_lo > b_hi:
        finding["verdict"] = "regression"
    elif c_hi < b_lo:
        finding["verdict"] = "improvement"
    else:
        finding["verdict"] = "no-change"
    return finding


def _bench_leaves(data: dict, prefix: str = "") -> dict[str, dict]:
    """Every dict in the tree that carries a ``mean_s`` key, by path."""
    leaves: dict[str, dict] = {}
    for key in sorted(data):
        value = data[key]
        if not isinstance(value, dict):
            continue
        path = f"{prefix}.{key}" if prefix else key
        if "mean_s" in value:
            leaves[path] = value
        else:
            leaves.update(_bench_leaves(value, path))
    return leaves


def compare_artifacts(baseline_path: str | Path,
                      current_path: str | Path,
                      threshold: float = DEFAULT_THRESHOLD) -> dict:
    """The full regression verdict between two artifacts.

    Returns ``{"kind", "findings": [...], "regressions": n,
    "improvements": n, "verdict": "ok" | "regression"}``.  Raises
    :class:`RegressError` when either side is unreadable or the two
    sides are different artifact families.
    """
    base_kind, base = load_artifact(baseline_path)
    cur_kind, cur = load_artifact(current_path)
    if base_kind != cur_kind:
        raise RegressError(
            f"cannot compare a {base_kind} artifact "
            f"({baseline_path}) against a {cur_kind} artifact "
            f"({current_path})")

    findings: list[dict] = []
    if base_kind == "report":
        b_iv = _interval_from_stats(base.get("stats", {}))
        c_iv = _interval_from_stats(cur.get("stats", {}))
        if b_iv is None or c_iv is None:
            b_mk = float(base["makespan_s"])
            c_mk = float(cur["makespan_s"])
            b_iv = (b_mk, b_mk, b_mk)
            c_iv = (c_mk, c_mk, c_mk)
        findings.append(_judge("makespan_s", b_iv, c_iv, threshold))
    else:
        b_leaves = _bench_leaves(base["benchmarks"])
        c_leaves = _bench_leaves(cur["benchmarks"])
        for name in sorted(set(b_leaves) & set(c_leaves)):
            b_iv = _interval_from_bench(b_leaves[name])
            c_iv = _interval_from_bench(c_leaves[name])
            if b_iv is None or c_iv is None:
                continue
            findings.append(_judge(name, b_iv, c_iv, threshold))
        for name in sorted(set(c_leaves) - set(b_leaves)):
            findings.append({"metric": name, "verdict": "new",
                             "method": "presence"})
        for name in sorted(set(b_leaves) - set(c_leaves)):
            findings.append({"metric": name, "verdict": "removed",
                             "method": "presence"})

    regressions = sum(1 for f in findings
                      if f["verdict"] == "regression")
    improvements = sum(1 for f in findings
                       if f["verdict"] == "improvement")
    return {
        "kind": base_kind,
        "baseline": str(baseline_path),
        "current": str(current_path),
        "threshold": threshold,
        "findings": findings,
        "regressions": regressions,
        "improvements": improvements,
        "verdict": "regression" if regressions else "ok",
    }


def format_verdict(result: dict) -> str:
    """Human-readable rendering of :func:`compare_artifacts` output."""
    lines = [f"{result['baseline']} -> {result['current']} "
             f"({result['kind']} artifacts)"]
    for f in result["findings"]:
        if f["method"] == "presence":
            lines.append(f"  {f['verdict']:>11}: {f['metric']}")
            continue
        mark = {"regression": "!!", "improvement": "ok",
                "no-change": "=="}[f["verdict"]]
        detail = (f"{f['baseline_mean_s']:.6g}s -> "
                  f"{f['current_mean_s']:.6g}s "
                  f"({f['delta_rel'] * 100:+.1f}%)")
        if f["method"] == "ci-overlap":
            b_lo, b_hi = f["baseline_ci"]
            c_lo, c_hi = f["current_ci"]
            detail += (f"  CI [{b_lo:.6g}, {b_hi:.6g}] vs "
                       f"[{c_lo:.6g}, {c_hi:.6g}]")
        lines.append(f"  {mark} {f['verdict']:>11}: "
                     f"{f['metric']}  {detail}")
    lines.append(f"verdict: {result['verdict']} "
                 f"({result['regressions']} regression(s), "
                 f"{result['improvements']} improvement(s))")
    return "\n".join(lines)


def mean_ci_label(stats: dict) -> Optional[str]:
    """``"1.234e-03 ± 5.6e-05 s (n=5)"`` from a stats record, for the
    figure-table footers; ``None`` when the record is empty/invalid."""
    iv = _interval_from_stats(stats)
    if iv is None:
        return None
    mean, lo, hi = iv
    half = (hi - lo) / 2.0
    n = stats.get("repetitions", 0)
    return f"{mean:.6g} ± {half:.3g} s (n={n})"
