"""Per-run reports: a JSON-schema'd bundle of everything we measured.

A :class:`RunReport` is the machine-readable artifact a harness run (or
one cached sweep point) leaves behind: metrics snapshot, per-lane
utilization, overlap fractions, critical-path attribution, and fault
tallies.  Reports are deterministic — no wall-clock timestamps, no host
paths — so same-seed runs serialize byte-identically whether they ran
serially, under ``-j N``, or came out of the warm cache, and
``python -m repro.obs diff`` can triage regressions between any two.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.obs.critical import critical_path
from repro.obs.metrics import MetricsRegistry, merge_snapshots

__all__ = ["RunReport", "REPORT_SCHEMA", "SUPPORTED_SCHEMA_VERSIONS",
           "STATS_KEYS", "build_report", "validate_report",
           "diff_reports"]

SCHEMA_VERSION = 2

#: Schema versions :func:`validate_report` accepts.  Version 1 reports
#: (pre-dating the measurement-statistics fields) remain readable so
#: ``python -m repro.obs diff`` can compare old artifacts against new.
SUPPORTED_SCHEMA_VERSIONS = (1, 2)

#: Keys a non-empty ``stats`` record must carry (see
#: :func:`repro.harness.stats.summarize_samples`).
STATS_KEYS = ("repetitions", "mean_s", "ci_low", "ci_high",
              "rel_variance", "confidence")

#: Minimal JSON-schema-style description of a serialized RunReport.
#: Validated by :func:`validate_report` (hand-rolled walker — the
#: container has no ``jsonschema`` package and we may not install one).
REPORT_SCHEMA: dict = {
    "type": "object",
    "required": ["schema_version", "kind", "spec", "makespan_s",
                 "metrics", "lanes", "overlap", "critical_path",
                 "faults"],
    "properties": {
        "schema_version": {"type": "integer"},
        "kind": {"type": "string"},
        "spec": {"type": "object"},
        "makespan_s": {"type": "number"},
        "metrics": {
            "type": "object",
            "required": ["counters", "gauges", "histograms"],
            "properties": {
                "counters": {"type": "object"},
                "gauges": {"type": "object"},
                "histograms": {"type": "object"},
            },
        },
        "lanes": {"type": "object"},
        "overlap": {"type": "object"},
        "critical_path": {
            "type": "object",
            "required": ["by_category", "fractions", "dominant",
                         "total_s"],
            "properties": {
                "by_category": {"type": "object"},
                "fractions": {"type": "object"},
                "dominant": {"type": "string"},
                "total_s": {"type": "number"},
            },
        },
        "faults": {"type": "object"},
        "stats": {"type": "object"},
    },
}

#: Category pairs whose concurrency the paper cares about (Fig 4):
#: communication/computation overlap and staging/wire pipelining.
_OVERLAP_PAIRS = (("compute", "net"), ("compute", "d2h"),
                  ("compute", "h2d"), ("d2h", "net"), ("net", "h2d"))


@dataclass
class RunReport:
    """One run's measurement artifact (see module docstring)."""

    kind: str
    spec: dict = field(default_factory=dict)
    makespan_s: float = 0.0
    metrics: dict = field(default_factory=lambda: {
        "counters": {}, "gauges": {}, "histograms": {}})
    lanes: dict = field(default_factory=dict)
    overlap: dict = field(default_factory=dict)
    critical_path: dict = field(default_factory=lambda: {
        "by_category": {}, "fractions": {}, "dominant": "",
        "total_s": 0.0})
    faults: dict = field(default_factory=dict)
    #: measurement statistics over repeated runs of the same point
    #: (``repetitions`` / ``mean_s`` / ``ci_low`` / ``ci_high`` /
    #: ``rel_variance`` / ``confidence`` — see
    #: :func:`repro.harness.stats.summarize_samples`); empty for
    #: single-shot runs, which pay nothing for the machinery
    stats: dict = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self) -> str:
        """Canonical serialization (sorted keys, no whitespace) so
        equal reports are byte-equal."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        """Backward-compatible reader: version-1 reports (no ``stats``)
        load with an empty stats record and keep their declared schema
        version, so re-serializing a v1 artifact never silently upgrades
        it."""
        validate_report(data)
        fields = {k: data[k] for k in
                  ("kind", "spec", "makespan_s", "metrics", "lanes",
                   "overlap", "critical_path", "faults",
                   "schema_version")}
        fields["stats"] = data.get("stats", {})
        return cls(**fields)

    @classmethod
    def load(cls, path) -> "RunReport":
        """Read and *validate* a report file.

        Corrupt artifacts fail loudly here — with the offending path in
        the message — instead of deep inside :func:`diff_reports` or a
        regression gate.  Raises ``ValueError`` for both unparseable
        JSON and schema violations.
        """
        try:
            with open(path) as fh:
                data = json.load(fh)
        except ValueError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from exc
        try:
            return cls.from_dict(data)
        except ValueError as exc:
            raise ValueError(f"{path}: {exc}") from exc

    def save(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    def merge(self, other: "RunReport") -> "RunReport":
        """Aggregate two reports (e.g. the points of one figure sweep):
        metrics and critical-path categories sum, makespan takes the
        max, lanes/overlap/stats are dropped (they only make sense per
        run — a merged CI over heterogeneous points would be
        meaningless)."""
        by_cat = dict(self.critical_path.get("by_category", {}))
        for c, v in other.critical_path.get("by_category", {}).items():
            by_cat[c] = by_cat.get(c, 0.0) + v
        total = (self.critical_path.get("total_s", 0.0)
                 + other.critical_path.get("total_s", 0.0))
        dominant = max(sorted(by_cat),
                       key=lambda c: by_cat[c]) if by_cat else ""
        faults = dict(self.faults)
        for k, v in other.faults.items():
            faults[k] = faults.get(k, 0) + v
        return RunReport(
            kind=self.kind, spec={},
            makespan_s=max(self.makespan_s, other.makespan_s),
            metrics=merge_snapshots(self.metrics, other.metrics),
            lanes={}, overlap={},
            critical_path={
                "by_category": {c: by_cat[c] for c in sorted(by_cat)},
                "fractions": ({c: by_cat[c] / total
                               for c in sorted(by_cat)} if total > 0
                              else {}),
                "dominant": dominant,
                "total_s": total,
            },
            faults=faults)


def build_report(kind: str, spec: dict, env,
                 faults: Optional[dict] = None) -> RunReport:
    """Assemble a report from an environment after its run finished.

    Reads ``env.tracer`` (lane utilization, overlap, critical path — all
    empty if tracing was off) and ``env.metrics`` (snapshot — empty if
    detached).  ``faults`` is a tally dict such as
    ``FaultInjector.summary()["by_kind"]``.
    """
    tracer = getattr(env, "tracer", None)
    registry = getattr(env, "metrics", None)
    makespan = float(env.now)
    lanes: dict = {}
    overlap: dict = {}
    cp_summary: dict = {"by_category": {}, "fractions": {},
                        "dominant": "", "total_s": 0.0}
    if tracer is not None and tracer.records:
        lo, hi = tracer.span()
        wall = hi - lo
        for lane in tracer.lanes():
            busy = tracer.busy_time(lane)
            lanes[lane] = {
                "busy_s": busy,
                "utilization": busy / wall if wall > 0 else 0.0,
            }
        for a, b in _OVERLAP_PAIRS:
            t = tracer.overlap_time(a, b)
            if t > 0:
                overlap[f"{a}+{b}"] = t
        cp_summary = critical_path(tracer).summary()
    snapshot = (registry.snapshot() if registry is not None
                else MetricsRegistry().snapshot())
    return RunReport(kind=kind, spec=dict(spec), makespan_s=makespan,
                     metrics=snapshot, lanes=lanes, overlap=overlap,
                     critical_path=cp_summary, faults=dict(faults or {}))


def _check(value, schema, path) -> list[str]:
    errors = []
    expected = schema.get("type")
    checkers = {
        "object": lambda v: isinstance(v, dict),
        "string": lambda v: isinstance(v, str),
        "integer": lambda v: isinstance(v, int)
        and not isinstance(v, bool),
        "number": lambda v: isinstance(v, (int, float))
        and not isinstance(v, bool),
    }
    if expected and not checkers[expected](value):
        return [f"{path}: expected {expected}, "
                f"got {type(value).__name__}"]
    if expected == "object":
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                errors.extend(_check(value[key], sub, f"{path}.{key}"))
    return errors


def validate_report(data: dict) -> None:
    """Raise ``ValueError`` listing every schema violation (if any).

    Accepts every version in :data:`SUPPORTED_SCHEMA_VERSIONS`: the
    ``stats`` record is required from version 2 on, and when non-empty
    must carry the full :data:`STATS_KEYS` set with numeric values.
    """
    errors = _check(data, REPORT_SCHEMA, "report")
    version = data.get("schema_version") if isinstance(data, dict) else None
    if not errors and version not in SUPPORTED_SCHEMA_VERSIONS:
        errors.append(
            f"report.schema_version: expected one of "
            f"{SUPPORTED_SCHEMA_VERSIONS}, got {version!r}")
    if not errors and isinstance(version, int) and version >= 2:
        if "stats" not in data:
            errors.append("report: missing required key 'stats'")
        else:
            stats = data["stats"]
            if stats:  # empty = single-shot run, nothing to check
                for key in STATS_KEYS:
                    if key not in stats:
                        errors.append(
                            f"report.stats: missing required key {key!r}")
                    elif not isinstance(stats[key], (int, float)) \
                            or isinstance(stats[key], bool):
                        errors.append(
                            f"report.stats.{key}: expected number, "
                            f"got {type(stats[key]).__name__}")
    if errors:
        raise ValueError("invalid RunReport: " + "; ".join(errors))


def _flatten(data, prefix="") -> dict:
    flat = {}
    for key in sorted(data) if isinstance(data, dict) else ():
        path = f"{prefix}.{key}" if prefix else str(key)
        value = data[key]
        if isinstance(value, dict):
            flat.update(_flatten(value, path))
        else:
            flat[path] = value
    return flat


def diff_reports(a: dict, b: dict) -> list[str]:
    """Human-readable field-by-field differences between two reports."""
    fa, fb = _flatten(a), _flatten(b)
    lines = []
    for key in sorted(set(fa) | set(fb)):
        va, vb = fa.get(key), fb.get(key)
        if va == vb:
            continue
        if va is None:
            lines.append(f"+ {key}: {vb!r}")
        elif vb is None:
            lines.append(f"- {key}: {va!r}")
        else:
            note = ""
            if (isinstance(va, (int, float)) and isinstance(vb, (int, float))
                    and not isinstance(va, bool) and va):
                note = f"  ({(vb - va) / va * 100:+.1f}%)"
            lines.append(f"~ {key}: {va!r} -> {vb!r}{note}")
    return lines
