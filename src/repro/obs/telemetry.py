"""Service telemetry: job-lifecycle spans and Prometheus exposition.

The sweep service (:mod:`repro.harness.service`) is a long-running
daemon; explaining *one run* (:mod:`repro.obs.report`) is not enough to
operate it.  This module adds the daemon-side observability layer:

* :class:`SpanLog` — an append-only JSONL telemetry log living next to
  the queue journal.  One line per lifecycle transition, rotated at a
  byte budget, with lifetime counters (``spans_written``, ``rotations``)
  persisted in a ``telemetry_stats.json`` sidecar so ``--cache-stats``
  can report them even when no daemon is running.
* :class:`Telemetry` — the in-process hub: every job/point emits a
  deterministic span record (``submit → queued → claimed → running →
  retried/reaped → stored``/``error``) with monotonic durations, and
  completed points feed per-kind latency histograms (the same
  power-of-two buckets as :class:`~repro.obs.metrics.MetricsRegistry`).
* :func:`render_prometheus` — Prometheus text exposition
  (``GET /metrics`` on the service) over the telemetry registry, the
  queue, and the shared store.  Rendering happens only when a scrape
  arrives: a daemon nobody scrapes pays nothing for the exposition.
* :func:`spans_to_chrome_trace` — export a span log to the existing
  Chrome-tracing/Perfetto format, so a whole sweep renders as one
  timeline beside the in-sim flow traces
  (``python -m repro.obs timeline telemetry.jsonl -o trace.json``).

Span *structure* is deterministic: the phase sequence of each
``(job kind, point index)`` is a pure function of the sweep and its
failures, so a serial sweep, a ``-j N`` sweep, and a daemon job over
the same grid produce the same :func:`span_structure` even though
wall-clock durations (and interleavings across points) differ.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Mapping, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["SpanLog", "Telemetry", "PROM_CONTENT_TYPE",
           "render_prometheus", "spans_to_chrome_trace",
           "span_structure", "read_spans", "read_telemetry_stats",
           "PHASES", "TELEMETRY_LOG_NAME", "TELEMETRY_STATS_NAME"]

TELEMETRY_LOG_NAME = "telemetry.jsonl"
TELEMETRY_STATS_NAME = "telemetry_stats.json"

#: lifecycle phases, in order of first possible occurrence (the
#: ``agent_*``/``leased``/``lease_expired``/``duplicate`` phases appear
#: only under federation, so single-daemon span structures are
#: unchanged)
PHASES = ("submit", "queued", "claimed", "leased", "running", "reaped",
          "retried", "deduped", "lease_expired", "duplicate", "stored",
          "error", "done", "agent_up", "agent_lost")

#: Prometheus text-format content type (exposition format 0.0.4)
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: how often the sidecar stats file is refreshed (every N spans)
_STATS_EVERY = 128


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class SpanLog:
    """Append-only JSONL telemetry log with rotation.

    One JSON object per line.  When the live file exceeds ``max_bytes``
    it is renamed to ``<name>.1`` (replacing any previous generation)
    and a fresh file starts — the log can run forever in a daemon
    without eating the disk.  Lifetime counters survive rotation *and*
    process restarts via the ``telemetry_stats.json`` sidecar.

    Writes are flushed but not fsynced: telemetry is an observability
    aid, not the source of truth (that is the queue journal), so losing
    a tail on power-cut is acceptable and the hot path stays cheap.
    """

    def __init__(self, path: Path | str,
                 max_bytes: int = 16 << 20):
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        persisted = read_telemetry_stats(self.stats_path)
        self._spans_written = persisted["spans_written"]
        self._rotations = persisted["rotations"]
        self._fh = open(self.path, "a")

    @property
    def stats_path(self) -> Path:
        return self.path.parent / TELEMETRY_STATS_NAME

    @property
    def rotated_path(self) -> Path:
        return self.path.with_name(self.path.name + ".1")

    def emit(self, record: Mapping[str, Any]) -> None:
        """Append one span record (thread-safe).

        Silently drops the span if the log is already closed or the
        write fails — a straggler worker thread finishing after daemon
        shutdown must never die on its telemetry.
        """
        line = _canonical(record) + "\n"
        with self._lock:
            try:
                if self._fh.tell() + len(line) > self.max_bytes \
                        and self._fh.tell() > 0:
                    self._rotate()
                self._fh.write(line)
                self._fh.flush()
            except (ValueError, OSError):
                return
            self._spans_written += 1
            if self._spans_written % _STATS_EVERY == 0:
                self._write_stats()

    def _rotate(self) -> None:
        """Rename the live log to ``.1`` and start a fresh file."""
        self._fh.close()
        try:
            os.replace(self.path, self.rotated_path)
        except OSError:  # pragma: no cover - racing cleanup
            pass
        self._fh = open(self.path, "a")
        self._rotations += 1
        self._write_stats()

    def _write_stats(self) -> None:
        """Refresh the sidecar (atomic, best-effort)."""
        payload = _canonical(self.stats())
        tmp = self.stats_path.with_name(
            f".{TELEMETRY_STATS_NAME}.{os.getpid()}.tmp")
        try:
            tmp.write_text(payload)
            tmp.replace(self.stats_path)
        except OSError:  # telemetry must never fail the service
            pass

    def stats(self) -> dict:
        """Lifetime counters: ``spans_written`` and ``rotations``."""
        return {"spans_written": self._spans_written,
                "rotations": self._rotations}

    def close(self) -> None:
        with self._lock:
            self._write_stats()
            self._fh.close()


def read_spans(path: Path | str) -> list[dict]:
    """Load a span log (one JSON object per non-empty line).

    Unparseable lines (a torn tail) are skipped, mirroring the queue
    journal's replay tolerance.
    """
    spans: list[dict] = []
    try:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    spans.append(json.loads(line))
                except ValueError:
                    continue
    except OSError:
        pass
    return spans


def read_telemetry_stats(path: Path | str) -> dict:
    """The sidecar counters, or zeros when absent/corrupt."""
    try:
        data = json.loads(Path(path).read_text())
        return {"spans_written": int(data["spans_written"]),
                "rotations": int(data["rotations"])}
    except (OSError, ValueError, KeyError, TypeError):
        return {"spans_written": 0, "rotations": 0}


class Telemetry:
    """Job-lifecycle spans + service metrics, one instance per daemon.

    Every transition is (a) appended to the :class:`SpanLog` and (b)
    folded into a private :class:`MetricsRegistry` (``svc.*`` names):
    counters for done/error/retried/reaped/deduped points, a
    ``svc.queue_depth`` gauge, and per-kind point-latency histograms
    (``svc.point_latency_us.<kind>``, power-of-two microsecond buckets,
    with ``svc.point_latency_us_sum.<kind>`` /
    ``svc.point_latency_count.<kind>`` companions so means and
    Prometheus ``_sum``/``_count`` series are exact).

    Durations are monotonic (``time.monotonic`` deltas): ``claimed``
    spans carry ``queue_ms`` (queued → claimed), ``running`` spans carry
    ``wait_ms`` (claimed → running), and terminal spans carry ``run_ms``
    (running → stored/error) and ``total_ms`` (queued → terminal).
    The *existence and order* of phases per point is deterministic; the
    durations are wall-clock facts and are not.
    """

    def __init__(self, log_path: Path | str,
                 max_bytes: int = 16 << 20):
        self.log = SpanLog(log_path, max_bytes=max_bytes)
        self.registry = MetricsRegistry()
        self._t0 = time.monotonic()
        # reentrant: _ensure_queued emits a span while holding the lock
        self._lock = threading.RLock()
        #: (job, index) -> {"queued": t, "claimed": t, "running": t}
        self._marks: dict[tuple[str, Optional[int]], dict[str, float]] = {}
        #: points whose ``queued`` span is already in the log; keeps the
        #: per-point phase order deterministic even when the submit-event
        #: fan-out races a concurrent claim (see :meth:`_ensure_queued`)
        self._queued: set[tuple[str, int]] = set()

    # -- raw emission -------------------------------------------------------
    def _now_ms(self) -> float:
        return (time.monotonic() - self._t0) * 1e3

    def span(self, phase: str, job: str, index: Optional[int] = None,
             kind: Optional[str] = None, **extra) -> dict:
        """Emit one lifecycle span record; returns it (for tests)."""
        t = self._now_ms()
        record: dict[str, Any] = {"phase": phase, "job": job, "t_ms": t}
        if index is not None:
            record["index"] = index
        if kind is not None:
            record["kind"] = kind
        key = (job, index)
        with self._lock:
            marks = self._marks.setdefault(key, {})
            if phase in ("queued", "claimed", "running"):
                marks[phase] = t
            if phase == "claimed" and "queued" in marks:
                record["queue_ms"] = t - marks["queued"]
            elif phase == "running" and "claimed" in marks:
                record["wait_ms"] = t - marks["claimed"]
            elif phase in ("stored", "error"):
                if "running" in marks:
                    record["run_ms"] = t - marks["running"]
                if "queued" in marks:
                    record["total_ms"] = t - marks["queued"]
                self._marks.pop(key, None)
        record.update(extra)
        self.log.emit(record)
        return record

    def _ensure_queued(self, job: str, index: int, kind: str) -> None:
        """Emit the point's ``queued`` span exactly once.

        In the daemon the submit event fans out on the submitting thread
        while the dispatcher may already be claiming points; whichever
        side gets here first writes the span (atomically, under the
        reentrant lock), so ``queued`` always precedes ``claimed``.
        """
        with self._lock:
            if (job, index) in self._queued:
                return
            self._queued.add((job, index))
            self.span("queued", job, index, kind=kind)

    # -- lifecycle helpers (what the service and sweep runner call) ---------
    def job_submitted(self, job: str, kind: str, total: int) -> None:
        self.span("submit", job, kind=kind, total=total)
        for index in range(total):
            self._ensure_queued(job, index, kind)

    def point_claimed(self, job: str, index: int, kind: str) -> None:
        self._ensure_queued(job, index, kind)
        self.span("claimed", job, index, kind=kind)

    def point_running(self, job: str, index: int, kind: str) -> None:
        self.span("running", job, index, kind=kind)

    def point_failure(self, job: str, index: int, kind: str,
                      failure: str, attempt: int,
                      will_retry: bool) -> None:
        """One reaped attempt (timeout or killed worker)."""
        self.registry.inc("svc.points.reaped")
        self.span("reaped", job, index, kind=kind, failure=failure,
                  attempt=attempt)
        if will_retry:
            self.registry.inc("svc.points.retried")
            self.span("retried", job, index, kind=kind,
                      attempt=attempt + 1)

    def point_deduped(self, job: str, index: int, kind: str) -> None:
        self._ensure_queued(job, index, kind)
        self.registry.inc("svc.points.deduped")
        self.span("deduped", job, index, kind=kind)

    def point_done(self, job: str, index: int, kind: str,
                   error: bool, attempts: int = 1) -> None:
        """Terminal span; successful points feed the latency histogram."""
        phase = "error" if error else "stored"
        self.registry.inc(f"svc.points.{'error' if error else 'done'}")
        record = self.span(phase, job, index, kind=kind,
                           attempts=attempts)
        run_ms = record.get("run_ms")
        if not error and run_ms is not None:
            us = max(0, int(run_ms * 1e3))
            self.registry.observe(f"svc.point_latency_us.{kind}", us)
            self.registry.inc(f"svc.point_latency_us_sum.{kind}", us)
            self.registry.inc(f"svc.point_latency_count.{kind}")

    # -- federation lifecycle (coordinator-side) ----------------------------
    def agent_registered(self, agent: str) -> None:
        self.registry.inc("svc.agents.registered")
        self.span("agent_up", agent)

    def agent_lost(self, agent: str, why: str) -> None:
        """An agent deregistered, missed heartbeats, or was reaped."""
        self.registry.inc("svc.agents.lost")
        self.span("agent_lost", agent, why=why)

    def point_leased(self, job: str, index: int, kind: str,
                     agent: str) -> None:
        self._ensure_queued(job, index, kind)
        self.span("leased", job, index, kind=kind, agent=agent)

    def lease_expired(self, job: str, index: int, kind: str,
                      agent: str) -> None:
        """A lease passed its deadline unrenewed; the point re-queued."""
        self.registry.inc("svc.leases.expired")
        self.span("lease_expired", job, index, kind=kind, agent=agent)

    def point_duplicate(self, job: str, index: int, kind: str,
                        agent: str) -> None:
        """A completion lost the first-write-wins race (harmless)."""
        self.registry.inc("svc.points.duplicate")
        self.span("duplicate", job, index, kind=kind, agent=agent)

    def job_done(self, job: str, kind: str) -> None:
        self.span("done", job, kind=kind)
        with self._lock:
            self._queued = {key for key in self._queued
                            if key[0] != job}

    def queue_depth(self, depth: int) -> None:
        self.registry.gauge("svc.queue_depth", depth)

    # -- readers ------------------------------------------------------------
    def snapshot(self) -> dict:
        """Counters/gauges/histograms plus the span-log stats."""
        return {**self.registry.snapshot(), "log": self.log.stats()}

    def latency_means_s(self) -> dict[str, float]:
        """Mean successful-point latency per kind, in seconds."""
        counters = self.registry.counters
        means: dict[str, float] = {}
        for name, total in counters.items():
            if not name.startswith("svc.point_latency_us_sum."):
                continue
            kind = name[len("svc.point_latency_us_sum."):]
            count = counters.get(f"svc.point_latency_count.{kind}", 0)
            if count > 0:
                means[kind] = (total / count) / 1e6
        return means

    def close(self) -> None:
        self.log.close()


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------
def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _prom_num(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _histogram_lines(name: str, kind: str,
                     buckets: Mapping[str, int],
                     sum_us: float) -> list[str]:
    """Cumulative ``le`` bucket series for one power-of-two histogram.

    A sample in power-of-two floor bucket ``b`` lies in ``[b, 2b)``
    microseconds, so its upper edge is ``2b`` (``1`` for the zero
    bucket); edges convert to seconds.  Buckets are cumulative and
    monotonically non-decreasing by construction, ending in ``+Inf``.
    """
    label = f'kind="{_prom_escape(kind)}"'
    edges = sorted(((2 * int(b)) if int(b) > 0 else 1, count)
                   for b, count in buckets.items())
    lines = []
    cumulative = 0
    for edge_us, count in edges:
        cumulative += count
        lines.append(f'{name}_bucket{{{label},le="{edge_us / 1e6:.9g}"}}'
                     f' {cumulative}')
    lines.append(f'{name}_bucket{{{label},le="+Inf"}} {cumulative}')
    lines.append(f'{name}_sum{{{label}}} {_prom_num(sum_us / 1e6)}')
    lines.append(f'{name}_count{{{label}}} {cumulative}')
    return lines


def render_prometheus(telemetry: Optional[Telemetry] = None,
                      queue_depth: int = 0, inflight: int = 0,
                      open_jobs: int = 0, workers: int = 0,
                      store_stats: Optional[Mapping[str, int]] = None,
                      store_entries: Optional[int] = None,
                      agents: int = 0, leases_active: int = 0,
                      lease_expirations: int = 0,
                      duplicate_results: int = 0) -> str:
    """The service's ``GET /metrics`` body (Prometheus text format).

    Families: ``clmpi_queue_depth`` / ``clmpi_inflight_points`` /
    ``clmpi_open_jobs`` / ``clmpi_worker_slots`` /
    ``clmpi_workers`` / ``clmpi_leases_active`` gauges,
    ``clmpi_points_total{outcome=...}``,
    ``clmpi_lease_expirations_total`` /
    ``clmpi_duplicate_results_total`` and
    ``clmpi_store_<stat>_total`` counters,
    ``clmpi_spans_written_total`` / ``clmpi_span_log_rotations_total``,
    and one ``clmpi_point_latency_seconds`` histogram per job kind.
    """
    out: list[str] = []

    def family(name: str, mtype: str, help_text: str,
               lines: list[str]) -> None:
        out.append(f"# HELP {name} {help_text}")
        out.append(f"# TYPE {name} {mtype}")
        out.extend(lines)

    family("clmpi_queue_depth", "gauge",
           "Sweep points not yet completed across open jobs.",
           [f"clmpi_queue_depth {_prom_num(queue_depth)}"])
    family("clmpi_inflight_points", "gauge",
           "Distinct points currently computing (after dedup).",
           [f"clmpi_inflight_points {_prom_num(inflight)}"])
    family("clmpi_open_jobs", "gauge",
           "Jobs with uncomputed points.",
           [f"clmpi_open_jobs {_prom_num(open_jobs)}"])
    family("clmpi_worker_slots", "gauge",
           "Concurrent point-worker slots the daemon runs.",
           [f"clmpi_worker_slots {_prom_num(workers)}"])
    family("clmpi_workers", "gauge",
           "Federation agents currently registered.",
           [f"clmpi_workers {_prom_num(agents)}"])
    family("clmpi_leases_active", "gauge",
           "Points currently held under a live agent lease.",
           [f"clmpi_leases_active {_prom_num(leases_active)}"])
    family("clmpi_lease_expirations_total", "counter",
           "Leases that passed their deadline unrenewed (point "
           "re-queued).",
           [f"clmpi_lease_expirations_total "
            f"{_prom_num(lease_expirations)}"])
    family("clmpi_duplicate_results_total", "counter",
           "Completions that lost the first-write-wins race.",
           [f"clmpi_duplicate_results_total "
            f"{_prom_num(duplicate_results)}"])

    counters = telemetry.registry.counters if telemetry is not None else {}
    outcome_lines = []
    for outcome in ("done", "error", "retried", "reaped", "deduped"):
        value = counters.get(f"svc.points.{outcome}", 0)
        outcome_lines.append(
            f'clmpi_points_total{{outcome="{outcome}"}} '
            f"{_prom_num(value)}")
    family("clmpi_points_total", "counter",
           "Completed point transitions by outcome.", outcome_lines)

    log_stats = (telemetry.log.stats() if telemetry is not None
                 else {"spans_written": 0, "rotations": 0})
    family("clmpi_spans_written_total", "counter",
           "Lifecycle spans appended to the telemetry log.",
           [f"clmpi_spans_written_total "
            f"{_prom_num(log_stats['spans_written'])}"])
    family("clmpi_span_log_rotations_total", "counter",
           "Telemetry log rotations.",
           [f"clmpi_span_log_rotations_total "
            f"{_prom_num(log_stats['rotations'])}"])

    store_stats = store_stats or {}
    store_lines = []
    for stat in ("hits", "misses", "evicted", "corrupt_deleted",
                 "corrupt_replaced"):
        store_lines.append(
            f'clmpi_store_total{{event="{stat}"}} '
            f"{_prom_num(store_stats.get(stat, 0))}")
    family("clmpi_store_total", "counter",
           "Shared result-store events (hits, misses, evictions, "
           "corrupt-entry recoveries).", store_lines)
    if store_entries is not None:
        family("clmpi_store_entries", "gauge",
               "Entries currently in the shared result store.",
               [f"clmpi_store_entries {_prom_num(store_entries)}"])

    if telemetry is not None:
        histograms = telemetry.registry.snapshot()["histograms"]
        hist_lines: list[str] = []
        for name in sorted(histograms):
            if not name.startswith("svc.point_latency_us."):
                continue
            kind = name[len("svc.point_latency_us."):]
            sum_us = counters.get(f"svc.point_latency_us_sum.{kind}", 0)
            hist_lines.extend(_histogram_lines(
                "clmpi_point_latency_seconds", kind,
                histograms[name], sum_us))
        if hist_lines:
            family("clmpi_point_latency_seconds", "histogram",
                   "Successful point wall-clock latency by job kind.",
                   hist_lines)
    return "\n".join(out) + "\n"


# ---------------------------------------------------------------------------
# span-log analysis and export
# ---------------------------------------------------------------------------
def span_structure(spans: list[dict]) -> dict[str, list[str]]:
    """The deterministic shape of a span log.

    Maps ``"<kind>[<index>]"`` (or ``"<kind>"`` for job-level spans) to
    that point's phase sequence, with per-point order preserved.  Two
    runs of the same sweep — serial, ``-j N``, or via the daemon — have
    equal structures even though global interleaving and every duration
    differ.
    """
    structure: dict[str, list[str]] = {}
    for span in spans:
        kind = span.get("kind", "?")
        index = span.get("index")
        key = kind if index is None else f"{kind}[{index}]"
        structure.setdefault(key, []).append(span["phase"])
    return {key: structure[key] for key in sorted(structure)}


#: span phase -> Chrome-tracing category (colors in Perfetto)
_PHASE_CATEGORY = {"queued": "sync", "claimed": "host",
                   "running": "compute", "reaped": "d2h",
                   "retried": "h2d", "deduped": "sync"}


def spans_to_chrome_trace(spans: list[dict]) -> list[dict]:
    """Export a span log as Chrome-tracing events (Perfetto-loadable).

    Jobs become threads; each point's queued → terminal life renders as
    nested ``X`` slices (queue wait, then execution), with instant
    events (``ph: "i"``) for reap/retry/dedup transitions — the service
    analogue of :meth:`repro.sim.trace.Tracer.to_chrome_trace`, so a
    whole sweep's timeline sits beside the in-sim flow traces.
    """
    jobs: list[str] = []
    for span in spans:
        if span.get("job") not in jobs:
            jobs.append(span.get("job"))
    tid = {job: i for i, job in enumerate(jobs)}
    events: list[dict] = [
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": i,
         "args": {"name": job}}
        for job, i in tid.items()
    ]
    #: (job, index) -> {"phase": t_ms}
    marks: dict[tuple, dict[str, float]] = {}
    for span in spans:
        key = (span.get("job"), span.get("index"))
        phase, t = span["phase"], span.get("t_ms", 0.0)
        marks.setdefault(key, {})[phase] = t
        if span.get("index") is None:
            continue
        name = f"{span.get('kind', 'point')}[{span['index']}]"
        if phase in ("reaped", "retried", "deduped"):
            events.append({"name": f"{name} {phase}",
                           "cat": _PHASE_CATEGORY[phase], "ph": "i",
                           "s": "t", "pid": 0,
                           "tid": tid[span.get("job")],
                           "ts": t * 1e3})
        elif phase in ("stored", "error"):
            seen = marks[key]
            start = seen.get("queued", seen.get("claimed", t))
            run_start = seen.get("running", start)
            events.append({"name": f"{name} queued", "cat": "sync",
                           "ph": "X", "pid": 0,
                           "tid": tid[span.get("job")],
                           "ts": start * 1e3,
                           "dur": max(0.0, run_start - start) * 1e3})
            events.append({"name": f"{name} {phase}",
                           "cat": ("compute" if phase == "stored"
                                   else "d2h"),
                           "ph": "X", "pid": 0,
                           "tid": tid[span.get("job")],
                           "ts": run_start * 1e3,
                           "dur": max(0.0, t - run_start) * 1e3,
                           "args": {k: v for k, v in span.items()
                                    if k.endswith("_ms")
                                    or k == "attempts"}})
    return events


def save_chrome_trace(spans: list[dict], path: Path | str) -> None:
    """Write :func:`spans_to_chrome_trace` output as a JSON file."""
    with open(path, "w") as fh:
        json.dump({"traceEvents": spans_to_chrome_trace(spans)}, fh)
