"""CLI: ``python -m repro.obs diff a.json b.json``.

Compares two RunReport JSON files field by field for regression triage;
exits 0 when identical, 1 when they differ, 2 on invalid input.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.obs.report import diff_reports, validate_report


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability utilities for RunReport artifacts.")
    sub = parser.add_subparsers(dest="command", required=True)
    d = sub.add_parser("diff",
                       help="field-by-field diff of two RunReports")
    d.add_argument("a", help="baseline report JSON")
    d.add_argument("b", help="candidate report JSON")
    d.add_argument("--no-validate", action="store_true",
                   help="skip RunReport schema validation (diff "
                        "arbitrary JSON objects)")
    args = parser.parse_args(argv)

    reports = []
    for path in (args.a, args.b):
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        if not args.no_validate:
            try:
                validate_report(data)
            except ValueError as exc:
                print(f"error: {path}: {exc}", file=sys.stderr)
                return 2
        reports.append(data)
    lines = diff_reports(reports[0], reports[1])
    if not lines:
        print("reports are identical")
        return 0
    print(f"{len(lines)} differing fields ({args.a} -> {args.b}):")
    for line in lines:
        print(f"  {line}")
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
