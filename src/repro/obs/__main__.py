"""CLI: ``python -m repro.obs {diff,regress,timeline} ...``.

* ``diff a.json b.json`` — field-by-field diff of two RunReports.
* ``regress baseline.json current.json`` — CI-aware regression gate
  over RunReports or BENCH_*.json trajectories (see
  :mod:`repro.obs.regress`).
* ``timeline telemetry.jsonl -o trace.json`` — export a service span
  log to the Chrome-tracing/Perfetto format.

Exit codes (shared by ``diff`` and ``regress``, suitable for CI):

* ``0`` — identical / no regression
* ``1`` — reports differ / a regression was detected
* ``2`` — invalid input (unreadable file, schema violation, or
  mismatched artifact families)
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.obs.regress import (DEFAULT_THRESHOLD, RegressError,
                               compare_artifacts, format_verdict)
from repro.obs.report import diff_reports, validate_report
from repro.obs.telemetry import read_spans, save_chrome_trace


def _cmd_diff(args) -> int:
    reports = []
    for path in (args.a, args.b):
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        if not args.no_validate:
            try:
                validate_report(data)
            except ValueError as exc:
                print(f"error: {path}: {exc}", file=sys.stderr)
                return 2
        reports.append(data)
    lines = diff_reports(reports[0], reports[1])
    if not lines:
        print("reports are identical")
        return 0
    print(f"{len(lines)} differing fields ({args.a} -> {args.b}):")
    for line in lines:
        print(f"  {line}")
    return 1


def _cmd_regress(args) -> int:
    try:
        result = compare_artifacts(args.baseline, args.current,
                                   threshold=args.threshold)
    except RegressError as exc:
        if args.json:
            print(json.dumps({"error": str(exc)}))
        else:
            print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result, sort_keys=True))
    else:
        print(format_verdict(result))
    return 1 if result["verdict"] == "regression" else 0


def _cmd_timeline(args) -> int:
    spans = read_spans(args.log)
    if not spans:
        print(f"error: no spans in {args.log}", file=sys.stderr)
        return 2
    save_chrome_trace(spans, args.out)
    print(f"wrote {len(spans)} spans to {args.out} "
          "(load in Perfetto / chrome://tracing)")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability utilities for RunReport and "
                    "telemetry artifacts.")
    sub = parser.add_subparsers(dest="command", required=True)

    d = sub.add_parser(
        "diff", help="field-by-field diff of two RunReports "
                     "(exit 0 identical / 1 differs / 2 invalid)")
    d.add_argument("a", help="baseline report JSON")
    d.add_argument("b", help="candidate report JSON")
    d.add_argument("--no-validate", action="store_true",
                   help="skip RunReport schema validation (diff "
                        "arbitrary JSON objects)")
    d.set_defaults(func=_cmd_diff)

    r = sub.add_parser(
        "regress",
        help="CI-aware regression gate between two artifacts "
             "(exit 0 ok / 1 regression / 2 invalid)")
    r.add_argument("baseline", help="baseline RunReport or BENCH JSON")
    r.add_argument("current", help="current RunReport or BENCH JSON")
    r.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                   help="relative slowdown tolerated when no CIs are "
                        "available (default %(default)s)")
    r.add_argument("--json", action="store_true",
                   help="emit the full finding list as JSON")
    r.set_defaults(func=_cmd_regress)

    t = sub.add_parser(
        "timeline",
        help="export a service telemetry log to Chrome-tracing JSON")
    t.add_argument("log", help="telemetry JSONL span log")
    t.add_argument("-o", "--out", default="telemetry_trace.json",
                   help="output trace path (default %(default)s)")
    t.set_defaults(func=_cmd_timeline)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
