"""Critical-path analysis over a :class:`~repro.sim.trace.Tracer`.

The analyzer answers "why did the run take this long?" by walking the
causal structure of the trace backward from the last-finishing record:
at each step it jumps to the latest-ending record that finished before
the current one started *and* is causally upstream — either on the same
lane (engine serialization) or linked by a shared flow id (cross-lane
hand-off, e.g. d2h -> net -> h2d, or an MPI send -> recv pair).

The resulting chain is the dominant dependency path; summing record
durations per category attributes the makespan to compute / d2h / h2d /
net / host / sync, which is the tool that *explains* the Fig 8/9
crossovers rather than just plotting them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.trace import TraceRecord, Tracer

__all__ = ["CriticalPath", "critical_path"]


@dataclass
class CriticalPath:
    """Backward-walk result: the path and its per-category attribution.

    ``total_s`` spans first-record start to last-record end along the
    path; ``wait_s`` is the part of that span not covered by any path
    record (scheduling/dependency gaps).  ``fractions`` divide category
    seconds by ``total_s``; ``dominant`` is the largest category by
    seconds (ties broken alphabetically for determinism).
    """

    path: list[TraceRecord] = field(default_factory=list)
    by_category: dict[str, float] = field(default_factory=dict)
    total_s: float = 0.0
    busy_s: float = 0.0
    wait_s: float = 0.0
    dominant: str = ""

    @property
    def fractions(self) -> dict[str, float]:
        if self.total_s <= 0:
            return {c: 0.0 for c in sorted(self.by_category)}
        return {c: self.by_category[c] / self.total_s
                for c in sorted(self.by_category)}

    def summary(self) -> dict:
        """JSON-able digest (no raw records) for reports."""
        return {
            "by_category": {c: self.by_category[c]
                            for c in sorted(self.by_category)},
            "fractions": self.fractions,
            "dominant": self.dominant,
            "total_s": self.total_s,
            "busy_s": self.busy_s,
            "wait_s": self.wait_s,
            "n_records": len(self.path),
        }

    def render(self, limit: int = 20) -> str:
        """Human-readable digest: attribution plus the tail of the path."""
        lines = [f"critical path: {self.total_s * 1e3:.3f} ms over "
                 f"{len(self.path)} records "
                 f"(dominant: {self.dominant or 'n/a'})"]
        for cat, frac in sorted(self.fractions.items(),
                                key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"  {cat:<8} {self.by_category[cat] * 1e3:9.3f} ms"
                         f"  ({frac * 100:5.1f}%)")
        if self.wait_s > 0 and self.total_s > 0:
            lines.append(f"  {'(wait)':<8} {self.wait_s * 1e3:9.3f} ms"
                         f"  ({self.wait_s / self.total_s * 100:5.1f}%)")
        for rec in self.path[-limit:]:
            lines.append(f"    {rec.start * 1e3:9.3f}.."
                         f"{rec.end * 1e3:9.3f} ms  {rec.lane:<16} "
                         f"[{rec.category}] {rec.label}")
        return "\n".join(lines)


def critical_path(tracer: Tracer, last: Optional[TraceRecord] = None,
                  eps: float = 1e-9) -> CriticalPath:
    """Walk the trace backward from ``last`` (default: last-finishing
    record) and return the critical path with category attribution.

    A record ``p`` is an eligible predecessor of ``c`` when it ends no
    later than ``c`` starts (within ``eps``) and is causally upstream:
    it shares ``c``'s lane, shares a nonzero flow id with it, or lives
    on the same node (lanes are ``node{N}.<unit>``; one node's units
    are serialized by the rank's control flow, so an earlier record on
    a sibling lane is a sound hand-off approximation).  The
    latest-ending eligible predecessor wins, with the per-tracer span
    id breaking exact-time ties deterministically.
    """
    records = [r for r in tracer.records if r.end >= r.start]
    if not records:
        return CriticalPath()
    order = sorted(records, key=lambda r: (r.end, r.span))
    cur = order[-1] if last is None else last
    path = [cur]
    visited = {cur.span}
    while True:
        pred = None
        limit = cur.start + eps
        node = cur.lane.split(".", 1)[0]
        for r in reversed(order):
            if r.end > limit or r.span in visited:
                continue
            if (r.lane == cur.lane or (cur.flow and r.flow == cur.flow)
                    or r.lane.split(".", 1)[0] == node):
                pred = r
                break
        if pred is None:
            break
        visited.add(pred.span)
        path.append(pred)
        cur = pred
    path.reverse()
    by_category: dict[str, float] = {}
    busy = 0.0
    for rec in path:
        by_category[rec.category] = (by_category.get(rec.category, 0.0)
                                     + rec.duration)
        busy += rec.duration
    total = path[-1].end - path[0].start
    dominant = max(sorted(by_category),
                   key=lambda c: by_category[c]) if by_category else ""
    return CriticalPath(path=path, by_category=by_category,
                        total_s=total, busy_s=busy,
                        wait_s=max(0.0, total - busy), dominant=dominant)
