"""Metrics registry: counters, gauges, and power-of-two histograms.

A :class:`MetricsRegistry` is the quantitative side of observability
(the :class:`~repro.sim.trace.Tracer` is the qualitative side).  It is
attached to an :class:`~repro.sim.Environment` as ``env.metrics`` and
every instrumented layer bumps it through ``is not None`` guards, so a
detached registry costs nothing — the same contract as ``env.tracer``
and ``env.faults``.

Names are dotted and low-cardinality by design (``mpi.messages``,
``hw.net.bytes``) — per-lane or per-message names would make snapshots
unbounded and reports undiffable.

Snapshots are plain JSON-able dicts with deterministically sorted keys,
so two runs with the same seed produce byte-identical serializations.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["MetricsRegistry", "merge_snapshots"]


class MetricsRegistry:
    """Append-only numeric facts about one run.

    Counters only go up (``inc``); gauges track a last-written value and
    its high-water mark (``gauge``); histograms bucket integer samples
    by power-of-two floor (``observe``) — e.g. a 96 KiB message lands in
    the 65536 bucket.
    """

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, dict[int, int]] = {}

    # -- writers -----------------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` (default 1) to counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name``; also keeps ``name + ".max"``."""
        self.gauges[name] = value
        peak = name + ".max"
        if value > self.gauges.get(peak, float("-inf")):
            self.gauges[peak] = value

    def observe(self, name: str, value: int) -> None:
        """Add one sample to histogram ``name`` (power-of-two buckets)."""
        bucket = 1 << (value.bit_length() - 1) if value > 0 else 0
        hist = self.histograms.setdefault(name, {})
        hist[bucket] = hist.get(bucket, 0) + 1

    # -- attachment --------------------------------------------------------
    def attach(self, env) -> "MetricsRegistry":
        """Install as ``env.metrics``; returns self for chaining."""
        env.metrics = self
        return self

    @staticmethod
    def detach(env) -> None:
        """Remove any registry from ``env`` (hot paths go back to zero
        cost)."""
        env.metrics = None

    # -- readers -----------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able, deterministically ordered dump of every series."""
        return {
            "counters": {k: self.counters[k]
                         for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                name: {str(b): hist[b] for b in sorted(hist)}
                for name, hist in sorted(self.histograms.items())
            },
        }


def merge_snapshots(a: Optional[dict], b: Optional[dict]) -> dict:
    """Combine two snapshots: counters and histogram buckets sum,
    gauges keep the max (the interesting gauges are high-water marks)."""
    a = a or {"counters": {}, "gauges": {}, "histograms": {}}
    b = b or {"counters": {}, "gauges": {}, "histograms": {}}
    counters = dict(a.get("counters", {}))
    for k, v in b.get("counters", {}).items():
        counters[k] = counters.get(k, 0) + v
    gauges = dict(a.get("gauges", {}))
    for k, v in b.get("gauges", {}).items():
        gauges[k] = max(gauges.get(k, float("-inf")), v)
    histograms: dict[str, dict[str, int]] = {
        name: dict(hist) for name, hist in a.get("histograms", {}).items()
    }
    for name, hist in b.get("histograms", {}).items():
        tgt = histograms.setdefault(name, {})
        for bucket, count in hist.items():
            tgt[bucket] = tgt.get(bucket, 0) + count
    return {
        "counters": {k: counters[k] for k in sorted(counters)},
        "gauges": {k: gauges[k] for k in sorted(gauges)},
        "histograms": {name: {b: hist[b] for b in sorted(hist, key=int)}
                       for name, hist in sorted(histograms.items())},
    }
