"""Empirical transfer-policy auto-tuning (§V.B).

The paper notes that "an automatic selection mechanism of the data
transfer implementations can be adopted behind the interfaces".  The
preset policies encode the authors' manual choices; this module derives a
policy *empirically*, by sweeping every engine over a size grid on the
target system (in simulation, exactly as a real runtime would probe its
machine at install time) and fitting the piecewise structure the
:class:`~repro.systems.presets.TransferPolicy` expresses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.systems.presets import SystemPreset, TransferPolicy

__all__ = ["TuneReport", "tune_policy"]

KiB, MiB = 1 << 10, 1 << 20

DEFAULT_SIZES = [64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB, 16 * MiB, 64 * MiB]
DEFAULT_BLOCKS = [256 * KiB, 1 * MiB, 4 * MiB, 16 * MiB]


@dataclass(frozen=True)
class TuneReport:
    """Outcome of one auto-tuning run."""

    system: str
    policy: TransferPolicy
    #: per-size winning (mode, block, bandwidth B/s)
    winners: dict
    #: full measurement grid {(mode, block, size): bandwidth}
    measurements: dict


def tune_policy(system: SystemPreset, sizes=None, blocks=None,
                repeats: int = 2) -> TuneReport:
    """Probe the system and build an empirically optimal policy."""
    from repro.apps.pingpong import measure_bandwidth

    sizes = sizes or DEFAULT_SIZES
    blocks = blocks or DEFAULT_BLOCKS
    measurements: dict = {}
    winners: dict = {}
    for nbytes in sizes:
        candidates: list[tuple[float, str, int | None]] = []
        for mode in ("pinned", "mapped"):
            bw = measure_bandwidth(system, nbytes, mode,
                                   repeats=repeats).bandwidth
            measurements[(mode, None, nbytes)] = bw
            candidates.append((bw, mode, None))
        for blk in blocks:
            if blk <= nbytes:
                bw = measure_bandwidth(system, nbytes, "pipelined",
                                       block=blk, repeats=repeats).bandwidth
                measurements[("pipelined", blk, nbytes)] = bw
                candidates.append((bw, "pipelined", blk))
        bw, mode, blk = max(candidates)
        winners[nbytes] = (mode, blk, bw)

    # fit the TransferPolicy structure: a small-message engine and a
    # pipeline threshold with a size->block mapping
    small_votes = [w[0] for n, w in winners.items()
                   if w[0] != "pipelined"]
    small_mode = (max(set(small_votes), key=small_votes.count)
                  if small_votes else system.policy.small_mode)
    piped_sizes = sorted(n for n, w in winners.items()
                         if w[0] == "pipelined")
    threshold = piped_sizes[0] if piped_sizes else max(sizes) + 1
    block_by_size = {n: winners[n][1] for n in piped_sizes}

    def block_fn(nbytes: int,
                 table=tuple(sorted(block_by_size.items()))) -> int:
        best = table[-1][1] if table else 1 * MiB
        for size, blk in table:
            if nbytes <= size:
                best = blk
                break
        return best

    policy = TransferPolicy(small_mode=small_mode,
                            pipeline_threshold=threshold,
                            pipeline_block=block_fn,
                            pipeline_base=system.policy.pipeline_base)
    return TuneReport(system=system.name, policy=policy, winners=winners,
                      measurements=measurements)
