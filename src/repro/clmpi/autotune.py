"""Empirical transfer-policy auto-tuning (§V.B).

The paper notes that "an automatic selection mechanism of the data
transfer implementations can be adopted behind the interfaces".  The
preset policies encode the authors' manual choices; this module derives a
policy *empirically*, by sweeping every engine over a size grid on the
target system (in simulation, exactly as a real runtime would probe its
machine at install time) and fitting the piecewise structure the
:class:`~repro.systems.presets.TransferPolicy` expresses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.systems.presets import SystemPreset, TransferPolicy

__all__ = ["TuneReport", "tune_policy"]

KiB, MiB = 1 << 10, 1 << 20

DEFAULT_SIZES = [64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB, 16 * MiB, 64 * MiB]
DEFAULT_BLOCKS = [256 * KiB, 1 * MiB, 4 * MiB, 16 * MiB]


@dataclass(frozen=True)
class TuneReport:
    """Outcome of one auto-tuning run."""

    system: str
    policy: TransferPolicy
    #: per-size winning (mode, block, bandwidth B/s)
    winners: dict
    #: full measurement grid {(mode, block, size): bandwidth}
    measurements: dict


def tune_policy(system: SystemPreset, sizes=None, blocks=None,
                repeats: int = 2, jobs=1, cache=None) -> TuneReport:
    """Probe the system and build an empirically optimal policy.

    The probe grid consists of independent simulations, so it fans out
    over the parallel sweep runner; ``jobs``/``cache`` are forwarded to
    :func:`repro.harness.parallel.sweep`.  Probe points share the
    ``bandwidth`` cache namespace with the Fig 8 harness.
    """
    # Imported lazily: repro.clmpi must stay importable without pulling
    # in the whole harness/apps stack at module-import time.
    from repro.apps.pingpong import bandwidth_point, measure_bandwidth
    from repro.errors import ConfigurationError
    from repro.harness.parallel import sweep
    from repro.systems.presets import get_system

    worker = bandwidth_point
    try:
        get_system(system.name)
    except ConfigurationError:
        # Custom preset outside the registry: workers cannot rebuild it
        # by name in another process (and its lambdas keep it out of the
        # cache key), so probe in-process with the live object instead.
        jobs, cache = 1, None

        def worker(spec: dict) -> dict:
            r = measure_bandwidth(system, spec["nbytes"], spec["mode"],
                                  block=spec.get("block"),
                                  repeats=spec.get("repeats", 4))
            return {"system": r.system, "mode": r.mode, "block": r.block,
                    "nbytes": r.nbytes, "repeats": r.repeats,
                    "seconds": r.seconds}

    sizes = sizes or DEFAULT_SIZES
    blocks = blocks or DEFAULT_BLOCKS
    specs: list[dict] = []
    for nbytes in sizes:
        for mode in ("pinned", "mapped"):
            specs.append({"system": system.name, "nbytes": nbytes,
                          "mode": mode, "block": None, "repeats": repeats})
        for blk in blocks:
            if blk <= nbytes:
                specs.append({"system": system.name, "nbytes": nbytes,
                              "mode": "pipelined", "block": blk,
                              "repeats": repeats})
    rows = sweep(worker, specs, jobs=jobs, cache=cache,
                 kind="bandwidth")

    measurements: dict = {}
    for r in rows:
        bw = r["nbytes"] * r["repeats"] / r["seconds"]
        measurements[(r["mode"], r["block"], r["nbytes"])] = bw
    winners: dict = {}
    for nbytes in sizes:
        candidates = [(bw, mode, blk)
                      for (mode, blk, size), bw in measurements.items()
                      if size == nbytes]
        bw, mode, blk = max(
            candidates, key=lambda c: (c[0], c[1], c[2] is not None, c[2]))
        winners[nbytes] = (mode, blk, bw)

    # fit the TransferPolicy structure: a small-message engine and a
    # pipeline threshold with a size->block mapping
    small_votes = [w[0] for n, w in winners.items()
                   if w[0] != "pipelined"]
    small_mode = (max(set(small_votes), key=small_votes.count)
                  if small_votes else system.policy.small_mode)
    piped_sizes = sorted(n for n, w in winners.items()
                         if w[0] == "pipelined")
    threshold = piped_sizes[0] if piped_sizes else max(sizes) + 1
    block_by_size = {n: winners[n][1] for n in piped_sizes}

    def block_fn(nbytes: int,
                 table=tuple(sorted(block_by_size.items()))) -> int:
        best = table[-1][1] if table else 1 * MiB
        for size, blk in table:
            if nbytes <= size:
                best = blk
                break
        return best

    policy = TransferPolicy(small_mode=small_mode,
                            pipeline_threshold=threshold,
                            pipeline_block=block_fn,
                            pipeline_base=system.policy.pipeline_base)
    return TuneReport(system=system.name, policy=policy, winners=winners,
                      measurements=measurements)
