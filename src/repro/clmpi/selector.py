"""Automatic transfer-mode selection (§V.B).

The selector wraps the system preset's :class:`TransferPolicy` and adds
overrides used by the Fig 8 sweeps (force one engine / one block size)
and by power users who know better for a particular queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.clmpi.transfers.base import TRANSFER_MODES
from repro.errors import ClmpiError
from repro.systems.presets import TransferPolicy

__all__ = ["TransferSelector"]


@dataclass
class TransferSelector:
    """Chooses ``(mode, block, base)`` for a message size.

    Parameters
    ----------
    policy:
        The system's automatic policy.
    force_mode:
        Override: always use this engine (``'pinned'``, ``'mapped'`` or
        ``'pipelined'``).
    force_block:
        Override block size for pipelined transfers.
    """

    policy: TransferPolicy
    force_mode: Optional[str] = None
    force_block: Optional[int] = None

    def __post_init__(self) -> None:
        if self.force_mode is not None and self.force_mode not in TRANSFER_MODES:
            raise ClmpiError(
                f"unknown transfer mode {self.force_mode!r}; "
                f"available: {sorted(TRANSFER_MODES)}")
        if self.force_block is not None and self.force_block <= 0:
            raise ClmpiError("force_block must be positive")

    def choose(self, nbytes: int) -> tuple[str, Optional[int], str]:
        """Return ``(mode, block, base)`` for ``nbytes``."""
        if nbytes < 0:
            raise ClmpiError("negative transfer size")
        if self.force_mode is not None:
            if self.force_mode == "pipelined":
                block = self.force_block or min(
                    max(1, nbytes), self.policy.pipeline_block(nbytes))
                return "pipelined", max(1, min(block, max(1, nbytes))), \
                    self.policy.pipeline_base
            return self.force_mode, None, self.policy.pipeline_base
        mode, block = self.policy.select(nbytes)
        if mode == "pipelined" and self.force_block is not None:
            block = min(self.force_block, nbytes)
        return mode, block, self.policy.pipeline_base
