"""The paper-facing clMPI API (§IV).

Inter-node communication *commands* (§IV.A) — enqueued like any other
OpenCL command, executed under queue order + event wait-list rules, with
the host thread free immediately after enqueue:

* :func:`enqueue_send_buffer`  (``clEnqueueSendBuffer``)
* :func:`enqueue_recv_buffer`  (``clEnqueueRecvBuffer``)

Event interoperation (§IV.B/C):

* :func:`event_from_mpi_request` (``clCreateEventFromMPIRequest``)

Host-side MPI interoperability with ``MPI_CL_MEM`` (§IV.C): standard-
looking MPI calls whose peer is a communicator device:

* :func:`isend` / :func:`send` — host buffer → remote device
* :func:`irecv` / :func:`recv` — remote device → host buffer
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

import numpy as np

from repro.clmpi.runtime import ClmpiRuntime
from repro.errors import ClmpiError
from repro.mpi.comm import Communicator
from repro.mpi.datatypes import CL_MEM, Datatype
from repro.mpi.request import Request
from repro.ocl.buffer import Buffer
from repro.ocl.enums import CommandType
from repro.ocl.event import CLEvent, UserEvent
from repro.ocl.queue import CommandQueue

__all__ = ["enqueue_send_buffer", "enqueue_recv_buffer",
           "event_from_mpi_request", "isend", "irecv", "send", "recv"]


def _runtime_of(queue: CommandQueue) -> ClmpiRuntime:
    rt = queue.context.clmpi_runtime
    if rt is None:
        raise ClmpiError(
            f"no ClmpiRuntime attached to the context of queue "
            f"{queue.name!r} (device {queue.device.name!r}); create one "
            "with ClmpiRuntime(context, comm, policy=...)")
    return rt


def enqueue_send_buffer(queue: CommandQueue, buf: Buffer, blocking: bool,
                        offset: int, size: int, dest: int, tag: int,
                        comm: Communicator,
                        wait_for: Sequence[CLEvent] = ()
                        ) -> Generator[Any, Any, CLEvent]:
    """``clEnqueueSendBuffer``: send ``buf[offset:offset+size]`` to rank
    ``dest``.

    The device becomes the *communicator device* for this transfer
    (§IV.A): the command executes inside the queue — serialized after its
    predecessors and its ``wait_for`` events — while the host thread
    returns immediately (unless ``blocking``).

    Returns the command's event; use it in later wait lists.
    """
    runtime = _runtime_of(queue)
    queue.context._check_buffer(buf)
    buf.check_range(offset, size)  # validate bounds at enqueue time

    def execute():
        yield from runtime.device_send(buf, offset, size, dest, tag, comm)

    return (yield from queue.enqueue_custom(
        CommandType.SEND_BUFFER, f"clmpi.send->r{dest} t{tag}", execute,
        wait_for=wait_for, blocking=blocking, nbytes=size, peer=dest,
        tag=tag, comm=comm, accesses=[(buf, offset, size, "r")]))


def enqueue_recv_buffer(queue: CommandQueue, buf: Buffer, blocking: bool,
                        offset: int, size: int, source: int, tag: int,
                        comm: Communicator,
                        wait_for: Sequence[CLEvent] = ()
                        ) -> Generator[Any, Any, CLEvent]:
    """``clEnqueueRecvBuffer``: receive into ``buf[offset:offset+size]``
    from rank ``source`` (a host thread or another communicator device)."""
    runtime = _runtime_of(queue)
    queue.context._check_buffer(buf)
    buf.check_range(offset, size)

    def execute():
        yield from runtime.device_recv(buf, offset, size, source, tag, comm)

    return (yield from queue.enqueue_custom(
        CommandType.RECV_BUFFER, f"clmpi.recv<-r{source} t{tag}", execute,
        wait_for=wait_for, blocking=blocking, nbytes=size, peer=source,
        tag=tag, comm=comm, accesses=[(buf, offset, size, "w")]))


def event_from_mpi_request(context, request: Request,
                           label: str = "mpi-request") -> UserEvent:
    """``clCreateEventFromMPIRequest`` (§IV.C, Fig 7).

    Returns an OpenCL user event that completes exactly when the
    nonblocking MPI operation behind ``request`` completes, so OpenCL
    commands can wait on MPI progress with no host involvement.

    The request must still be live: once a ``wait``/``test`` has consumed
    it, the handle is the analogue of ``MPI_REQUEST_NULL`` and bridging
    it is a use-after-free (raises :class:`ClmpiError`).  Bridging a
    request that has *completed* but has not been waited on is fine —
    the returned event is complete immediately.
    """
    env = request.env
    if request.consumed:
        message = (f"request {request.label!r} was already consumed by "
                   "wait/test (MPI_REQUEST_NULL); create the event before "
                   "waiting on the request")
        if env.monitor is not None:
            env.monitor.on_misuse("bridge-consumed-request", message,
                                  entity=request)
        raise ClmpiError(message)
    uev = context.create_user_event(label)
    if env.monitor is not None:
        env.monitor.on_event_bridge(request, uev)

    def _fire(ev):
        if ev.ok:
            uev.set_complete()
        else:
            uev.set_failed(ev.value)

    if request.completion.processed:
        _fire(request.completion)
    else:
        request.completion.callbacks.append(_fire)
    return uev


# ---------------------------------------------------------------------------
# host-side MPI_CL_MEM wrappers (§IV.C)
# ---------------------------------------------------------------------------
def isend(runtime: ClmpiRuntime, array: Optional[np.ndarray], dest: int,
          tag: int, comm: Communicator, datatype: Datatype = CL_MEM,
          nbytes: Optional[int] = None) -> Generator[Any, Any, Request]:
    """``MPI_Isend(..., MPI_CL_MEM, ...)``: host buffer → remote device.

    With ``datatype=CL_MEM`` the receiver is expected to be a communicator
    device (its rank posts :func:`enqueue_recv_buffer`); the runtime picks
    an optimized collaboration — pipelined for large payloads — without
    the application spelling it out.  Any other datatype falls through to
    the plain MPI path.
    """
    if not datatype.is_cl_mem:
        return (yield from comm.isend(array, dest, tag))
    size = _payload_size(array, nbytes)
    side = runtime._host_side(array, size, comm)
    proc = runtime.env.process(
        runtime.do_send(side, dest, tag, comm),
        name=f"clmpi.host-send r{comm.rank}->r{dest}")
    req = Request(runtime.env, proc, kind="clmpi-send")
    if runtime.env.monitor is not None:
        runtime.env.monitor.on_clmpi_host_transfer(
            req, proc, "send", comm, dest, tag, size)
    return req


def irecv(runtime: ClmpiRuntime, array: Optional[np.ndarray], source: int,
          tag: int, comm: Communicator, datatype: Datatype = CL_MEM,
          nbytes: Optional[int] = None) -> Generator[Any, Any, Request]:
    """``MPI_Irecv(..., MPI_CL_MEM, ...)``: remote device → host buffer
    (the Fig 7 pattern)."""
    if not datatype.is_cl_mem:
        return (yield from comm.irecv(array, source, tag))
    size = _payload_size(array, nbytes)
    side = runtime._host_side(array, size, comm)
    proc = runtime.env.process(
        runtime.do_recv(side, source, tag, comm),
        name=f"clmpi.host-recv r{comm.rank}<-r{source}")
    req = Request(runtime.env, proc, kind="clmpi-recv")
    if runtime.env.monitor is not None:
        runtime.env.monitor.on_clmpi_host_transfer(
            req, proc, "recv", comm, source, tag, size)
    return req


def _payload_size(array: Optional[np.ndarray], nbytes: Optional[int]) -> int:
    """Resolve the payload size of a host-side CL_MEM transfer."""
    if nbytes is not None:
        return nbytes
    if array is None:
        raise ClmpiError("pass nbytes when array is None (timing-only)")
    return array.reshape(-1).view(np.uint8).nbytes


def send(runtime: ClmpiRuntime, array: Optional[np.ndarray], dest: int,
         tag: int, comm: Communicator, datatype: Datatype = CL_MEM,
         nbytes: Optional[int] = None) -> Generator[Any, Any, None]:
    """Blocking :func:`isend`."""
    req = yield from isend(runtime, array, dest, tag, comm, datatype, nbytes)
    yield from req.wait()
    yield from comm.node().host.sync_wakeup()


def recv(runtime: ClmpiRuntime, array: Optional[np.ndarray], source: int,
         tag: int, comm: Communicator, datatype: Datatype = CL_MEM,
         nbytes: Optional[int] = None) -> Generator[Any, Any, None]:
    """Blocking :func:`irecv`."""
    req = yield from irecv(runtime, array, source, tag, comm, datatype,
                           nbytes)
    yield from req.wait()
    yield from comm.node().host.sync_wakeup()
