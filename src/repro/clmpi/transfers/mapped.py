"""The *mapped* transfer engine (§III).

The device buffer is mapped into host address space
(``clEnqueueMapBuffer``) and the MPI stack streams straight from/to the
mapping, so there is no staging stage at all — the lowest fixed cost of
the three engines, which is why it wins for small messages on Cichlid
(Fig 8a).  The price is that the stream rate is capped by the PCIe
mapped-access bandwidth of whichever endpoint is a device — ruinous on
RICC's C1060 (Fig 8b).

Rate composition: the sender throttles the wire with its own mapped-path
cap; the receiver's cap travels back on the MPI rendezvous clear-to-send
(see :meth:`repro.mpi.comm.Communicator.irecv_bytes`), so the effective
stream rate is ``min(nic, sender_cap, receiver_cap)`` with no extra
control traffic.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.clmpi.transfers.base import (
    Side,
    TransferDescriptor,
    recv_data,
    register_mode,
    send_data,
)

__all__ = ["send", "recv"]


def send(side: Side, peer: int,
         desc: TransferDescriptor) -> Generator[Any, Any, None]:
    """Sender half: map, stream out over the wire, unmap."""
    if side.pcie is not None:
        yield from side.pcie.map_buffer()
        yield side.rt.env.timeout(side.pcie.spec.mapped_latency)
    yield from send_data(side, peer, desc.data_tag, side.data, desc.nbytes,
                         rate_limit=side.mapped_bw)
    if side.pcie is not None:
        yield from side.pcie.map_buffer()  # unmap bookkeeping


def recv(side: Side, peer: int,
         desc: TransferDescriptor) -> Generator[Any, Any, None]:
    """Receiver half: map, stream in (advertising our cap), unmap."""
    if side.pcie is not None:
        yield from side.pcie.map_buffer()
        yield side.rt.env.timeout(side.pcie.spec.mapped_latency)
    yield from recv_data(side, peer, desc.data_tag, side.data, desc.nbytes,
                         rate_limit=side.mapped_bw)
    if side.pcie is not None:
        yield from side.pcie.map_buffer()


register_mode("mapped", send, recv)
