"""The *pipelined* transfer engine (§III, evaluated in Fig 8).

The payload is split into fixed-size blocks; each block's host↔device DMA
overlaps the wire transfer of its neighbours (the MVAPICH2-GPU technique
[7]).  The sender runs a *staging* coroutine (DMA device→host, block by
block) concurrently with a *wire* coroutine (MPI send of each staged
block); the receiver mirrors this.  Overlap emerges from the simulator's
resource model: the PCIe engine and the NIC are independent resources.

With ``base='mapped'`` the DMA stage disappears (blocks stream from the
mapping) and pipelining only amortizes per-block overheads — included
because §V.B notes the pipelined transfer "can also be implemented using
either the pinned or mapped data transfer".
"""

from __future__ import annotations

from typing import Any, Generator

from repro.clmpi.transfers.base import (
    Side,
    TransferDescriptor,
    register_mode,
    send_data,
)
from repro.errors import ClmpiError

__all__ = ["send", "recv", "blocks_of", "pipeline_time_bounds"]


def blocks_of(nbytes: int, block: int) -> list[tuple[int, int]]:
    """Split ``nbytes`` into ``(start, stop)`` block ranges."""
    if block <= 0:
        raise ClmpiError(f"pipeline block size must be positive, got {block}")
    return [(lo, min(lo + block, nbytes)) for lo in range(0, nbytes, block)]


def send(side: Side, peer: int,
         desc: TransferDescriptor) -> Generator[Any, Any, None]:
    """Sender half: per-block d2h staging overlapped with wire sends."""
    env = side.rt.env
    if desc.block is None:
        raise ClmpiError("pipelined transfer needs a block size")
    ranges = blocks_of(desc.nbytes, desc.block)
    staged = [env.event() for _ in ranges]
    use_dma = side.pcie is not None and desc.base == "pinned"
    rate = None
    if side.pcie is not None and desc.base == "mapped":
        rate = side.mapped_bw
        yield from side.pcie.map_buffer()
    # One causal chain per block: its d2h staging, wire message, and
    # receiver-side h2d drain all share a flow id (the receiver reads it
    # off the matched envelope), so the exported trace connects every
    # pipeline stage end-to-end.
    tracer = env.tracer
    flows = ([tracer.new_flow() for _ in ranges] if tracer is not None
             else [0] * len(ranges))

    def stager():
        for i, (lo, hi) in enumerate(ranges):
            if use_dma:
                yield from side.pcie.d2h(hi - lo, pinned=True,
                                         label=f"pipe d2h blk{i}",
                                         flow=flows[i])
            else:
                yield env.timeout(0.0)
            staged[i].succeed()

    def wire():
        for i, (lo, hi) in enumerate(ranges):
            yield staged[i]
            yield from send_data(side, peer, desc.data_tag,
                                 side.slice(lo, hi), hi - lo,
                                 rate_limit=rate, flow=flows[i])

    p1 = env.process(stager(), name="clmpi.pipe.stager")
    p2 = env.process(wire(), name="clmpi.pipe.wire")
    yield env.all_of([p1, p2])
    if side.pcie is not None and desc.base == "mapped":
        yield from side.pcie.map_buffer()  # unmap


def recv(side: Side, peer: int,
         desc: TransferDescriptor) -> Generator[Any, Any, None]:
    """Receiver half: wire receives overlapped with per-block h2d.

    All block receives are pre-posted (as real pipelined implementations
    do), so consecutive blocks stream back-to-back on the wire; the
    per-block DMA drains them in arrival order, overlapping the wire
    transfer of the next block.
    """
    if desc.block is None:
        raise ClmpiError("pipelined transfer needs a block size")
    ranges = blocks_of(desc.nbytes, desc.block)
    use_dma = side.pcie is not None and desc.base == "pinned"
    rate = None
    if side.pcie is not None and desc.base == "mapped":
        rate = side.mapped_bw
        yield from side.pcie.map_buffer()
    reqs = []
    for lo, hi in ranges:
        reqs.append((yield from side.rt.irecv_bytes(
            side.slice(lo, hi), hi - lo, peer, desc.data_tag,
            rate_limit=rate)))
    for i, (lo, hi) in enumerate(ranges):
        yield from reqs[i].wait()
        if use_dma:
            # Join the block's causal chain (flow id arrived with the
            # matched envelope) so h2d links back to wire and d2h.
            posted = reqs[i].posted
            yield from side.pcie.h2d(hi - lo, pinned=True,
                                     label=f"pipe h2d blk{i}",
                                     flow=0 if posted is None
                                     else posted.flow)
    if side.pcie is not None and desc.base == "mapped":
        yield from side.pcie.map_buffer()


def pipeline_time_bounds(nbytes: int, block: int, dma_bw: float,
                         wire_bw: float, wire_latency: float
                         ) -> tuple[float, float]:
    """Analytic (lower, upper) bounds on pipelined transfer time.

    Used by property tests: the simulated duration must fall between the
    no-overhead pipeline bound and the fully-serialized bound.
    """
    n = max(1, -(-nbytes // block))
    per_block_wire = wire_latency + block / wire_bw
    lower = block / dma_bw + n * (nbytes / n) / wire_bw + wire_latency
    upper = n * (block / dma_bw + per_block_wire) + block / dma_bw
    return lower, upper


register_mode("pipelined", send, recv)
