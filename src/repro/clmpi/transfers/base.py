"""Common scaffolding for the transfer engines.

Each engine is a *pair* of simulation coroutines — ``send(side, peer,
desc)`` and ``recv(side, peer, desc)`` — executed by the two endpoints of
one clMPI transfer.  A :class:`Side` bundles everything an engine needs
about its own endpoint; the :class:`TransferDescriptor` holds the
parameters of the transfer.

**Deterministic agreement.**  There is no control handshake on the wire:
both endpoints derive the same ``(mode, block, base)`` independently from
the message size and the (system-wide) selector policy, exactly as the
paper's implementation does for its ``MPI_CL_MEM`` wrapper functions —
the pipeline configuration is runtime state shared by construction, not
negotiated per message.  Endpoint-specific rate caps (PCIe mapped-path
bandwidth) ride for free on the MPI rendezvous clear-to-send.

Engines move *real* bytes through the MPI layer when the endpoint is
functional, and switch to timing-only messages otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

import numpy as np

from repro.errors import ClmpiError

__all__ = ["Side", "TransferDescriptor", "TRANSFER_MODES", "register_mode",
           "send_data", "recv_data", "DATA_TAG_BASE"]

#: tag base of clMPI data messages inside the runtime communicator (the
#: runtime always communicates on its own duplicated comm, so this only
#: separates clMPI data from the runtime's other internal traffic)
DATA_TAG_BASE = 1 << 27

#: tag stride between fault-tolerance attempts of one transfer: a retried
#: or degraded attempt talks on fresh tags, so stale messages / posted
#: receives abandoned by a failed attempt can never match the new one.
#: (Attempts stay < 8, keeping data tags far below the 1 << 29 runtime
#: object-tag space and the 1 << 30 collective tag space.)
ATTEMPT_TAG_STRIDE = 1 << 24


@dataclass(frozen=True)
class TransferDescriptor:
    """Parameters of one clMPI transfer (derived identically at both ends)."""

    #: total payload bytes
    nbytes: int
    #: engine name: 'pinned' | 'mapped' | 'pipelined'
    mode: str
    #: application tag of the transfer
    tag: int
    #: pipeline block size (pipelined only)
    block: Optional[int] = None
    #: staging engine under pipelining: 'pinned' | 'mapped'
    base: str = "pinned"
    #: fault-tolerance attempt number (0 = first try; same at both ends)
    attempt: int = 0

    @property
    def data_tag(self) -> int:
        return DATA_TAG_BASE + self.attempt * ATTEMPT_TAG_STRIDE + self.tag


@dataclass
class Side:
    """One endpoint's view of a transfer.

    Attributes
    ----------
    rt:
        The runtime's (duplicated) communicator handle for this rank.
    host:
        The endpoint's :class:`~repro.hardware.host.HostModel`.
    pcie:
        The endpoint's PCIe model, or None when the endpoint is host
        memory (the ``MPI_CL_MEM`` host-side wrappers of §IV.C).
    data:
        Byte view to send from / receive into, or None for timing-only.
    nbytes:
        Payload size in bytes.
    """

    rt: Any
    host: Any
    pcie: Optional[Any]
    data: Optional[np.ndarray]
    nbytes: int

    @property
    def mapped_bw(self) -> Optional[float]:
        """This endpoint's PCIe mapped-access bandwidth (None if host)."""
        return None if self.pcie is None else self.pcie.spec.mapped_bandwidth

    def slice(self, start: int, stop: int) -> Optional[np.ndarray]:
        """Sub-view of the payload, or None in timing-only mode."""
        if self.data is None:
            return None
        return self.data[start:stop]


#: mode name -> (send_coroutine, recv_coroutine)
TRANSFER_MODES: dict[str, tuple[Callable, Callable]] = {}


def register_mode(name: str, send: Callable, recv: Callable) -> None:
    """Register a transfer engine pair under ``name``."""
    if name in TRANSFER_MODES:
        raise ClmpiError(f"transfer mode {name!r} already registered")
    TRANSFER_MODES[name] = (send, recv)


# ---------------------------------------------------------------------------
# shared data-plane helpers
# ---------------------------------------------------------------------------
def send_data(side: Side, peer: int, tag: int,
              view: Optional[np.ndarray], nbytes: int,
              rate_limit: Optional[float] = None,
              flow: int = 0) -> Generator[Any, Any, None]:
    """Blocking raw-byte send on the runtime communicator."""
    req = yield from side.rt.isend_bytes(view, nbytes, peer, tag, rate_limit,
                                         flow=flow)
    yield from req.wait()


def recv_data(side: Side, peer: int, tag: int,
              view: Optional[np.ndarray], nbytes: int,
              rate_limit: Optional[float] = None
              ) -> Generator[Any, Any, int]:
    """Blocking raw-byte receive on the runtime communicator.

    Returns the message's causal flow id (0 when untraced) so callers
    can link their follow-up stages into the chain.
    """
    req = yield from side.rt.irecv_bytes(view, nbytes, peer, tag,
                                         rate_limit=rate_limit)
    yield from req.wait()
    return 0 if req.posted is None else req.posted.flow
