"""The three inter-node transfer engines of §III / §V.B."""

from repro.clmpi.transfers.base import (
    Side,
    TransferDescriptor,
    TRANSFER_MODES,
    send_data,
    recv_data,
)
from repro.clmpi.transfers import pinned, mapped, pipelined  # registers modes

__all__ = ["Side", "TransferDescriptor", "TRANSFER_MODES",
           "send_data", "recv_data", "pinned", "mapped", "pipelined"]
