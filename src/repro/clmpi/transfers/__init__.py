"""The three inter-node transfer engines of §III / §V.B."""

from repro.clmpi.transfers import mapped, pinned, pipelined  # registers modes
from repro.clmpi.transfers.base import (
    TRANSFER_MODES,
    Side,
    TransferDescriptor,
    recv_data,
    send_data,
)

__all__ = ["Side", "TransferDescriptor", "TRANSFER_MODES",
           "send_data", "recv_data", "pinned", "mapped", "pipelined"]
