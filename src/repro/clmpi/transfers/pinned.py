"""The *pinned* transfer engine (§III).

Device → wire: an explicit DMA copy from device memory into a page-locked
host staging buffer, then an MPI send from that buffer.  Wire → device:
MPI receive into the pinned staging buffer, then an explicit DMA write.
The stages are strictly serialized — that is the point the pipelined
engine improves on.

Host-memory endpoints (``MPI_CL_MEM`` wrappers) skip the DMA stage.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.clmpi.transfers.base import (
    Side,
    TransferDescriptor,
    recv_data,
    register_mode,
    send_data,
)

__all__ = ["send", "recv"]


def send(side: Side, peer: int,
         desc: TransferDescriptor) -> Generator[Any, Any, None]:
    """Sender half: d2h into pinned staging, then MPI send."""
    # The staging copy, wire message, and receiver-side drain share one
    # causal flow id so the exported trace links the stages end-to-end.
    tracer = side.rt.env.tracer
    flow = tracer.new_flow() if tracer is not None else 0
    if side.pcie is not None:
        yield from side.pcie.d2h(desc.nbytes, pinned=True,
                                 label=f"clmpi.pinned d2h {desc.nbytes}B",
                                 flow=flow)
    yield from send_data(side, peer, desc.data_tag, side.data, desc.nbytes,
                         flow=flow)


def recv(side: Side, peer: int,
         desc: TransferDescriptor) -> Generator[Any, Any, None]:
    """Receiver half: MPI receive into pinned staging, then h2d."""
    flow = yield from recv_data(side, peer, desc.data_tag, side.data,
                                desc.nbytes)
    if side.pcie is not None:
        yield from side.pcie.h2d(desc.nbytes, pinned=True,
                                 label=f"clmpi.pinned h2d {desc.nbytes}B",
                                 flow=flow)


register_mode("pinned", send, recv)
