"""clMPI: the paper's OpenCL extension for MPI interoperation.

Public surface (paper name → ours):

* ``clEnqueueSendBuffer``  → :func:`enqueue_send_buffer`
* ``clEnqueueRecvBuffer``  → :func:`enqueue_recv_buffer`
* ``clCreateEventFromMPIRequest`` → :func:`event_from_mpi_request`
* ``MPI_Isend/MPI_Irecv/MPI_Send/MPI_Recv`` with ``MPI_CL_MEM`` →
  :func:`isend` / :func:`irecv` / :func:`send` / :func:`recv`
  (host-side wrappers that collaborate with a communicator device)

plus the runtime that makes them work: per-rank :class:`ClmpiRuntime`
owning a duplicated communicator (so runtime traffic never collides with
application messages) and the three transfer engines of §III — *pinned*,
*mapped* and *pipelined(N)* — behind the automatic :class:`TransferSelector`.
"""

from repro.clmpi import dcgn, gpu_aware
from repro.clmpi.api import (
    enqueue_recv_buffer,
    enqueue_send_buffer,
    event_from_mpi_request,
    irecv,
    isend,
    recv,
    send,
)
from repro.clmpi.autotune import TuneReport, tune_policy
from repro.clmpi.fileio import enqueue_read_file, enqueue_write_file
from repro.clmpi.runtime import ClmpiRuntime
from repro.clmpi.selector import TransferSelector
from repro.clmpi.transfers.base import TRANSFER_MODES, TransferDescriptor

__all__ = [
    "ClmpiRuntime",
    "TransferSelector",
    "enqueue_send_buffer",
    "enqueue_recv_buffer",
    "event_from_mpi_request",
    "isend",
    "irecv",
    "send",
    "recv",
    "enqueue_read_file",
    "enqueue_write_file",
    "tune_policy",
    "TuneReport",
    "gpu_aware",
    "dcgn",
    "TRANSFER_MODES",
    "TransferDescriptor",
]
