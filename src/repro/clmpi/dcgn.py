"""DCGN-style comparator (§II related work, Stuart & Owens).

DCGN lets *kernels* initiate inter-node communication: a kernel writes a
request record into a region of device memory that a CPU thread monitors;
the CPU thread reads the requests over PCIe and services them with MPI.
The paper's §II critique: "the approach of monitoring the device memory
needs a non-negligible runtime overhead" — whereas clMPI represents
requests as OpenCL commands and rides the existing event machinery.

This module models exactly that mechanism so the critique can be
*measured*: a per-rank :class:`DcgnMonitor` coroutine polls the request
region every ``poll_interval`` (a mapped PCIe read each time, paid even
when idle), discovers requests only at poll boundaries (detection
latency ~ interval/2), and services them with the same transfer engines
clMPI uses.  The difference from clMPI is therefore purely the
request-detection mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.clmpi.runtime import ClmpiRuntime
from repro.errors import ClmpiError
from repro.launcher import RankContext
from repro.ocl.buffer import Buffer
from repro.sim import Event

__all__ = ["DcgnConfig", "DcgnMonitor"]


@dataclass(frozen=True)
class DcgnConfig:
    """Monitor tuning.

    Attributes
    ----------
    poll_interval:
        Seconds between CPU polls of the device request region.
    slots:
        Request slots in the monitored region.
    slot_bytes:
        Bytes per request record (read over PCIe every poll).
    """

    poll_interval: float = 200e-6
    slots: int = 16
    slot_bytes: int = 64

    def __post_init__(self) -> None:
        if self.poll_interval <= 0:
            raise ClmpiError("poll interval must be positive")
        if self.slots < 1 or self.slot_bytes < 1:
            raise ClmpiError("need at least one request slot")


class _Request:
    __slots__ = ("kind", "buf", "offset", "size", "peer", "tag",
                 "posted_at", "seen", "done")

    def __init__(self, env, kind, buf, offset, size, peer, tag):
        self.kind = kind
        self.buf = buf
        self.offset = offset
        self.size = size
        self.peer = peer
        self.tag = tag
        self.posted_at = env.now
        self.seen = Event(env)      # fires when a poll discovers it
        self.done = Event(env)      # fires when the transfer completes


class DcgnMonitor:
    """Per-rank CPU monitor thread servicing kernel-posted requests."""

    def __init__(self, ctx: RankContext,
                 config: Optional[DcgnConfig] = None):
        self.ctx = ctx
        self.config = config or DcgnConfig()
        self.env = ctx.env
        self.runtime: ClmpiRuntime = ctx.runtime
        self._pending: list[_Request] = []
        self._stopped = False
        self.polls = 0
        self._proc = self.env.process(self._monitor(),
                                      name=f"dcgn.monitor.r{ctx.rank}")

    # -- the monitoring thread ------------------------------------------------
    def _monitor(self):
        pcie = self.ctx.device.pcie
        region = self.config.slots * self.config.slot_bytes
        while not self._stopped:
            yield self.env.timeout(self.config.poll_interval)
            # the poll itself: a mapped read of the request region — paid
            # on EVERY interval, requests or not (the §II overhead)
            yield from pcie.mapped_read(region, "dcgn-poll")
            self.polls += 1
            ready = [r for r in self._pending if not r.seen.triggered]
            for req in ready:
                req.seen.succeed()
                self.env.process(self._service(req),
                                 name=f"dcgn.service t{req.tag}")

    def _service(self, req: _Request):
        side = self.runtime._device_side(req.buf, req.offset, req.size)
        if req.kind == "send":
            yield from self.runtime.do_send(side, req.peer, req.tag,
                                            self.ctx.comm)
        else:
            yield from self.runtime.do_recv(side, req.peer, req.tag,
                                            self.ctx.comm)
        self._pending.remove(req)
        req.done.succeed()

    def stop(self) -> Generator[Any, Any, None]:
        """Shut the monitor down (drains at the next poll boundary)."""
        self._stopped = True
        yield self._proc

    # -- the "kernel-side" API ---------------------------------------------------
    def _post(self, kind: str, buf: Buffer, offset: int, size: int,
              peer: int, tag: int) -> _Request:
        if len(self._pending) >= self.config.slots:
            raise ClmpiError("DCGN request slots exhausted")
        buf.check_range(offset, size)
        # the posting write is device-local (a kernel store): free
        req = _Request(self.env, kind, buf, offset, size, peer, tag)
        self._pending.append(req)
        return req

    def device_send(self, buf: Buffer, offset: int, size: int, dest: int,
                    tag: int) -> Generator[Any, Any, float]:
        """Kernel-initiated send: post a request, wait for service.

        Returns the *detection latency* (post → discovered by a poll).
        """
        req = self._post("send", buf, offset, size, dest, tag)
        yield req.seen
        detected = self.env.now - req.posted_at
        yield req.done
        return detected

    def device_recv(self, buf: Buffer, offset: int, size: int, source: int,
                    tag: int) -> Generator[Any, Any, float]:
        """Kernel-initiated receive (see :meth:`device_send`)."""
        req = self._post("recv", buf, offset, size, source, tag)
        yield req.seen
        detected = self.env.now - req.posted_at
        yield req.done
        return detected
