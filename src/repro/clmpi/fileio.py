"""File-I/O extension commands (§VI).

The paper's conclusion: "not only MPI peer-to-peer communications but also
other time-consuming tasks such as file I/O would be encapsulated in
other additional OpenCL commands".  This module implements that future
work with the same design as the clMPI commands: ``clEnqueueReadFile`` /
``clEnqueueWriteFile`` run inside a command queue, ordered by queue
semantics and event wait lists, and a file↔device transfer pipelines the
disk access with the PCIe copy — the host thread is never involved.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro.errors import ClmpiError
from repro.hardware.storage import SimFile
from repro.ocl.buffer import Buffer
from repro.ocl.enums import CommandType
from repro.ocl.event import CLEvent
from repro.ocl.queue import CommandQueue

__all__ = ["enqueue_read_file", "enqueue_write_file"]

#: disk↔device staging granularity (pipelines disk with PCIe)
IO_BLOCK = 4 << 20


def _blocks(size: int) -> list[tuple[int, int]]:
    return [(lo, min(lo + IO_BLOCK, size)) for lo in range(0, size, IO_BLOCK)]


def enqueue_read_file(queue: CommandQueue, buf: Buffer, blocking: bool,
                      buf_offset: int, size: int, file: SimFile,
                      file_offset: int = 0,
                      wait_for: Sequence[CLEvent] = ()
                      ) -> Generator[Any, Any, CLEvent]:
    """``clEnqueueReadFile``: file → device buffer, as a queue command.

    The disk read of block *i+1* overlaps the h2d copy of block *i*.
    """
    _validate(queue, buf, buf_offset, size, file, file_offset)
    node = queue.device.node
    env = queue.env

    def execute():
        ranges = _blocks(size)
        staged = [env.event() for _ in ranges]

        def disk_stage():
            for i, (lo, hi) in enumerate(ranges):
                yield from node.storage.read(hi - lo, f"fread {file.name}",
                                             first=(i == 0))
                staged[i].succeed()

        def pcie_stage():
            for i, (lo, hi) in enumerate(ranges):
                yield staged[i]
                yield from node.pcie.h2d(hi - lo, pinned=True,
                                         label=f"fread h2d blk{i}")

        p1 = env.process(disk_stage(), name="fileio.disk")
        p2 = env.process(pcie_stage(), name="fileio.pcie")
        yield env.all_of([p1, p2])
        if queue.context.functional:
            buf.bytes_view(buf_offset, size)[:] = \
                file.data[file_offset:file_offset + size]

    return (yield from queue.enqueue_custom(
        CommandType.READ_FILE, f"fread:{file.name}", execute,
        wait_for=wait_for, blocking=blocking, nbytes=size))


def enqueue_write_file(queue: CommandQueue, buf: Buffer, blocking: bool,
                       buf_offset: int, size: int, file: SimFile,
                       file_offset: int = 0,
                       wait_for: Sequence[CLEvent] = ()
                       ) -> Generator[Any, Any, CLEvent]:
    """``clEnqueueWriteFile``: device buffer → file, as a queue command."""
    _validate(queue, buf, buf_offset, size, file, file_offset)
    node = queue.device.node
    env = queue.env

    def execute():
        ranges = _blocks(size)
        staged = [env.event() for _ in ranges]

        def pcie_stage():
            for i, (lo, hi) in enumerate(ranges):
                yield from node.pcie.d2h(hi - lo, pinned=True,
                                         label=f"fwrite d2h blk{i}")
                staged[i].succeed()

        def disk_stage():
            for i, (lo, hi) in enumerate(ranges):
                yield staged[i]
                yield from node.storage.write(hi - lo,
                                              f"fwrite {file.name}",
                                              first=(i == 0))

        p1 = env.process(pcie_stage(), name="fileio.pcie")
        p2 = env.process(disk_stage(), name="fileio.disk")
        yield env.all_of([p1, p2])
        if queue.context.functional:
            file.data[file_offset:file_offset + size] = \
                buf.bytes_view(buf_offset, size)

    return (yield from queue.enqueue_custom(
        CommandType.WRITE_FILE, f"fwrite:{file.name}", execute,
        wait_for=wait_for, blocking=blocking, nbytes=size))


def _validate(queue, buf, buf_offset, size, file, file_offset) -> None:
    queue.context._check_buffer(buf)
    buf.check_range(buf_offset, size)
    if not isinstance(file, SimFile):
        raise ClmpiError(f"expected a SimFile, got {type(file)!r}")
    if file.storage is not queue.device.node.storage:
        raise ClmpiError(
            f"file {file.name!r} lives on another node's storage")
    file.check_range(file_offset, size)
