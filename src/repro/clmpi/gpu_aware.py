"""GPU-aware MPI comparator (§II related work).

Models the MVAPICH2-GPU / MPI-ACC class of systems the paper contrasts
itself with: MPI calls accept *device* buffers directly and internally
use the same optimized staging engines (our pinned/mapped/pipelined), but
— and this is the paper's §II argument — "all inter-node communications
are still managed by the host thread ... the host thread needs to wait
for the kernel execution completion in order to serialize the kernel
execution and the MPI communication".

Concretely: these functions are *host* calls.  Dependencies on device
work must be satisfied by the host (blocking on events) before calling;
there is no command/event integration.  The transfer engines themselves
are identical to clMPI's — isolating exactly the programming-model
difference the paper measures.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro.clmpi.runtime import ClmpiRuntime
from repro.mpi.comm import Communicator
from repro.mpi.request import Request
from repro.ocl.api import wait_for_events
from repro.ocl.buffer import Buffer
from repro.ocl.event import CLEvent

__all__ = ["isend_device", "irecv_device", "send_device", "recv_device",
           "sendrecv_device"]


def isend_device(runtime: ClmpiRuntime, buf: Buffer, offset: int,
                 size: int, dest: int, tag: int, comm: Communicator,
                 after: Sequence[CLEvent] = ()
                 ) -> Generator[Any, Any, Request]:
    """GPU-aware ``MPI_Isend`` of a device buffer.

    ``after`` are device events the *host* first blocks on
    (``clWaitForEvents``) — the serialization a GPU-aware MPI cannot
    avoid, since it has no way to hook MPI progress into OpenCL events.
    """
    if after:
        yield from wait_for_events(after, host=comm.node().host)
    side = runtime._device_side(buf, offset, size)
    proc = runtime.env.process(
        runtime.do_send(side, dest, tag, comm),
        name=f"gpu-aware.send r{comm.rank}->r{dest}")
    return Request(runtime.env, proc, kind="gpu-aware-send")


def irecv_device(runtime: ClmpiRuntime, buf: Buffer, offset: int,
                 size: int, source: int, tag: int, comm: Communicator,
                 after: Sequence[CLEvent] = ()
                 ) -> Generator[Any, Any, Request]:
    """GPU-aware ``MPI_Irecv`` into a device buffer."""
    if after:
        yield from wait_for_events(after, host=comm.node().host)
    side = runtime._device_side(buf, offset, size)
    proc = runtime.env.process(
        runtime.do_recv(side, source, tag, comm),
        name=f"gpu-aware.recv r{comm.rank}<-r{source}")
    return Request(runtime.env, proc, kind="gpu-aware-recv")


def send_device(runtime: ClmpiRuntime, buf: Buffer, offset: int, size: int,
                dest: int, tag: int, comm: Communicator,
                after: Sequence[CLEvent] = ()) -> Generator[Any, Any, None]:
    """Blocking GPU-aware send (host tied up for the whole transfer)."""
    req = yield from isend_device(runtime, buf, offset, size, dest, tag,
                                  comm, after)
    yield from req.wait()
    yield from comm.node().host.sync_wakeup()


def recv_device(runtime: ClmpiRuntime, buf: Buffer, offset: int, size: int,
                source: int, tag: int, comm: Communicator,
                after: Sequence[CLEvent] = ()) -> Generator[Any, Any, None]:
    """Blocking GPU-aware receive."""
    req = yield from irecv_device(runtime, buf, offset, size, source, tag,
                                  comm, after)
    yield from req.wait()
    yield from comm.node().host.sync_wakeup()


def sendrecv_device(runtime: ClmpiRuntime, sbuf: Buffer, s_off: int,
                    dest: int, stag: int, rbuf: Buffer, r_off: int,
                    source: int, rtag: int, size: int, comm: Communicator,
                    after: Sequence[CLEvent] = ()
                    ) -> Generator[Any, Any, None]:
    """GPU-aware ``MPI_Sendrecv`` of device buffers (halo exchange)."""
    if after:
        yield from wait_for_events(after, host=comm.node().host)
    sreq = yield from isend_device(runtime, sbuf, s_off, size, dest, stag,
                                   comm)
    rreq = yield from irecv_device(runtime, rbuf, r_off, size, source,
                                   rtag, comm)
    yield from rreq.wait()
    yield from sreq.wait()
    yield from comm.node().host.sync_wakeup()
