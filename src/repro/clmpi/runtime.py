"""The per-rank clMPI runtime.

One :class:`ClmpiRuntime` exists per MPI process (per rank).  It owns:

* a *duplicated* communicator per application communicator, so that
  runtime traffic (descriptors, acks, data blocks) can never collide with
  application messages — the simulated analogue of the dedicated
  communication thread + internal tags of the paper's implementation
  (§V.A);
* the :class:`~repro.clmpi.selector.TransferSelector` implementing the
  automatic engine choice of §V.B;
* the transfer orchestration: both endpoints derive identical transfer
  parameters from the message size and the shared policy (see
  :meth:`ClmpiRuntime.describe`) and run the complementary engine
  coroutines.

Every transfer runs as its own coroutine.  The paper's runtime multiplexes
all transfers onto one communication thread driven by nonblocking MPI;
the DES equivalent of "one thread, many outstanding nonblocking ops" is
simply concurrent coroutines — endpoint hardware resources (NIC ports,
PCIe engines) still serialize exactly where the real thread would.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from dataclasses import replace

from repro.clmpi.selector import TransferSelector
from repro.clmpi.transfers.base import (
    TRANSFER_MODES,
    Side,
    TransferDescriptor,
)
from repro.errors import ClmpiError, MpiError, MpiRankFailed, OclError
from repro.mpi.comm import Communicator
from repro.ocl.buffer import Buffer
from repro.ocl.context import Context

__all__ = ["ClmpiRuntime", "FALLBACK_LADDER"]

#: graceful-degradation order under fault injection: each engine in turn
#: trades peak throughput for fewer moving parts (pipelined needs staging
#: + many wire messages; pinned one staging copy + one message; mapped a
#: single capped stream with no staging at all)
FALLBACK_LADDER = ("pipelined", "pinned", "mapped")


class ClmpiRuntime:
    """Per-rank runtime backing the clMPI extension calls."""

    def __init__(self, context: Context, comm: Communicator,
                 selector: Optional[TransferSelector] = None,
                 policy=None):
        if selector is None:
            if policy is None:
                raise ClmpiError(
                    "ClmpiRuntime needs a TransferSelector or a policy")
            selector = TransferSelector(policy)
        self.context = context
        self.comm = comm
        self.selector = selector
        self.env = context.env
        self._rt_comms: dict[int, Communicator] = {}
        context.clmpi_runtime = self

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def rt_comm(self, comm: Communicator) -> Communicator:
        """The runtime's duplicated communicator mirroring ``comm``.

        Ranks must create their runtimes (and use communicators) in the
        same order — the standard ``MPI_Comm_dup`` requirement.
        """
        key = id(comm._state)
        if key not in self._rt_comms:
            self._rt_comms[key] = comm.dup()
        return self._rt_comms[key]

    def attach(self, context: Context) -> None:
        """Serve another context of the same rank (a second communicator
        device, §IV.A) with this runtime."""
        context.clmpi_runtime = self

    def _device_side(self, buf: Buffer, offset: int, size: int) -> Side:
        # Resolve hardware through the buffer's own context, so one
        # runtime serves every device of its rank.
        buf.check_range(offset, size)
        data = (buf.bytes_view(offset, size)
                if buf.context.functional else None)
        device = buf.context.device
        return Side(rt=None, host=device.node.host, pcie=device.pcie,
                    data=data, nbytes=size)

    def _host_side(self, array: Optional[np.ndarray], size: int,
                   comm: Communicator) -> Side:
        data = None
        if self.context.functional:
            if array is None:
                raise ClmpiError(
                    "host array may only be None in timing-only mode")
            flat = np.ascontiguousarray(array).reshape(-1).view(np.uint8)
            if flat.nbytes < size:
                raise ClmpiError(
                    f"host array of {flat.nbytes}B cannot carry {size}B")
            data = flat[:size]
        return Side(rt=None, host=comm.node().host, pcie=None,
                    data=data, nbytes=size)

    # ------------------------------------------------------------------
    # transfer orchestration
    # ------------------------------------------------------------------
    def describe(self, nbytes: int, tag: int) -> TransferDescriptor:
        """Derive the transfer parameters for a payload of ``nbytes``.

        Both endpoints call this independently and — because the selector
        policy is system-wide runtime state, exactly like the pipeline
        configuration of the paper's wrapper functions — arrive at the
        same engine and block size with **no control traffic**.  The two
        endpoints must therefore post matching sizes (a size mismatch is
        a program error, surfaced as a truncation/deadlock).
        """
        mode, block, base = self.selector.choose(nbytes)
        return TransferDescriptor(nbytes=nbytes, mode=mode, tag=tag,
                                  block=block, base=base)

    def do_send(self, side: Side, dest: int, tag: int,
                comm: Communicator) -> Generator[Any, Any, None]:
        """Sender endpoint of one clMPI transfer."""
        side.rt = self.rt_comm(comm)
        desc = self.describe(side.nbytes, tag)
        if self.env.metrics is not None:
            self.env.metrics.inc(f"clmpi.transfer.{desc.mode}")
            self.env.metrics.inc("clmpi.bytes", desc.nbytes)
        if self.env.monitor is not None:
            self.env.monitor.on_transfer("send", dest, tag, desc)
        if self.env.faults is None:
            send_fn, _ = TRANSFER_MODES[desc.mode]
            yield from send_fn(side, dest, desc)
            return
        yield from self._degraded("send", side, dest, desc)

    def do_recv(self, side: Side, source: int, tag: int,
                comm: Communicator) -> Generator[Any, Any, None]:
        """Receiver endpoint of one clMPI transfer."""
        side.rt = self.rt_comm(comm)
        desc = self.describe(side.nbytes, tag)
        if self.env.monitor is not None:
            self.env.monitor.on_transfer("recv", source, tag, desc)
        if self.env.faults is None:
            _, recv_fn = TRANSFER_MODES[desc.mode]
            yield from recv_fn(side, source, desc)
            return
        yield from self._degraded("recv", side, source, desc)

    @staticmethod
    def _attempt_modes(mode: str) -> tuple[str, ...]:
        """Retry-then-degrade sequence starting from the chosen engine.

        One retry of the chosen mode (a transient fault — a NIC flap, a
        burst of drops — may have passed), then each simpler engine of
        :data:`FALLBACK_LADDER` once.  Both endpoints derive the same
        sequence independently, so attempt *k* always pairs the same
        engines and (salted) tags on both sides with no control traffic.
        """
        if mode in FALLBACK_LADDER:
            rest = FALLBACK_LADDER[FALLBACK_LADDER.index(mode) + 1:]
        else:
            rest = FALLBACK_LADDER
        return (mode, mode) + rest

    def _degraded(self, op: str, side: Side, peer: int,
                  desc: TransferDescriptor) -> Generator[Any, Any, None]:
        """Run one endpoint through the retry/degrade attempt sequence."""
        env = self.env
        modes = self._attempt_modes(desc.mode)
        last: Optional[BaseException] = None
        for attempt, mode in enumerate(modes):
            d = replace(desc, mode=mode, attempt=attempt)
            fn = TRANSFER_MODES[mode][0 if op == "send" else 1]
            try:
                yield from fn(side, peer, d)
                return
            except (MpiError, OclError) as exc:
                # The peer's attempt fails at the same simulated time
                # (delivery failure poisons both endpoints' events), so
                # both sides advance to the next rung together.
                last = exc
                if isinstance(exc, MpiRankFailed):
                    # ULFM fail-stop: no rung of the ladder can reach a
                    # dead peer — the transfer is *orphaned*, not
                    # degradable.  Stop here so the failure surfaces
                    # while the communicator can still be revoked/shrunk.
                    if env.metrics is not None:
                        env.metrics.inc("clmpi.orphaned_flows")
                    mon = env.monitor
                    if mon is not None:
                        hook = getattr(mon, "on_fault", None)
                        if hook is not None:
                            hook({"kind": "clmpi_orphaned", "time": env.now,
                                  "op": op, "peer": peer, "tag": desc.tag,
                                  "rank": exc.rank, "node": exc.node,
                                  "flow": getattr(exc, "flow", 0)})
                    break
                if env.metrics is not None:
                    env.metrics.inc("clmpi.fallback_steps")
                    env.metrics.inc(f"clmpi.fallback.{mode}")
                mon = env.monitor
                if mon is not None:
                    hook = getattr(mon, "on_fault", None)
                    if hook is not None:
                        hook({"kind": "clmpi_degrade", "time": env.now,
                              "op": op, "peer": peer, "tag": desc.tag,
                              "mode": mode, "attempt": attempt,
                              "error": str(exc),
                              "flow": getattr(exc, "flow", 0)})
        if isinstance(last, MpiRankFailed):
            exc = ClmpiError(
                f"clMPI {op} with peer {peer} tag {desc.tag} "
                f"({desc.nbytes} B) orphaned: rank {last.rank} "
                f"(node {last.node}) has failed"
                + (f" [flow {last.flow}]" if getattr(last, "flow", 0)
                   else ""))
            exc.rank = last.rank
            exc.node = last.node
        else:
            exc = ClmpiError(
                f"clMPI {op} with peer {peer} tag {desc.tag} "
                f"({desc.nbytes} B) failed in every transfer mode "
                f"(attempts: {', '.join(modes)}); last error: {last}")
        exc.injected = getattr(last, "injected", False)
        exc.flow = getattr(last, "flow", 0)
        raise exc from last

    # convenience entry points used by the API layer -----------------------
    def device_send(self, buf: Buffer, offset: int, size: int, dest: int,
                    tag: int, comm: Communicator):
        """Coroutine: send from a device buffer (the command body)."""
        return self.do_send(self._device_side(buf, offset, size),
                            dest, tag, comm)

    def device_recv(self, buf: Buffer, offset: int, size: int, source: int,
                    tag: int, comm: Communicator):
        """Coroutine: receive into a device buffer (the command body)."""
        return self.do_recv(self._device_side(buf, offset, size),
                            source, tag, comm)
