"""Distributed conjugate-gradient Poisson solver on the clMPI stack.

Not a paper experiment — a downstream-style application demonstrating the
extension on a different communication pattern than Himeno: per-iteration
halo exchanges (``clEnqueueSendBuffer``/``RecvBuffer``) *plus* global dot
products (``MPI_Iallreduce``, the §VI nonblocking-collective direction).

Solves ``-∇²x = b`` on a 3-D grid (7-point stencil, homogeneous Dirichlet
boundary), decomposed 1-D along the slowest axis.  The search direction
``p`` lives in a ghost-extended buffer; all kernels that touch it take an
element offset so they operate on its interior.  Functional runs are
validated against SciPy's sparse CG in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

from repro import clmpi
from repro.errors import ConfigurationError
from repro.launcher import ClusterApp, RankContext
from repro.ocl.kernel import Kernel
from repro.systems.presets import SystemPreset

__all__ = ["CgConfig", "CgResult", "cg_main", "run_cg",
           "reference_solution"]

TAG_UP, TAG_DOWN = 31, 32


@dataclass(frozen=True)
class CgConfig:
    """CG problem parameters."""

    #: global interior grid (nz, ny, nx); decomposed along nz
    grid: tuple[int, int, int] = (32, 16, 16)
    max_iters: int = 60
    tol: float = 1e-8

    def __post_init__(self) -> None:
        nz, ny, nx = self.grid
        if min(nz, ny, nx) < 2:
            raise ConfigurationError("grid must be at least 2^3")
        if self.max_iters < 1 or self.tol <= 0:
            raise ConfigurationError("bad iteration/tolerance settings")

    def rows_of(self, rank: int, nranks: int) -> tuple[int, int]:
        """Global z-rows [lo, hi) owned by ``rank``."""
        nz = self.grid[0]
        if nranks > nz:
            raise ConfigurationError(f"{nranks} ranks > {nz} rows")
        base, extra = divmod(nz, nranks)
        lo = rank * base + min(rank, extra)
        return lo, lo + base + (1 if rank < extra else 0)

    def rhs(self) -> np.ndarray:
        """Deterministic right-hand side (point sources)."""
        nz, ny, nx = self.grid
        b = np.zeros((nz, ny, nx), dtype=np.float64)
        b[nz // 3, ny // 2, nx // 2] = 1.0
        b[2 * nz // 3, ny // 4, 3 * nx // 4] = -0.5
        return b


@dataclass
class CgResult:
    """Outcome of one distributed CG run."""

    config: CgConfig
    nodes: int
    iterations: int
    #: ||r||^2 per iteration (iteration 0 first)
    residuals: list[float]
    converged: bool
    time: float
    x: Optional[np.ndarray] = None


# ---------------------------------------------------------------------------
# kernels (all sized by local elements n; p-offset passed explicitly)
# ---------------------------------------------------------------------------
def _stencil_kernel(lz: int, ny: int, nx: int) -> Kernel:
    """q = A p_ghosted for the 7-point negative Laplacian."""

    def body(p_buf, q_buf) -> None:
        P = p_buf.view("f8", (lz + 2, ny, nx))
        Q = q_buf.view("f8", (lz, ny, nx))
        C = P[1:-1]
        acc = 6.0 * C - P[:-2] - P[2:]
        acc[:, 1:, :] -= C[:, :-1, :]
        acc[:, :-1, :] -= C[:, 1:, :]
        acc[:, :, 1:] -= C[:, :, :-1]
        acc[:, :, :-1] -= C[:, :, 1:]
        Q[:] = acc

    return Kernel("stencil_matvec", body=body, flops=8.0 * lz * ny * nx)


def _axpy_kernel(n: int, name: str) -> Kernel:
    """y[:n] += alpha * x[x_off : x_off+n].

    ``alpha`` may be a plain float or a one-element list read at kernel
    *execution* time — the latter lets a kernel enqueued before a global
    reduction completes consume the reduction's result, with the ordering
    enforced by an event from :func:`repro.clmpi.event_from_mpi_request`.
    """

    def body(y_buf, x_buf, alpha, x_off: int) -> None:
        a = float(alpha[0]) if isinstance(alpha, list) else float(alpha)
        y_buf.view("f8")[:n] += a * x_buf.view("f8")[x_off:x_off + n]

    return Kernel(name, body=body, flops=2.0 * n)


def _xpby_kernel(n: int) -> Kernel:
    """p[p_off : p_off+n] = r[:n] + beta * p[...] (the p update)."""

    def body(p_buf, r_buf, beta: float, p_off: int) -> None:
        p = p_buf.view("f8")
        p[p_off:p_off + n] = r_buf.view("f8")[:n] + beta * p[p_off:p_off + n]

    return Kernel("xpby", body=body, flops=2.0 * n)


def _dot_kernel(n: int, name: str) -> Kernel:
    """out[0] = a[a_off : a_off+n] . b[:n] (local partial dot)."""

    def body(a_buf, b_buf, out_buf, a_off: int) -> None:
        out_buf.view("f8")[0] = float(np.dot(
            a_buf.view("f8")[a_off:a_off + n], b_buf.view("f8")[:n]))

    return Kernel(name, body=body, flops=2.0 * n)


def cg_main(ctx: RankContext, cfg: CgConfig,
            collect: bool = False) -> Generator[Any, Any, dict]:
    """Rank coroutine of the distributed CG solver."""
    comm = ctx.comm
    nz, ny, nx = cfg.grid
    lo, hi = cfg.rows_of(ctx.rank, ctx.size)
    lz = hi - lo
    plane_elems = ny * nx
    plane = plane_elems * 8
    n = lz * plane_elems          # local interior elements
    p_off = plane_elems           # p's interior starts past the low ghost
    lo_nbr = ctx.rank - 1 if ctx.rank > 0 else None
    hi_nbr = ctx.rank + 1 if ctx.rank < ctx.size - 1 else None

    q0 = ctx.queue(name=f"r{ctx.rank}.compute")
    qs = ctx.queue(name=f"r{ctx.rank}.send")
    qr = ctx.queue(name=f"r{ctx.rank}.recv")

    p_buf = ctx.ocl.create_buffer((lz + 2) * plane, name="p")  # + ghosts
    x_buf = ctx.ocl.create_buffer(n * 8, name="x")
    r_buf = ctx.ocl.create_buffer(n * 8, name="r")
    q_buf = ctx.ocl.create_buffer(n * 8, name="q")
    dot_buf = ctx.ocl.create_buffer(8, name="dot")

    functional = ctx.ocl.functional
    if functional:
        b_local = cfg.rhs()[lo:hi].reshape(-1)
        r_buf.view("f8")[:] = b_local            # r0 = b  (x0 = 0)
        p_buf.view("f8")[p_off:p_off + n] = b_local  # p0 = r0
    matvec = _stencil_kernel(lz, ny, nx)
    axpy_x = _axpy_kernel(n, "x+=a*p")
    axpy_r = _axpy_kernel(n, "r-=a*q")
    xpby = _xpby_kernel(n)
    dot_pq = _dot_kernel(n, "dot_pq")
    dot_rr = _dot_kernel(n, "dot_rr")
    dot_host = np.zeros(1, dtype=np.float64)

    def reduce_scalar(local: float):
        """Nonblocking global sum; returns (request, result array)."""
        out = np.zeros(1)
        req = comm.iallreduce(np.array([local]), out, "sum")
        return req, out

    def read_dot():
        yield from q0.enqueue_read_buffer(dot_buf, True, 0, 8,
                                          dot_host)
        return float(dot_host[0])

    yield from comm.barrier()
    t0 = ctx.env.now

    yield from q0.enqueue_nd_range_kernel(dot_rr, (r_buf, r_buf, dot_buf, 0))
    req, out = reduce_scalar((yield from read_dot()))
    yield from req.wait()
    rtr = float(out[0]) if functional else 1.0
    residuals = [rtr]
    tol2 = cfg.tol * cfg.tol
    iterations = 0
    e_p_prev: tuple = ()

    for it in range(cfg.max_iters):
        if functional and rtr <= tol2:
            break
        iterations += 1
        # --- halo exchange of p (clMPI commands, event-chained) ----------
        exchanges = []
        if hi_nbr is not None:
            exchanges.append((yield from clmpi.enqueue_send_buffer(
                qs, p_buf, False, p_off * 8 + (lz - 1) * plane, plane,
                hi_nbr, TAG_UP, comm, wait_for=e_p_prev)))
            exchanges.append((yield from clmpi.enqueue_recv_buffer(
                qr, p_buf, False, (lz + 1) * plane, plane, hi_nbr,
                TAG_DOWN, comm, wait_for=e_p_prev)))
        if lo_nbr is not None:
            exchanges.append((yield from clmpi.enqueue_send_buffer(
                qs, p_buf, False, p_off * 8, plane, lo_nbr, TAG_DOWN,
                comm, wait_for=e_p_prev)))
            exchanges.append((yield from clmpi.enqueue_recv_buffer(
                qr, p_buf, False, 0, plane, lo_nbr, TAG_UP, comm,
                wait_for=e_p_prev)))
        # --- q = A p (waits on fresh ghosts purely via events) -------------
        yield from q0.enqueue_nd_range_kernel(
            matvec, (p_buf, q_buf), wait_for=tuple(exchanges))
        # --- alpha = rTr / pTq ----------------------------------------------
        yield from q0.enqueue_nd_range_kernel(
            dot_pq, (p_buf, q_buf, dot_buf, p_off))
        req, out = reduce_scalar((yield from read_dot()))
        # Enqueue the x update BEFORE the reduction completes: the kernel
        # is gated on the MPI request's event (§IV.C) and reads alpha
        # from a cell filled the instant the reduction finishes — the
        # host thread never serializes the two.
        alpha_cell = [0.0]
        rtr_now = rtr

        def _set_alpha(_ev, _out=out, _cell=alpha_cell, _rtr=rtr_now):
            ptq_ = float(_out[0])
            _cell[0] = _rtr / ptq_ if ptq_ != 0 else 0.0

        req.completion.callbacks.append(_set_alpha)
        e_red = clmpi.event_from_mpi_request(ctx.ocl, req, "pTq-allreduce")
        yield from q0.enqueue_nd_range_kernel(
            axpy_x, (x_buf, p_buf, alpha_cell, p_off), label="x-update",
            wait_for=(e_red,))
        yield from req.wait()
        alpha = alpha_cell[0] if functional else 0.0
        yield from q0.enqueue_nd_range_kernel(
            axpy_r, (r_buf, q_buf, -alpha, 0), label="r-update")
        # --- rTr (new) ---------------------------------------------------------
        yield from q0.enqueue_nd_range_kernel(
            dot_rr, (r_buf, r_buf, dot_buf, 0))
        req, out = reduce_scalar((yield from read_dot()))
        yield from req.wait()
        rtr_new = float(out[0]) if functional else 0.0
        beta = rtr_new / rtr if rtr != 0 else 0.0
        rtr = rtr_new
        residuals.append(rtr)
        # --- p = r + beta p ------------------------------------------------------
        e_p = yield from q0.enqueue_nd_range_kernel(
            xpby, (p_buf, r_buf, beta, p_off), label="p-update")
        e_p_prev = (e_p,)
        yield from q0.finish()
        if not functional and it + 1 >= min(cfg.max_iters, 8):
            break  # timing-only runs need no convergence loop

    yield from qs.finish()
    yield from qr.finish()
    yield from comm.barrier()
    return {
        "rank": ctx.rank,
        "iterations": iterations,
        "residuals": residuals,
        "time": ctx.env.now - t0,
        "x_local": (x_buf.view("f8").copy().reshape(lz, ny, nx)
                    if collect and functional else None),
    }


def run_cg(system: SystemPreset, nodes: int,
           config: Optional[CgConfig] = None, functional: bool = True,
           collect: bool = False) -> CgResult:
    """Run the distributed CG solver once."""
    config = config or CgConfig()
    app = ClusterApp(system, nodes, functional=functional)
    results = app.run(cg_main, config, collect)
    r0 = results[0]
    x = None
    if collect and functional:
        x = np.concatenate([r["x_local"] for r in results], axis=0)
    return CgResult(
        config=config,
        nodes=nodes,
        iterations=r0["iterations"],
        residuals=r0["residuals"],
        converged=(r0["residuals"][-1] <= config.tol ** 2),
        time=max(r["time"] for r in results),
        x=x,
    )


def reference_solution(cfg: CgConfig) -> np.ndarray:
    """SciPy sparse CG solution of the same system (validation)."""
    import scipy.sparse as sp
    import scipy.sparse.linalg as spla

    nz, ny, nx = cfg.grid

    def lap1d(m):
        return sp.diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(m, m))

    eye = sp.identity
    A = (sp.kron(sp.kron(lap1d(nz), eye(ny)), eye(nx))
         + sp.kron(sp.kron(eye(nz), lap1d(ny)), eye(nx))
         + sp.kron(sp.kron(eye(nz), eye(ny)), lap1d(nx))).tocsr()
    b = cfg.rhs().reshape(-1)
    x, info = spla.cg(A, b, rtol=1e-12, maxiter=10_000)
    assert info == 0, "SciPy CG failed to converge"
    return x.reshape(cfg.grid)
