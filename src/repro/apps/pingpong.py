"""Point-to-point sustained-bandwidth microbenchmark (§V.B / Fig 8).

Measures device-to-device transfers between two nodes through the clMPI
extension, per transfer engine and message size — regenerating the pinned
/ mapped / pipelined(N) comparison of Fig 8(a)/(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro import clmpi
from repro.errors import ConfigurationError
from repro.launcher import ClusterApp, RankContext
from repro.systems.presets import SystemPreset

__all__ = ["BandwidthResult", "measure_bandwidth", "bandwidth_sweep"]

#: message sizes of the Fig 8 sweep (64 KiB .. 64 MiB)
DEFAULT_SIZES = [1 << s for s in range(16, 27)]


@dataclass(frozen=True)
class BandwidthResult:
    """Sustained bandwidth of one (engine, size) point."""

    system: str
    mode: str            # 'pinned' | 'mapped' | 'pipelined' | 'auto'
    block: Optional[int]  # pipeline block size, if forced
    nbytes: int
    repeats: int
    seconds: float

    @property
    def bandwidth(self) -> float:
        """Sustained unidirectional bandwidth in bytes/s."""
        return self.nbytes * self.repeats / self.seconds


def _pingpong_main(ctx: RankContext, nbytes: int,
                   repeats: int) -> Generator[Any, Any, float]:
    """Rank coroutine: rank 0 streams ``repeats`` buffers to rank 1."""
    q = ctx.queue(name=f"r{ctx.rank}.q")
    buf = ctx.ocl.create_buffer(nbytes, name=f"bw.r{ctx.rank}")
    yield from ctx.comm.barrier()
    t0 = ctx.env.now
    for i in range(repeats):
        if ctx.rank == 0:
            yield from clmpi.enqueue_send_buffer(
                q, buf, False, 0, nbytes, dest=1, tag=i, comm=ctx.comm)
        elif ctx.rank == 1:
            yield from clmpi.enqueue_recv_buffer(
                q, buf, False, 0, nbytes, source=0, tag=i, comm=ctx.comm)
    yield from q.finish()
    yield from ctx.comm.barrier()
    return ctx.env.now - t0


def measure_bandwidth(system: SystemPreset, nbytes: int,
                      mode: Optional[str] = None,
                      block: Optional[int] = None,
                      repeats: int = 4,
                      functional: bool = False) -> BandwidthResult:
    """One Fig 8 data point.

    ``mode=None`` lets the runtime's automatic selector choose (§V.B);
    otherwise the engine is forced on both endpoints, as the paper does
    for its per-implementation curves.
    """
    if nbytes <= 0 or repeats <= 0:
        raise ConfigurationError("nbytes and repeats must be positive")
    app = ClusterApp(system, 2, functional=functional,
                     force_mode=mode, force_block=block)
    results = app.run(_pingpong_main, nbytes, repeats)
    return BandwidthResult(system=system.name, mode=mode or "auto",
                           block=block, nbytes=nbytes, repeats=repeats,
                           seconds=max(results))


def bandwidth_sweep(system: SystemPreset,
                    sizes: Optional[list[int]] = None,
                    pipeline_blocks: Optional[list[int]] = None,
                    repeats: int = 4) -> list[BandwidthResult]:
    """The full Fig 8 sweep for one system.

    Curves: pinned, mapped, pipelined(B) for each block size, plus the
    automatic selector.
    """
    sizes = sizes or DEFAULT_SIZES
    pipeline_blocks = pipeline_blocks or [1 << 20, 1 << 22, 1 << 24]
    out: list[BandwidthResult] = []
    for nbytes in sizes:
        out.append(measure_bandwidth(system, nbytes, "pinned",
                                     repeats=repeats))
        out.append(measure_bandwidth(system, nbytes, "mapped",
                                     repeats=repeats))
        for blk in pipeline_blocks:
            if blk <= nbytes:
                out.append(measure_bandwidth(system, nbytes, "pipelined",
                                             block=blk, repeats=repeats))
        out.append(measure_bandwidth(system, nbytes, None, repeats=repeats))
    return out
