"""Point-to-point sustained-bandwidth microbenchmark (§V.B / Fig 8).

Measures device-to-device transfers between two nodes through the clMPI
extension, per transfer engine and message size — regenerating the pinned
/ mapped / pipelined(N) comparison of Fig 8(a)/(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro import clmpi
from repro.errors import ConfigurationError
from repro.launcher import ClusterApp, RankContext
from repro.systems.presets import SystemPreset

__all__ = ["BandwidthResult", "measure_bandwidth", "bandwidth_sweep",
           "bandwidth_point", "bandwidth_specs"]

#: message sizes of the Fig 8 sweep (64 KiB .. 64 MiB)
DEFAULT_SIZES = [1 << s for s in range(16, 27)]


@dataclass(frozen=True)
class BandwidthResult:
    """Sustained bandwidth of one (engine, size) point."""

    system: str
    mode: str            # 'pinned' | 'mapped' | 'pipelined' | 'auto'
    block: Optional[int]  # pipeline block size, if forced
    nbytes: int
    repeats: int
    seconds: float
    #: injected-fault tally ({"total": N, "by_kind": {...}}), if a
    #: fault plan was active for this point
    fault_summary: Optional[dict] = None
    #: :class:`~repro.obs.RunReport` dict (``obs=True`` runs only)
    report: Optional[dict] = None

    @property
    def bandwidth(self) -> float:
        """Sustained unidirectional bandwidth in bytes/s."""
        return self.nbytes * self.repeats / self.seconds


def _pingpong_main(ctx: RankContext, nbytes: int,
                   repeats: int) -> Generator[Any, Any, float]:
    """Rank coroutine: rank 0 streams ``repeats`` buffers to rank 1."""
    q = ctx.queue(name=f"r{ctx.rank}.q")
    buf = ctx.ocl.create_buffer(nbytes, name=f"bw.r{ctx.rank}")
    yield from ctx.comm.barrier()
    t0 = ctx.env.now
    for i in range(repeats):
        if ctx.rank == 0:
            yield from clmpi.enqueue_send_buffer(
                q, buf, False, 0, nbytes, dest=1, tag=i, comm=ctx.comm)
        elif ctx.rank == 1:
            yield from clmpi.enqueue_recv_buffer(
                q, buf, False, 0, nbytes, source=0, tag=i, comm=ctx.comm)
    yield from q.finish()
    yield from ctx.comm.barrier()
    return ctx.env.now - t0


def measure_bandwidth(system: SystemPreset, nbytes: int,
                      mode: Optional[str] = None,
                      block: Optional[int] = None,
                      repeats: int = 4,
                      functional: bool = False,
                      faults=None, obs: bool = False) -> BandwidthResult:
    """One Fig 8 data point.

    ``mode=None`` lets the runtime's automatic selector choose (§V.B);
    otherwise the engine is forced on both endpoints, as the paper does
    for its per-implementation curves.  ``faults`` (a
    :class:`~repro.faults.FaultPlan` or plan dict) measures the point
    under fault injection — the paper's lossy-interconnect scenario.
    ``obs=True`` runs with tracer + metrics attached and bundles a
    :class:`~repro.obs.RunReport` dict into the result.
    """
    if nbytes <= 0 or repeats <= 0:
        raise ConfigurationError("nbytes and repeats must be positive")
    app = ClusterApp(system, 2, functional=functional,
                     force_mode=mode, force_block=block, faults=faults,
                     trace=obs, metrics=obs)
    results = app.run(_pingpong_main, nbytes, repeats)
    report = None
    if obs:
        from repro.obs import build_report

        spec = {"system": system.name, "nbytes": nbytes,
                "mode": mode or "auto", "block": block, "repeats": repeats}
        report = build_report(
            "bandwidth", spec, app.env,
            faults=(app.faults.summary()["by_kind"]
                    if app.faults is not None else None)).to_dict()
    return BandwidthResult(system=system.name, mode=mode or "auto",
                           block=block, nbytes=nbytes, repeats=repeats,
                           seconds=max(results),
                           fault_summary=(app.faults.summary()
                                          if app.faults else None),
                           report=report)


def bandwidth_point(spec: dict) -> dict:
    """Sweep worker: one Fig 8 data point from a JSON-able spec dict.

    Module-level and dict-in/dict-out so it can cross a process-pool
    boundary (the system presets themselves hold lambdas and cannot be
    pickled — workers rebuild them by name) and a cache round-trip
    without changing shape.  See :mod:`repro.harness.parallel`.
    """
    from repro.systems import get_system

    r = measure_bandwidth(get_system(spec["system"]), spec["nbytes"],
                          spec["mode"], block=spec.get("block"),
                          repeats=spec.get("repeats", 4),
                          functional=spec.get("functional", False),
                          faults=spec.get("faults"),
                          obs=spec.get("obs", False))
    row = {"system": r.system, "mode": r.mode, "block": r.block,
           "nbytes": r.nbytes, "repeats": r.repeats, "seconds": r.seconds,
           "faults": r.fault_summary}
    if r.report is not None:
        row["report"] = r.report
    return row


def bandwidth_specs(system: str,
                    sizes: Optional[list[int]] = None,
                    pipeline_blocks: Optional[list[int]] = None,
                    repeats: int = 4,
                    faults: Optional[dict] = None,
                    obs: bool = False) -> list[dict]:
    """The Fig 8 grid as spec dicts, in canonical (reporting) order.

    ``faults`` (a JSON-able fault-plan dict) rides inside every spec, so
    the result cache addresses faulty and fault-free runs of the same
    point as distinct entries.  ``obs=True`` likewise rides inside every
    spec (distinct cache entries: obs runs carry a RunReport).
    """
    sizes = sizes or DEFAULT_SIZES
    pipeline_blocks = pipeline_blocks or [1 << 20, 1 << 22, 1 << 24]
    specs: list[dict] = []
    for nbytes in sizes:
        specs.append({"system": system, "nbytes": nbytes, "mode": "pinned",
                      "block": None, "repeats": repeats})
        specs.append({"system": system, "nbytes": nbytes, "mode": "mapped",
                      "block": None, "repeats": repeats})
        for blk in pipeline_blocks:
            if blk <= nbytes:
                specs.append({"system": system, "nbytes": nbytes,
                              "mode": "pipelined", "block": blk,
                              "repeats": repeats})
        specs.append({"system": system, "nbytes": nbytes, "mode": None,
                      "block": None, "repeats": repeats})
    if faults is not None:
        for spec in specs:
            spec["faults"] = faults
    if obs:
        for spec in specs:
            spec["obs"] = True
    return specs


def bandwidth_sweep(system: SystemPreset,
                    sizes: Optional[list[int]] = None,
                    pipeline_blocks: Optional[list[int]] = None,
                    repeats: int = 4,
                    jobs: Optional[int] = 1,
                    cache=None,
                    faults: Optional[dict] = None) -> list[BandwidthResult]:
    """The full Fig 8 sweep for one system.

    Curves: pinned, mapped, pipelined(B) for each block size, plus the
    automatic selector.  ``jobs``/``cache`` fan the grid out over a
    process pool and/or the result cache (see
    :mod:`repro.harness.parallel`); results come back in grid order
    either way.  Points that failed (crashed workers) are dropped from
    the returned list — inspect the raw sweep for their error records.
    """
    from repro.harness.parallel import is_error_record, sweep

    specs = bandwidth_specs(system.name, sizes=sizes,
                            pipeline_blocks=pipeline_blocks,
                            repeats=repeats, faults=faults)
    rows = sweep(bandwidth_point, specs, jobs=jobs, cache=cache,
                 kind="bandwidth")
    return [BandwidthResult(system=d["system"], mode=d["mode"],
                            block=d["block"], nbytes=d["nbytes"],
                            repeats=d["repeats"], seconds=d["seconds"],
                            fault_summary=d.get("faults"))
            for d in rows if not is_error_record(d)]
