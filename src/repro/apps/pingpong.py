"""Point-to-point sustained-bandwidth microbenchmark (§V.B / Fig 8).

Measures device-to-device transfers between two nodes through the clMPI
extension, per transfer engine and message size — regenerating the pinned
/ mapped / pipelined(N) comparison of Fig 8(a)/(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro import clmpi
from repro.errors import ConfigurationError, MpiError, MpiRankFailed
from repro.launcher import ClusterApp, RankContext
from repro.systems.presets import SystemPreset

__all__ = ["BandwidthResult", "measure_bandwidth", "bandwidth_sweep",
           "bandwidth_point", "bandwidth_specs"]

#: message sizes of the Fig 8 sweep (64 KiB .. 64 MiB)
DEFAULT_SIZES = [1 << s for s in range(16, 27)]


@dataclass(frozen=True)
class BandwidthResult:
    """Sustained bandwidth of one (engine, size) point."""

    system: str
    mode: str            # 'pinned' | 'mapped' | 'pipelined' | 'auto'
    block: Optional[int]  # pipeline block size, if forced
    nbytes: int
    repeats: int
    seconds: float
    #: injected-fault tally ({"total": N, "by_kind": {...}}), if a
    #: fault plan was active for this point
    fault_summary: Optional[dict] = None
    #: :class:`~repro.obs.RunReport` dict (``obs=True`` and fault-
    #: tolerant runs)
    report: Optional[dict] = None
    #: ULFM recovery outcome ({"survivors": [...], "failed_ranks": [...],
    #: "world": N}) when the point ran fault-tolerantly and recovered
    #: from a rank failure; None for ordinary points
    recovery: Optional[dict] = None
    #: simulated rank count (2 = the classic two-node pingpong; larger
    #: even counts run P/2 concurrent pairs — the mesoscale sweeps)
    ranks: int = 2

    @property
    def bandwidth(self) -> float:
        """Sustained unidirectional bandwidth in bytes/s."""
        return self.nbytes * self.repeats / self.seconds


def _pingpong_main(ctx: RankContext, nbytes: int,
                   repeats: int) -> Generator[Any, Any, float]:
    """Rank coroutine: every even rank streams ``repeats`` buffers to its
    odd neighbour (rank+1) — at 2 ranks this is the classic rank 0 → 1
    pingpong; at P ranks it is P/2 independent pairs saturating the
    fabric at once (the mesoscale sweep shape)."""
    q = ctx.queue(name=f"r{ctx.rank}.q")
    buf = ctx.ocl.create_buffer(nbytes, name=f"bw.r{ctx.rank}")
    yield from ctx.comm.barrier()
    t0 = ctx.env.now
    for i in range(repeats):
        if ctx.rank % 2 == 0 and ctx.rank + 1 < ctx.size:
            yield from clmpi.enqueue_send_buffer(
                q, buf, False, 0, nbytes, dest=ctx.rank + 1, tag=i,
                comm=ctx.comm)
        elif ctx.rank % 2 == 1:
            yield from clmpi.enqueue_recv_buffer(
                q, buf, False, 0, nbytes, source=ctx.rank - 1, tag=i,
                comm=ctx.comm)
    yield from q.finish()
    yield from ctx.comm.barrier()
    return ctx.env.now - t0


def _pingpong_ft_main(ctx: RankContext, nbytes: int,
                      repeats: int) -> Generator[Any, Any, dict]:
    """Crash-surviving rank coroutine (ULFM recovery, see repro.mpi.ft).

    Same traffic as :func:`_pingpong_main`, but a fail-stopped peer does
    not kill the run: the orphaned transfer surfaces as a negative CL
    event status (or an ``MpiError`` out of a collective), the survivor
    revokes the communicator, and every rank recovers through
    ``shrink()`` + ``agree()``.  Returns a per-rank outcome dict instead
    of a float — the harness folds it into the point's recovery record.
    """
    comm = ctx.comm
    q = ctx.queue(name=f"r{ctx.rank}.q")
    buf = ctx.ocl.create_buffer(nbytes, name=f"bw.r{ctx.rank}")
    t0 = ctx.env.now
    try:
        yield from comm.barrier()
        events = []
        for i in range(repeats):
            if ctx.rank % 2 == 0 and ctx.rank + 1 < ctx.size:
                ev = yield from clmpi.enqueue_send_buffer(
                    q, buf, False, 0, nbytes, dest=ctx.rank + 1, tag=i,
                    comm=comm)
                events.append(ev)
            elif ctx.rank % 2 == 1:
                ev = yield from clmpi.enqueue_recv_buffer(
                    q, buf, False, 0, nbytes, source=ctx.rank - 1, tag=i,
                    comm=comm)
                events.append(ev)
        yield from q.finish()
        orphaned = next(
            (ev for ev in events if ev.execution_status < 0), None)
        if orphaned is not None:
            comm.revoke(reason=str(orphaned.error), injected=True)
        else:
            yield from comm.barrier()
    except MpiError as exc:
        comm.revoke(reason=str(exc),
                    injected=getattr(exc, "injected", False))
    if not comm.revoked:
        return {"survivor": True, "rank": ctx.rank, "world": comm.size,
                "failed_ranks": [], "seconds": ctx.env.now - t0}
    try:
        shrunk = yield from comm.shrink()
    except MpiRankFailed:
        # This rank's own node is in the agreed fault set: it cannot
        # rejoin (a real crashed process would simply be gone).
        return {"survivor": False, "rank": ctx.rank, "world": 0,
                "failed_ranks": [], "seconds": ctx.env.now - t0}
    failed = yield from comm.agree()
    yield from shrunk.barrier()
    return {"survivor": True, "rank": ctx.rank, "world": shrunk.size,
            "failed_ranks": list(failed), "seconds": ctx.env.now - t0}


def _vectorized_seconds(system: SystemPreset, nbytes: int,
                        mode: Optional[str], block: Optional[int],
                        repeats: int, ranks: int) -> float:
    """Mesoscale replay of :func:`_pingpong_main` (engine="vectorized").

    All P/2 pairs advance as float64 array lanes through the exact
    timing chain the rank coroutines execute: enqueue overheads, queue
    dispatch, the chosen clMPI transfer engine, ``finish`` and the
    closing dissemination barrier.  Byte-identical to the coroutine
    engine by construction (see :mod:`repro.sim.vectorized`).
    """
    import numpy as np

    from repro.clmpi.selector import TransferSelector
    from repro.sim import Environment, EngineError

    if ranks < 2 or ranks % 2:
        raise EngineError(
            "the vectorized pingpong pairs rank 2i with 2i+1 and needs an "
            "even rank count >= 2 (use engine='coroutine' for odd sizes)")
    cmode, cblock, base = TransferSelector(
        system.policy, force_mode=mode, force_block=block).choose(nbytes)
    env = Environment(engine="vectorized")
    v = env.vector.bind(system, ranks)
    t = v.t
    senders = np.arange(0, ranks, 2)
    receivers = senders + 1
    entry = v.barrier(np.zeros(ranks, dtype=np.float64))
    t0 = entry
    # per-lane host clocks and in-order queue positions after the barrier
    hs = entry[senders].copy()
    hr = entry[receivers].copy()
    done_s = hs.copy()
    done_r = hr.copy()
    for _ in range(repeats):
        hs = hs + t.co          # enqueue_send_buffer api_call
        hr = hr + t.co          # enqueue_recv_buffer api_call
        start_s = np.maximum(done_s, hs)
        start_r = np.maximum(done_r, hr)
        res = v.clmpi_pair(senders, receivers, start_s, start_r, nbytes,
                           cmode, cblock, base)
        done_s = res["send_done"]
        done_r = res["recv_done"]
    # q.finish(): one api_call; blocked callers wake at the last
    # command's completion plus a sync wake-up
    exit_s = np.where(done_s > hs, done_s + t.so, hs + t.co)
    exit_r = np.where(done_r > hr, done_r + t.so, hr + t.co)
    entry2 = np.empty(ranks, dtype=np.float64)
    entry2[senders] = exit_s
    entry2[receivers] = exit_r
    final = v.barrier(entry2)
    v.commit(final)
    return float(np.max(final - t0))


def _wants_ft(faults) -> bool:
    """Auto-detect fault-tolerant routing: a plan with a fail-stop crash
    needs ULFM recovery to produce a result at all; everything else is
    handled by retransmit/degrade alone."""
    if faults is None:
        return False
    plan = getattr(faults, "plan", faults)  # unwrap a FaultInjector
    events = getattr(plan, "events", None)
    if events is None and isinstance(plan, dict):
        events = plan.get("events", ())
    return any(e.get("kind") == "node_crash" for e in events or ())


def measure_bandwidth(system: SystemPreset, nbytes: int,
                      mode: Optional[str] = None,
                      block: Optional[int] = None,
                      repeats: int = 4,
                      functional: bool = False,
                      faults=None, obs: bool = False,
                      ft: Optional[bool] = None,
                      ranks: int = 2,
                      engine: str = "coroutine",
                      strict_engine: bool = False) -> BandwidthResult:
    """One Fig 8 data point.

    ``mode=None`` lets the runtime's automatic selector choose (§V.B);
    otherwise the engine is forced on both endpoints, as the paper does
    for its per-implementation curves.  ``faults`` (a
    :class:`~repro.faults.FaultPlan` or plan dict) measures the point
    under fault injection — the paper's lossy-interconnect scenario.
    ``obs=True`` runs with tracer + metrics attached and bundles a
    :class:`~repro.obs.RunReport` dict into the result.

    ``ft`` selects the ULFM fault-tolerant rank coroutine (revoke/
    shrink/agree recovery).  The default (None) auto-enables it when
    the plan contains a ``node_crash`` — such a point used to die with
    an error record; now it completes with surviving ranks, a populated
    ``recovery`` field, and a :class:`~repro.obs.RunReport` carrying
    the ``ft.*`` recovery metrics.

    When ``engine='vectorized'`` cannot model a requested feature the
    point falls back to the coroutine engine with a ``RuntimeWarning``
    naming the specific feature(s); ``strict_engine=True`` turns every
    such fallback into an :class:`~repro.sim.EngineError` instead, for
    callers that must *know* which engine produced their numbers.
    """
    if nbytes <= 0 or repeats <= 0:
        raise ConfigurationError("nbytes and repeats must be positive")
    if ranks < 2:
        raise ConfigurationError("pingpong needs at least 2 ranks")
    if ft is None:
        ft = _wants_ft(faults)
    if engine == "vectorized":
        from repro.sim import EngineError

        if functional:
            raise EngineError(
                "engine='vectorized' is timing-only: functional "
                "(payload-moving) runs need engine='coroutine'")
        unsupported = []
        if faults is not None:
            unsupported.append("fault injection ('faults')")
        if obs:
            unsupported.append("observability hooks ('obs': "
                               "tracer + metrics)")
        if ft:
            unsupported.append("ULFM recovery ('ft')")
        if unsupported:
            detail = ", ".join(unsupported)
            if strict_engine:
                raise EngineError(
                    f"engine='vectorized' does not support {detail} "
                    "(strict_engine=True forbids the coroutine "
                    "fallback)")
            import warnings

            warnings.warn(
                f"engine='vectorized' does not support {detail}; "
                "falling back to the coroutine engine for this point",
                RuntimeWarning, stacklevel=2)
        else:
            try:
                seconds = _vectorized_seconds(system, nbytes, mode,
                                              block, repeats, ranks)
            except EngineError as exc:
                # e.g. an odd rank count the pairwise mapped model
                # cannot lay out — the refusal message names it
                if strict_engine:
                    raise
                import warnings

                warnings.warn(
                    f"engine='vectorized' refused this point ({exc}); "
                    "falling back to the coroutine engine",
                    RuntimeWarning, stacklevel=2)
            else:
                return BandwidthResult(system=system.name,
                                       mode=mode or "auto",
                                       block=block, nbytes=nbytes,
                                       repeats=repeats, seconds=seconds,
                                       ranks=ranks)
    elif engine != "coroutine":
        from repro.sim import ENGINES, EngineError

        raise EngineError(
            f"unknown engine {engine!r}; choose from {sorted(ENGINES)}")
    app = ClusterApp(system, ranks, functional=functional,
                     force_mode=mode, force_block=block, faults=faults,
                     trace=obs, metrics=obs or ft)
    recovery = None
    if ft:
        outcomes = app.run(_pingpong_ft_main, nbytes, repeats)
        survivors = [o for o in outcomes if o and o.get("survivor")]
        seconds = max((o["seconds"] for o in survivors),
                      default=app.env.now)
        recovery = {
            "survivors": sorted(o["rank"] for o in survivors),
            "failed_ranks": sorted({r for o in survivors
                                    for r in o["failed_ranks"]}),
            "world": survivors[0]["world"] if survivors else 0,
        }
    else:
        seconds = max(app.run(_pingpong_main, nbytes, repeats))
    report = None
    if obs or ft:
        from repro.obs import build_report

        spec = {"system": system.name, "nbytes": nbytes,
                "mode": mode or "auto", "block": block,
                "repeats": repeats, "ft": bool(ft)}
        report = build_report(
            "bandwidth", spec, app.env,
            faults=(app.faults.summary()["by_kind"]
                    if app.faults is not None else None)).to_dict()
    return BandwidthResult(system=system.name, mode=mode or "auto",
                           block=block, nbytes=nbytes, repeats=repeats,
                           seconds=seconds,
                           fault_summary=(app.faults.summary()
                                          if app.faults else None),
                           report=report, recovery=recovery, ranks=ranks)


def bandwidth_point(spec: dict) -> dict:
    """Sweep worker: one Fig 8 data point from a JSON-able spec dict.

    Module-level and dict-in/dict-out so it can cross a process-pool
    boundary (the system presets themselves hold lambdas and cannot be
    pickled — workers rebuild them by name) and a cache round-trip
    without changing shape.  See :mod:`repro.harness.parallel`.
    """
    from repro.systems import get_system

    ranks = spec.get("ranks", 2)
    system = get_system(spec["system"])
    if ranks > system.cluster.max_nodes:
        # mesoscale points run the testbed past its physical size;
        # max_nodes only gates construction, it never shapes timing
        system = get_system(spec["system"], max_nodes=ranks)
    r = measure_bandwidth(system, spec["nbytes"],
                          spec["mode"], block=spec.get("block"),
                          repeats=spec.get("repeats", 4),
                          functional=spec.get("functional", False),
                          faults=spec.get("faults"),
                          obs=spec.get("obs", False),
                          ft=spec.get("ft"), ranks=ranks,
                          engine=spec.get("engine", "coroutine"),
                          strict_engine=spec.get("strict_engine", False))
    row = {"system": r.system, "mode": r.mode, "block": r.block,
           "nbytes": r.nbytes, "repeats": r.repeats, "seconds": r.seconds,
           "faults": r.fault_summary}
    if r.ranks != 2:
        # rows must be engine-independent (the byte-identity gate diffs
        # them), and 2-rank rows keep their pre-mesoscale shape
        row["ranks"] = r.ranks
    if r.report is not None:
        row["report"] = r.report
    if r.recovery is not None:
        row["recovery"] = r.recovery
    return row


def bandwidth_specs(system: str,
                    sizes: Optional[list[int]] = None,
                    pipeline_blocks: Optional[list[int]] = None,
                    repeats: int = 4,
                    faults: Optional[dict] = None,
                    obs: bool = False,
                    ranks: int = 2,
                    engine: str = "coroutine") -> list[dict]:
    """The Fig 8 grid as spec dicts, in canonical (reporting) order.

    ``faults`` (a JSON-able fault-plan dict) rides inside every spec, so
    the result cache addresses faulty and fault-free runs of the same
    point as distinct entries.  ``obs=True`` likewise rides inside every
    spec (distinct cache entries: obs runs carry a RunReport).
    """
    sizes = sizes or DEFAULT_SIZES
    pipeline_blocks = pipeline_blocks or [1 << 20, 1 << 22, 1 << 24]
    specs: list[dict] = []
    for nbytes in sizes:
        specs.append({"system": system, "nbytes": nbytes, "mode": "pinned",
                      "block": None, "repeats": repeats})
        specs.append({"system": system, "nbytes": nbytes, "mode": "mapped",
                      "block": None, "repeats": repeats})
        for blk in pipeline_blocks:
            if blk <= nbytes:
                specs.append({"system": system, "nbytes": nbytes,
                              "mode": "pipelined", "block": blk,
                              "repeats": repeats})
        specs.append({"system": system, "nbytes": nbytes, "mode": None,
                      "block": None, "repeats": repeats})
    if faults is not None:
        for spec in specs:
            spec["faults"] = faults
    if obs:
        for spec in specs:
            spec["obs"] = True
    # absent keys mean (ranks=2, engine='coroutine'): pre-mesoscale
    # specs hash to the same cache address they always did, while any
    # other engine/rank-count gets its own content address
    if ranks != 2:
        for spec in specs:
            spec["ranks"] = ranks
    if engine != "coroutine":
        for spec in specs:
            spec["engine"] = engine
    return specs


def bandwidth_sweep(system: SystemPreset,
                    sizes: Optional[list[int]] = None,
                    pipeline_blocks: Optional[list[int]] = None,
                    repeats: int = 4,
                    jobs: Optional[int] = 1,
                    cache=None,
                    faults: Optional[dict] = None,
                    ranks: int = 2,
                    engine: str = "coroutine") -> list[BandwidthResult]:
    """The full Fig 8 sweep for one system.

    Curves: pinned, mapped, pipelined(B) for each block size, plus the
    automatic selector.  ``jobs``/``cache`` fan the grid out over a
    process pool and/or the result cache (see
    :mod:`repro.harness.parallel`); results come back in grid order
    either way.  Points that failed (crashed workers) are dropped from
    the returned list — inspect the raw sweep for their error records.
    """
    from repro.harness.parallel import is_error_record, sweep

    specs = bandwidth_specs(system.name, sizes=sizes,
                            pipeline_blocks=pipeline_blocks,
                            repeats=repeats, faults=faults,
                            ranks=ranks, engine=engine)
    rows = sweep(bandwidth_point, specs, jobs=jobs, cache=cache,
                 kind="bandwidth")
    return [BandwidthResult(system=d["system"], mode=d["mode"],
                            block=d["block"], nbytes=d["nbytes"],
                            repeats=d["repeats"], seconds=d["seconds"],
                            fault_summary=d.get("faults"),
                            report=d.get("report"),
                            recovery=d.get("recovery"),
                            ranks=d.get("ranks", 2))
            for d in rows if not is_error_record(d)]
