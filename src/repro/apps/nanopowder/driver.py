"""Nanopowder experiment driver (Fig 10)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.apps.nanopowder.baseline import baseline_main
from repro.apps.nanopowder.clmpi_impl import clmpi_main
from repro.apps.nanopowder.model import NanoConfig
from repro.errors import ConfigurationError
from repro.launcher import ClusterApp
from repro.systems.presets import SystemPreset

__all__ = ["IMPLEMENTATIONS", "NanopowderResult", "run_nanopowder"]

IMPLEMENTATIONS: dict[str, Callable] = {
    "baseline": baseline_main,
    "clmpi": clmpi_main,
}


@dataclass
class NanopowderResult:
    """Outcome of one nanopowder run."""

    system: str
    implementation: str
    nodes: int
    config: NanoConfig
    #: total virtual time of the timed region (s)
    time: float
    #: per-step virtual durations at rank 0
    step_times: list[float]
    #: total particulate mass after each step (functional runs)
    masses: list[float]
    n_final: Optional[np.ndarray] = None

    @property
    def steps_per_second(self) -> float:
        """Sustained simulation throughput (the Fig 10 'performance')."""
        return self.config.steps / self.time

    def speedup_vs(self, other: "NanopowderResult") -> float:
        """This run's throughput relative to ``other``'s."""
        return self.steps_per_second / other.steps_per_second


def run_nanopowder(system: SystemPreset, nodes: int, implementation: str,
                   config: Optional[NanoConfig] = None,
                   functional: bool = True, collect: bool = False,
                   trace: bool = False) -> NanopowderResult:
    """Run the nanopowder simulation once and return its result."""
    try:
        main = IMPLEMENTATIONS[implementation]
    except KeyError:
        raise ConfigurationError(
            f"unknown implementation {implementation!r}; choose from "
            f"{sorted(IMPLEMENTATIONS)}") from None
    config = config or NanoConfig.paper_scale()
    app = ClusterApp(system, nodes, functional=functional, trace=trace)
    results = app.run(main, config, collect)
    r0 = results[0]
    res = NanopowderResult(
        system=system.name,
        implementation=implementation,
        nodes=nodes,
        config=config,
        time=max(r["time"] for r in results),
        step_times=r0["step_times"],
        masses=r0["masses"],
        n_final=r0["n_final"],
    )
    res.tracer = app.tracer  # type: ignore[attr-defined]
    return res
