"""The nanopowder growth simulation (§V.D / Fig 10).

A sectional aerosol-dynamics model of binary-alloy nanopowder growth in a
cooling thermal plasma [15]: nucleation and condensation are computed by
one host thread (rank 0), while the dominant **coagulation** routine
(~90% of serial runtime) is parallelized over the reactor's spatial cells
with MPI and accelerated with OpenCL.  The temperature-dependent
coagulation coefficient tables (~42 MB at paper scale) are recomputed on
the host and distributed to every node at every simulation step — exactly
the communication pattern whose cost Fig 10 exposes.

Two implementations, as evaluated:

* :func:`baseline_main` — plain ``MPI_Isend``/``MPI_Recv`` of the
  coefficients into host memory followed by a blocking
  ``clEnqueueWriteBuffer`` (pageable) on each node.
* :func:`clmpi_main` — ``MPI_Isend`` with ``MPI_CL_MEM`` at rank 0 and
  ``clEnqueueRecvBuffer`` at the receivers: the runtime pipelines the
  inter-node transfer with the host→device copy.
"""

from repro.apps.nanopowder.baseline import baseline_main
from repro.apps.nanopowder.clmpi_impl import clmpi_main
from repro.apps.nanopowder.driver import (
    IMPLEMENTATIONS,
    NanopowderResult,
    run_nanopowder,
)
from repro.apps.nanopowder.model import NanoConfig
from repro.apps.nanopowder.physics import (
    coagulation_coefficients,
    coagulation_substeps,
    host_phase,
    nucleation_rate,
    pack_coefficients,
    section_compositions,
    section_volumes,
    species_mass,
    temperature,
    total_mass,
    unpack_coefficients,
)

__all__ = [
    "NanoConfig",
    "section_volumes",
    "section_compositions",
    "species_mass",
    "temperature",
    "coagulation_coefficients",
    "nucleation_rate",
    "host_phase",
    "coagulation_substeps",
    "total_mass",
    "pack_coefficients",
    "unpack_coefficients",
    "baseline_main",
    "clmpi_main",
    "NanopowderResult",
    "run_nanopowder",
    "IMPLEMENTATIONS",
]
