"""The *clMPI* nanopowder implementation (§V.D).

Rank 0 sends the coefficients with ``MPI_Isend(..., MPI_CL_MEM, ...)``
(the host-side wrapper :func:`repro.clmpi.isend`); workers receive them
straight into device memory with ``clEnqueueRecvBuffer``.  For the 42 MB
payload the runtime selects the pipelined engine, overlapping the
inter-node transfer with the host→device copy — the paper's explanation
for Fig 10's gap.  "By just replacing the combination of MPI_Recv and
clEnqueueWriteBuffer with clEnqueueRecvBuffer" (§V.D) — the rest of the
step is identical to the baseline.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro import clmpi
from repro.apps.nanopowder.common import (
    TAG_COEFF,
    TAG_STATE,
    initial_state,
    mass_of,
    rank0_host_phase,
    setup_rank,
)
from repro.apps.nanopowder.model import NanoConfig
from repro.launcher import RankContext
from repro.mpi.datatypes import CL_MEM
from repro.mpi.request import waitall

__all__ = ["clmpi_main"]


def clmpi_main(ctx: RankContext, cfg: NanoConfig,
               collect: bool = False) -> Generator[Any, Any, dict]:
    """Rank coroutine of the clMPI implementation."""
    st = yield from setup_rank(ctx, cfg)
    q = ctx.queue(name=f"r{ctx.rank}.q")
    comm = ctx.comm
    functional = ctx.ocl.functional
    n_master = initial_state(cfg) if ctx.rank == 0 else None
    coeff_host = (np.zeros((6, cfg.sections, cfg.sections), dtype=np.float32)
                  if ctx.rank == 0 and functional else None)
    gather_buf = (np.zeros((ctx.size, st.cells * cfg.sections),
                           dtype=np.float32) if ctx.rank == 0 else None)

    t0 = ctx.env.now
    step_times, masses = [], []
    for step in range(cfg.steps):
        t_step = ctx.env.now
        if ctx.rank == 0:
            block = yield from rank0_host_phase(ctx, st, n_master,
                                                step * cfg.dt)
            if functional:
                coeff_host[:] = block
            # MPI_Isend with MPI_CL_MEM: receivers are communicator
            # devices; the runtime pipelines wire + h2d (§IV.C, §V.D).
            reqs = []
            for r in range(1, ctx.size):
                reqs.append((yield from clmpi.isend(
                    ctx.runtime, coeff_host if functional else None,
                    r, TAG_COEFF, comm, CL_MEM,
                    nbytes=cfg.coeff_bytes)))
                lo, hi = cfg.cells_of(r, ctx.size)
                reqs.append((yield from comm.isend_bytes(
                    np.ascontiguousarray(n_master[lo:hi]).reshape(-1)
                    .view(np.uint8) if functional else None,
                    (hi - lo) * cfg.sections * 4, r, TAG_STATE)))
            if functional:
                st.n_host[:] = n_master[st.cell_lo:st.cell_hi]
            # rank 0's own device still loads from its host memory
            e_coeff = yield from q.enqueue_write_buffer(
                st.coeff_buf, False, 0, cfg.coeff_bytes,
                coeff_host if functional else None, pinned=False)
            e_state = yield from q.enqueue_write_buffer(
                st.n_buf, False, 0, st.slice_bytes, st.n_host, pinned=False)
        else:
            # clEnqueueRecvBuffer straight into device memory
            e_coeff = yield from clmpi.enqueue_recv_buffer(
                q, st.coeff_buf, False, 0, cfg.coeff_bytes,
                source=0, tag=TAG_COEFF, comm=comm)
            sreq = yield from comm.irecv_bytes(
                st.n_host.reshape(-1).view(np.uint8) if functional
                else None, st.slice_bytes, 0, TAG_STATE)
            yield from sreq.wait()
            e_state = yield from q.enqueue_write_buffer(
                st.n_buf, False, 0, st.slice_bytes, st.n_host, pinned=True)
        # kernel chained purely by events; host thread stays free
        yield from q.enqueue_nd_range_kernel(
            st.kernel, (st.coeff_buf, st.n_buf, st.cells),
            wait_for=(e_coeff, e_state))
        yield from q.enqueue_read_buffer(st.n_buf, True, 0, st.slice_bytes,
                                         st.n_host)
        yield from comm.gather(st.n_host.reshape(-1), gather_buf, root=0)
        if ctx.rank == 0:
            if functional:
                n_master[:] = gather_buf.reshape(n_master.shape)
                masses.append(mass_of(cfg, n_master))
            yield from waitall(ctx.env, reqs)
            step_times.append(ctx.env.now - t_step)
    yield from ctx.comm.barrier()
    return {
        "rank": ctx.rank,
        "time": ctx.env.now - t0,
        "step_times": step_times,
        "masses": masses,
        "n_final": (n_master.copy()
                    if collect and ctx.rank == 0 and functional else None),
    }

