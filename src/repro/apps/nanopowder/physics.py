"""Two-species sectional aerosol physics for the nanopowder simulation.

The paper's application simulates **binary alloy** nanopowder growth
[15].  Sections form a 2-D grid: ``vol_sections`` geometric particle-
volume bins × ``comp_sections`` composition bins (the fraction of species
A in the particle), flattened to ``M = Kv·Kc`` sections with
``s = k·Kc + m``.

Coagulation of two particles produces volume ``v1+v2`` and composition
``c' = (c1·v1 + c2·v2)/(v1+v2)``; the product is distributed over the
2×2 neighbouring (volume, composition) bins with two-point weights that
are linear in both axes, so **total volume and each species' volume are
conserved exactly** (property-tested): the scatter's separable weights
give ``Σ w_v·v = v1+v2`` and ``Σ w_c·c = c'`` independently.

Pure NumPy, deterministic, shared by the host phase (rank 0's serial
stage), the simulated GPU kernel body, and the tests.
"""

from __future__ import annotations

import numpy as np

from repro.apps.nanopowder.model import NanoConfig

__all__ = ["volume_grid", "composition_grid", "section_volumes",
           "section_compositions", "temperature",
           "coagulation_coefficients", "pack_coefficients",
           "unpack_coefficients", "nucleation_rate", "host_phase",
           "coagulation_substeps", "total_mass", "species_mass"]

#: monomer volume (m^3) — a ~0.3 nm radius atom cluster
V0 = 1.2e-28
#: geometric volume-section spacing
SECTION_RATIO = 1.35


def volume_grid(vol_sections: int) -> np.ndarray:
    """Geometric particle-volume bins ``v_k = V0 · r^k`` (float64)."""
    return V0 * SECTION_RATIO ** np.arange(vol_sections, dtype=np.float64)


def composition_grid(comp_sections: int) -> np.ndarray:
    """Uniform composition bins (fraction of species A) in [0, 1]."""
    if comp_sections == 1:
        return np.array([0.5])
    return np.linspace(0.0, 1.0, comp_sections)


def section_volumes(cfg: NanoConfig) -> np.ndarray:
    """Per flat-section particle volume, shape (M,)."""
    v = volume_grid(cfg.vol_sections)
    return np.repeat(v, cfg.comp_sections)


def section_compositions(cfg: NanoConfig) -> np.ndarray:
    """Per flat-section species-A fraction, shape (M,)."""
    c = composition_grid(cfg.comp_sections)
    return np.tile(c, cfg.vol_sections)


def temperature(cfg: NanoConfig, t: float) -> float:
    """Plasma cooling profile at simulation time ``t``."""
    return cfg.t_room + (cfg.t0_kelvin - cfg.t_room) * np.exp(-t / cfg.cool_tau)


def coagulation_coefficients(cfg: NanoConfig, temp_k: float
                             ) -> dict[str, np.ndarray]:
    """Recompute the coefficient tables for temperature ``temp_k``.

    Six (M, M) float32 planes — 24 bytes per section pair, the paper's
    ~42 MB at paper scale:

    ``beta``  collision kernel; ``alpha`` sticking coefficient;
    ``vidx``/``vfrac`` lower volume-target bin and its number fraction;
    ``cidx``/``cfrac`` lower composition-target bin and its fraction.
    """
    M = cfg.sections
    v = section_volumes(cfg)
    c = section_compositions(cfg)
    vgrid = volume_grid(cfg.vol_sections)
    cgrid = composition_grid(cfg.comp_sections)
    Kv, Kc = cfg.vol_sections, cfg.comp_sections
    r3 = np.cbrt(v)
    # free-molecular kernel (volume-dependent only); prefactor calibrated
    # so monomer pairs at plasma temperatures hit ~1e-15 m^3/s
    size = (r3[:, None] + r3[None, :]) ** 2
    speed = np.sqrt(1.0 / v[:, None] + 1.0 / v[None, :])
    beta = (1.5e-13 * np.sqrt(temp_k) * size * speed).astype(np.float32)
    alpha = np.float32(np.exp(-temp_k / (4.0 * cfg.t0_kelvin))) * \
        np.ones((M, M), dtype=np.float32)

    # volume targets: mass-conserving two-point split on the volume grid
    vsum = v[:, None] + v[None, :]
    k = np.clip(np.searchsorted(vgrid, vsum, side="right") - 1, 0, Kv - 1)
    interior = k < Kv - 1
    vfrac = np.ones_like(vsum)
    vk = vgrid[np.clip(k, 0, Kv - 1)]
    vk1 = vgrid[np.clip(k + 1, 0, Kv - 1)]
    with np.errstate(divide="ignore", invalid="ignore"):
        w_int = (vk1 - vsum) / (vk1 - vk)
    vfrac[interior] = w_int[interior]
    # overflow beyond the last volume bin: mass-equivalent count there
    vfrac[~interior] = vsum[~interior] / vgrid[Kv - 1]

    # composition targets: c' = (c1 v1 + c2 v2) / (v1 + v2)
    cmix = (c[:, None] * v[:, None] + c[None, :] * v[None, :]) / vsum
    if Kc > 1:
        m = np.clip(np.searchsorted(cgrid, cmix, side="right") - 1,
                    0, Kc - 2)
        cfrac = (cgrid[m + 1] - cmix) / (cgrid[m + 1] - cgrid[m])
        cfrac = np.clip(cfrac, 0.0, 1.0)
    else:
        m = np.zeros_like(k)
        cfrac = np.ones_like(cmix)
    return {
        "beta": beta,
        "alpha": alpha,
        "vidx": k.astype(np.float32),
        "vfrac": vfrac.astype(np.float32),
        "cidx": m.astype(np.float32),
        "cfrac": cfrac.astype(np.float32),
    }


_PLANES = ("beta", "alpha", "vidx", "vfrac", "cidx", "cfrac")


def pack_coefficients(coeffs: dict[str, np.ndarray]) -> np.ndarray:
    """Pack the six tables into one contiguous (6, M, M) float32 block —
    the ~42 MB payload distributed to every node each step."""
    return np.stack([coeffs[k] for k in _PLANES]).astype(np.float32)


def unpack_coefficients(block: np.ndarray) -> dict[str, np.ndarray]:
    """Inverse of :func:`pack_coefficients`."""
    return {name: block[i] for i, name in enumerate(_PLANES)}


def nucleation_rate(cfg: NanoConfig, temp_k: float) -> float:
    """Monomer nucleation rate: zero in the hot plasma, rising as the
    vapour supersaturates on cooling."""
    undercooling = max(0.0, 1.0 - temp_k / cfg.t0_kelvin)
    return cfg.nucleation_rate0 * undercooling ** 2


def host_phase(cfg: NanoConfig, n: np.ndarray, t: float
               ) -> tuple[np.ndarray, dict[str, np.ndarray], float]:
    """The serial host work of one step (rank 0 only, §V.D).

    Nucleation (pure-A and pure-B monomers into the smallest volume bin),
    condensation (volume growth, composition-preserving), and coefficient
    recomputation for the new temperature.  ``n`` has shape (cells, M)
    and is updated in place.
    """
    temp_k = temperature(cfg, t)
    Kc = cfg.comp_sections
    # nucleation: species A monomers at c=1, species B at c=0
    J = nucleation_rate(cfg, temp_k) * cfg.dt
    n[:, Kc - 1] += J          # (k=0, m=Kc-1): pure A
    n[:, 0] += 0.6 * J         # (k=0, m=0): pure B
    # condensation: first-order volume growth within a composition bin
    g = 0.05 * max(0.0, 1.0 - temp_k / cfg.t0_kelvin)
    if g > 0.0:
        vgrid = volume_grid(cfg.vol_sections)
        shaped = n.reshape(n.shape[0], cfg.vol_sections, Kc)
        moved = g * shaped[:, :-1, :]
        shaped[:, :-1, :] -= moved
        ratio = (vgrid[:-1] / vgrid[1:]).astype(n.dtype) * SECTION_RATIO
        shaped[:, 1:, :] += moved * ratio[None, :, None]
    coeffs = coagulation_coefficients(cfg, temp_k)
    return n, coeffs, temp_k


def coagulation_substeps(cfg: NanoConfig, n_cells: np.ndarray,
                         coeffs: dict[str, np.ndarray],
                         substeps: int | None = None) -> None:
    """Integrate coagulation for the given cells, in place.

    ``n_cells`` has shape (cells, M).  Explicit Euler with ``substeps``
    sub-iterations; the 2×2 sectional scatter conserves total volume and
    per-species volume exactly (property-tested).
    """
    M = n_cells.shape[1]
    Kv, Kc = cfg.vol_sections, cfg.comp_sections
    substeps = cfg.substeps if substeps is None else substeps
    dt_sub = cfg.dt / substeps
    rate_tab = (coeffs["beta"].astype(np.float64)
                * coeffs["alpha"].astype(np.float64))
    kv = coeffs["vidx"].astype(np.int64).ravel()
    kv1 = np.minimum(kv + 1, Kv - 1)
    wv = coeffs["vfrac"].astype(np.float64).ravel()
    # overflow pairs (kv1 == kv) carry their whole mass-equivalent count
    # in wv; nothing goes to the second volume target
    wv2 = np.where(kv1 > kv, 1.0 - wv, 0.0)
    mc = coeffs["cidx"].astype(np.int64).ravel()
    mc1 = np.minimum(mc + 1, Kc - 1)
    wc = coeffs["cfrac"].astype(np.float64).ravel()
    wc2 = np.where(mc1 > mc, 1.0 - wc, 0.0)
    targets = [(kv * Kc + mc, wv * wc), (kv * Kc + mc1, wv * wc2),
               (kv1 * Kc + mc, wv2 * wc), (kv1 * Kc + mc1, wv2 * wc2)]
    for cidx in range(n_cells.shape[0]):
        n = n_cells[cidx].astype(np.float64)
        for _ in range(substeps):
            R = rate_tab * np.outer(n, n)
            loss = R.sum(axis=1)
            flat = R.ravel()
            gain = np.zeros(M)
            for idx, w in targets:
                gain += np.bincount(idx, weights=flat * w, minlength=M)
            n += dt_sub * (0.5 * gain - loss)
            np.maximum(n, 0.0, out=n)
        n_cells[cidx] = n.astype(n_cells.dtype)


def total_mass(cfg: NanoConfig, n: np.ndarray) -> float:
    """Total particulate volume of a (cells, M) or (M,) state."""
    v = section_volumes(cfg)
    return float((n.astype(np.float64).reshape(-1, cfg.sections)
                  * v).sum())


def species_mass(cfg: NanoConfig, n: np.ndarray,
                 species: str = "A") -> float:
    """Volume of one alloy species ('A' or 'B') in the state."""
    v = section_volumes(cfg)
    c = section_compositions(cfg)
    frac = c if species == "A" else 1.0 - c
    return float((n.astype(np.float64).reshape(-1, cfg.sections)
                  * v * frac).sum())
