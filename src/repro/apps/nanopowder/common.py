"""Shared pieces of the two nanopowder implementations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

from repro.apps.nanopowder.model import NanoConfig
from repro.apps.nanopowder.physics import (
    coagulation_substeps,
    host_phase,
    pack_coefficients,
    total_mass,
    unpack_coefficients,
)
from repro.launcher import RankContext
from repro.ocl.buffer import Buffer
from repro.ocl.kernel import Kernel

__all__ = ["NanoState", "make_coag_kernel", "setup_rank", "initial_state",
           "TAG_COEFF", "TAG_STATE"]

TAG_COEFF = 21
TAG_STATE = 22


def initial_state(cfg: NanoConfig) -> np.ndarray:
    """Seed population: pure-A and pure-B monomer pools in every cell."""
    n = np.zeros((cfg.cells, cfg.sections), dtype=np.float32)
    n[:, 0] = 1e10                       # (k=0, c=0): pure B monomers
    n[:, cfg.comp_sections - 1] = 1e10   # (k=0, c=1): pure A monomers
    return n


def make_coag_kernel(cfg: NanoConfig) -> Kernel:
    """The coagulation kernel: integrates all local cells' sections.

    Launch args: ``(coeff_buf, n_buf, cells)``.
    """
    M = cfg.sections

    def body(coeff_buf, n_buf, cells: int) -> None:
        block = coeff_buf.view("f4", (6, M, M))
        n_view = n_buf.view("f4", (cells, M))
        coagulation_substeps(cfg, n_view, unpack_coefficients(block))

    def flops(coeff_buf, n_buf, cells: int) -> float:
        return cfg.coag_flops(cells)

    def mem_bytes(coeff_buf, n_buf, cells: int) -> float:
        # the coefficient tables stream once per substep
        return float(cfg.coeff_bytes) * cfg.substeps

    return Kernel(name="coagulation", body=body, flops=flops,
                  mem_bytes=mem_bytes)


@dataclass
class NanoState:
    """Per-rank state of one nanopowder run."""

    cfg: NanoConfig
    rank: int
    cell_lo: int
    cell_hi: int
    coeff_buf: Buffer
    n_buf: Buffer
    kernel: Kernel
    #: host staging for this rank's cell slice
    n_host: np.ndarray

    @property
    def cells(self) -> int:
        return self.cell_hi - self.cell_lo

    @property
    def slice_bytes(self) -> int:
        return self.cells * self.cfg.sections * 4


def setup_rank(ctx: RankContext,
               cfg: NanoConfig) -> Generator[Any, Any, NanoState]:
    """Allocate device buffers and host staging; barrier at the end."""
    lo, hi = cfg.cells_of(ctx.rank, ctx.size)
    coeff_buf = ctx.ocl.create_buffer(cfg.coeff_bytes,
                                      name=f"coeff.r{ctx.rank}")
    n_buf = ctx.ocl.create_buffer((hi - lo) * cfg.sections * 4,
                                  name=f"n.r{ctx.rank}")
    st = NanoState(cfg=cfg, rank=ctx.rank, cell_lo=lo, cell_hi=hi,
                   coeff_buf=coeff_buf, n_buf=n_buf,
                   kernel=make_coag_kernel(cfg),
                   n_host=np.zeros((hi - lo, cfg.sections),
                                   dtype=np.float32))
    yield from ctx.comm.barrier()
    return st


def rank0_host_phase(ctx: RankContext, st: NanoState, n_master: np.ndarray,
                     t: float) -> Generator[Any, Any, Optional[np.ndarray]]:
    """Rank 0's serial phase: physics + modelled host compute time.

    Returns the packed coefficient block (None in timing-only mode).
    """
    yield from ctx.node.host.compute(st.cfg.host_flops, "nucl+cond+coeffs")
    if not ctx.ocl.functional:
        return None
    _, coeffs, _temp = host_phase(st.cfg, n_master, t)
    return pack_coefficients(coeffs)


def mass_of(cfg: NanoConfig, n_master: np.ndarray) -> float:
    """Diagnostic total mass of the master state."""
    return total_mass(cfg, n_master)
