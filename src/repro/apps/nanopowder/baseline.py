"""The *baseline* nanopowder implementation (§V.D).

Coefficient distribution "just uses MPI_Isend and MPI_Recv": rank 0
nonblocking-sends the 42 MB coefficient block to every node's *host*
memory; each node then pushes it to its device with a blocking
``clEnqueueWriteBuffer`` from that (pageable) receive buffer.  Inter-node
and host→device transfers are fully serialized — the cost Fig 10 exposes.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.apps.nanopowder.common import (
    TAG_COEFF,
    TAG_STATE,
    initial_state,
    mass_of,
    rank0_host_phase,
    setup_rank,
)
from repro.apps.nanopowder.model import NanoConfig
from repro.launcher import RankContext
from repro.mpi.request import waitall

__all__ = ["baseline_main"]


def baseline_main(ctx: RankContext, cfg: NanoConfig,
                  collect: bool = False) -> Generator[Any, Any, dict]:
    """Rank coroutine of the baseline implementation."""
    st = yield from setup_rank(ctx, cfg)
    q = ctx.queue(name=f"r{ctx.rank}.q")
    comm = ctx.comm
    functional = ctx.ocl.functional
    n_master = initial_state(cfg) if ctx.rank == 0 else None
    # staging buffer only materialized when data actually moves
    coeff_host = (np.zeros((6, cfg.sections, cfg.sections), dtype=np.float32)
                  if functional else None)
    gather_buf = (np.zeros((ctx.size, st.cells * cfg.sections),
                           dtype=np.float32) if ctx.rank == 0 else None)

    t0 = ctx.env.now
    step_times, masses = [], []
    for step in range(cfg.steps):
        t_step = ctx.env.now
        if ctx.rank == 0:
            block = yield from rank0_host_phase(ctx, st, n_master,
                                                step * cfg.dt)
            if functional:
                coeff_host[:] = block
            # distribute coefficients + cell slices to every worker
            reqs = []
            for r in range(1, ctx.size):
                reqs.append((yield from comm.isend_bytes(
                    coeff_host.reshape(-1).view(np.uint8)
                    if functional else None,
                    cfg.coeff_bytes, r, TAG_COEFF)))
                lo, hi = cfg.cells_of(r, ctx.size)
                reqs.append((yield from comm.isend_bytes(
                    np.ascontiguousarray(n_master[lo:hi]).reshape(-1)
                    .view(np.uint8) if functional else None,
                    (hi - lo) * cfg.sections * 4, r, TAG_STATE)))
            if functional:
                st.n_host[:] = n_master[st.cell_lo:st.cell_hi]
        else:
            creq = yield from comm.irecv_bytes(
                coeff_host.reshape(-1).view(np.uint8) if functional
                else None, cfg.coeff_bytes, 0, TAG_COEFF)
            sreq = yield from comm.irecv_bytes(
                st.n_host.reshape(-1).view(np.uint8) if functional
                else None, st.slice_bytes, 0, TAG_STATE)
            yield from waitall(ctx.env, [creq, sreq])
            yield from ctx.node.host.sync_wakeup()
        # blocking writes from (pageable) host receive buffers — the
        # naive joint-programming path of Fig 1
        yield from q.enqueue_write_buffer(st.coeff_buf, True, 0,
                                          cfg.coeff_bytes, coeff_host,
                                          pinned=False)
        yield from q.enqueue_write_buffer(st.n_buf, True, 0,
                                          st.slice_bytes, st.n_host,
                                          pinned=False)
        yield from q.enqueue_nd_range_kernel(
            st.kernel, (st.coeff_buf, st.n_buf, st.cells))
        yield from q.enqueue_read_buffer(st.n_buf, True, 0, st.slice_bytes,
                                         st.n_host)
        # gather the updated slices back to rank 0
        yield from comm.gather(st.n_host.reshape(-1), gather_buf, root=0)
        if ctx.rank == 0:
            if functional:
                n_master[:] = gather_buf.reshape(n_master.shape)
                masses.append(mass_of(cfg, n_master))
            yield from waitall(ctx.env, reqs)
            step_times.append(ctx.env.now - t_step)
    yield from ctx.comm.barrier()
    return {
        "rank": ctx.rank,
        "time": ctx.env.now - t0,
        "step_times": step_times,
        "masses": masses,
        "n_final": (n_master.copy()
                    if collect and ctx.rank == 0 and functional else None),
    }
