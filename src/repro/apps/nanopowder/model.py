"""Configuration of the nanopowder growth simulation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["NanoConfig"]


@dataclass(frozen=True)
class NanoConfig:
    """Parameters of one nanopowder run.

    The paper gives three hard numbers: the coefficient table is ~42 MB,
    the decomposition needs the node count to divide 40, and ~90% of the
    serial runtime is coagulation.  ``paper_scale()`` is calibrated to
    reproduce all three: the binary-alloy section grid is 120 volume bins
    × 11 composition bins → M = 1320 flat sections, whose six coefficient
    planes (24 bytes/section-pair × 1320²) are ≈ 42 MB; 40 spatial cells;
    and the substep count makes the serial host phase ~10% of a one-node
    step.

    Attributes
    ----------
    vol_sections:
        Particle-volume bins Kv (geometric grid).
    comp_sections:
        Alloy-composition bins Kc (species-A fraction in [0, 1]).
    cells:
        Spatial reactor cells; the MPI decomposition unit (paper: 40).
    substeps:
        Coagulation integrator substeps per simulation step (stiff ODE).
    steps:
        Simulation steps to run.
    dt:
        Simulation-step timestep in seconds.
    t0_kelvin / t_room / cool_tau:
        Plasma cooling profile T(t) = room + (T0 - room)·exp(-t/τ).
    nucleation_rate0:
        Peak monomer nucleation rate (particles/m³/s).
    host_flops:
        Modelled cost of the serial host phase (nucleation, condensation,
        coefficient recomputation) in floating-point operations.
    """

    vol_sections: int = 120
    comp_sections: int = 11
    cells: int = 40
    substeps: int = 80
    steps: int = 2
    dt: float = 1e-3
    t0_kelvin: float = 3200.0
    t_room: float = 300.0
    cool_tau: float = 0.05
    nucleation_rate0: float = 1e18
    host_flops: float = 1.5e9

    def __post_init__(self) -> None:
        if self.vol_sections < 2 or self.comp_sections < 1:
            raise ConfigurationError(
                "need at least 2 volume bins and 1 composition bin")
        if self.cells < 1 or self.steps < 1 or self.substeps < 1:
            raise ConfigurationError("cells/steps/substeps must be positive")
        if self.dt <= 0 or self.cool_tau <= 0:
            raise ConfigurationError("dt and cool_tau must be positive")

    @property
    def sections(self) -> int:
        """Total flat section count M = Kv · Kc."""
        return self.vol_sections * self.comp_sections

    @classmethod
    def paper_scale(cls, steps: int = 2) -> "NanoConfig":
        """The §V.D configuration (42 MB coefficients, 40 cells)."""
        return cls(steps=steps)

    @classmethod
    def test_scale(cls, steps: int = 2, cells: int = 8) -> "NanoConfig":
        """Small functional configuration for tests (M = 48 sections)."""
        return cls(vol_sections=12, comp_sections=4, cells=cells,
                   substeps=4, steps=steps, dt=2e-4, host_flops=1e7)

    @property
    def coeff_bytes(self) -> int:
        """Size of the packed coefficient table (24 bytes per pair:
        six float32 planes of M×M)."""
        return 24 * self.sections * self.sections

    @property
    def coag_flops_per_cell_substep(self) -> float:
        """Roofline flop count of one cell's coagulation substep (rate
        products, row sums, and the 2×2 sectional scatter)."""
        return 6.0 * self.sections * self.sections

    def coag_flops(self, cells: int) -> float:
        """Kernel flop count for ``cells`` cells over all substeps."""
        return self.coag_flops_per_cell_substep * self.substeps * cells

    def cells_of(self, rank: int, nranks: int) -> tuple[int, int]:
        """Cell range ``[lo, hi)`` of ``rank``; node count must divide
        ``cells`` (paper: "the number of nodes must be a divisor of 40")."""
        if self.cells % nranks != 0:
            raise ConfigurationError(
                f"node count {nranks} must divide {self.cells} cells")
        per = self.cells // nranks
        return rank * per, (rank + 1) * per
