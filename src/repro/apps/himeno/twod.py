"""2-D domain decomposition for the Himeno benchmark (extension).

The paper's code "assumes one-dimensional domain decomposition" (§III);
this module extends the clMPI implementation to a ``pi × pj`` process
grid, which a production solver needs for surface-to-volume scaling.  It
exercises a pattern the 1-D version never hits: **non-contiguous halos**
— j-edge columns are strided in memory, so they are packed into
contiguous edge buffers by a device kernel, sent with
``clEnqueueSendBuffer``, and unpacked on arrival, all chained by events.

For validation the 2-D variant runs *pure Jacobi* (one full-interior
update per iteration, no A/B split), which is partition-invariant: the
assembled distributed field is **bit-identical** to the sequential
single-domain reference for any process grid (tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

from repro import clmpi
from repro.apps.himeno.config import FLOPS_PER_CELL, HimenoConfig
from repro.apps.himeno.reference import init_pressure, jacobi_rows
from repro.errors import ConfigurationError
from repro.launcher import ClusterApp, RankContext
from repro.ocl.kernel import Kernel
from repro.systems.presets import SystemPreset

__all__ = ["Partition2D", "clmpi_2d_main", "run_himeno_2d",
           "reference_2d"]

TAG_I_UP, TAG_I_DOWN, TAG_J_UP, TAG_J_DOWN = 41, 42, 43, 44


@dataclass(frozen=True)
class Partition2D:
    """A ``pi × pj`` partition of the (mi, mj, mk) grid's interior."""

    pi: int
    pj: int
    mi: int
    mj: int
    mk: int

    def __post_init__(self) -> None:
        if self.pi < 1 or self.pj < 1:
            raise ConfigurationError("process grid must be at least 1x1")
        if (self.mi - 2) // self.pi < 1 or (self.mj - 2) // self.pj < 1:
            raise ConfigurationError(
                f"grid {self.mi}x{self.mj} too small for "
                f"{self.pi}x{self.pj} processes")

    @property
    def size(self) -> int:
        return self.pi * self.pj

    def coords(self, rank: int) -> tuple[int, int]:
        """(ri, rj) process coordinates of ``rank`` (row-major)."""
        return rank // self.pj, rank % self.pj

    def rank_of(self, ri: int, rj: int) -> Optional[int]:
        if 0 <= ri < self.pi and 0 <= rj < self.pj:
            return ri * self.pj + rj
        return None

    @staticmethod
    def _span(total: int, parts: int, idx: int) -> tuple[int, int]:
        base, extra = divmod(total, parts)
        lo = idx * base + min(idx, extra)
        return lo, lo + base + (1 if idx < extra else 0)

    def i_span(self, rank: int) -> tuple[int, int]:
        """Owned global interior i-rows [lo, hi)."""
        ri, _ = self.coords(rank)
        lo, hi = self._span(self.mi - 2, self.pi, ri)
        return lo + 1, hi + 1  # global interior starts at 1

    def j_span(self, rank: int) -> tuple[int, int]:
        ri, rj = self.coords(rank)
        lo, hi = self._span(self.mj - 2, self.pj, rj)
        return lo + 1, hi + 1

    def local_shape(self, rank: int) -> tuple[int, int, int]:
        """Local array shape including ghost planes in i and j."""
        i0, i1 = self.i_span(rank)
        j0, j1 = self.j_span(rank)
        return (i1 - i0 + 2, j1 - j0 + 2, self.mk)

    def neighbors(self, rank: int) -> dict[str, Optional[int]]:
        ri, rj = self.coords(rank)
        return {
            "i_lo": self.rank_of(ri - 1, rj),
            "i_hi": self.rank_of(ri + 1, rj),
            "j_lo": self.rank_of(ri, rj - 1),
            "j_hi": self.rank_of(ri, rj + 1),
        }


def _pack_kernel(shape, j_col: int, mode: str) -> Kernel:
    """Pack (mode='pack') or unpack (mode='unpack') one j-column.

    The column ``P[:, j_col, :]`` is strided; the edge buffer is its
    contiguous copy.  Costed as a strided device-memory copy.
    """
    li2, lj2, mk = shape
    nbytes = li2 * mk * 4

    def body(p_buf, edge_buf) -> None:
        P = p_buf.view("f4", shape)
        E = edge_buf.view("f4", (li2, mk))
        if mode == "pack":
            E[:] = P[:, j_col, :]
        else:
            P[:, j_col, :] = E

    return Kernel(f"{mode}_j{j_col}", body=body,
                  mem_bytes=2.0 * nbytes)


def clmpi_2d_main(ctx: RankContext, cfg: HimenoConfig, pi: int, pj: int,
                  collect: bool = False) -> Generator[Any, Any, dict]:
    """Rank coroutine: pure-Jacobi Himeno on a 2-D process grid."""
    mi, mj, mk = cfg.grid
    part = Partition2D(pi, pj, mi, mj, mk)
    if part.size != ctx.size:
        raise ConfigurationError(
            f"process grid {pi}x{pj} needs {part.size} ranks, "
            f"got {ctx.size}")
    rank = ctx.rank
    i0, i1 = part.i_span(rank)
    j0, j1 = part.j_span(rank)
    li, lj = i1 - i0, j1 - j0
    shape = part.local_shape(rank)
    nbr = part.neighbors(rank)
    row_bytes = shape[1] * mk * 4          # one i-plane (with j-ghosts)
    col_bytes = shape[0] * mk * 4          # one packed j-column

    q0 = ctx.queue(name=f"r{rank}.compute")
    qs = ctx.queue(name=f"r{rank}.send")
    qr = ctx.queue(name=f"r{rank}.recv")
    qp = ctx.queue(name=f"r{rank}.pack")

    p_buf = ctx.ocl.create_buffer(int(np.prod(shape)) * 4, name="p2d")
    gosa_buf = ctx.ocl.create_buffer(8, name="gosa2d")
    edge = {side: ctx.ocl.create_buffer(col_bytes, name=f"edge.{side}")
            for side in ("j_lo_s", "j_lo_r", "j_hi_s", "j_hi_r")}

    if ctx.ocl.functional:
        # global initial field, sliced with ghosts (ghost columns carry
        # the physical boundary or will be overwritten by exchanges)
        whole = init_pressure(mi, mj, mk)
        p_buf.view("f4", shape)[:] = whole[i0 - 1:i1 + 1, j0 - 1:j1 + 1, :]

    def jacobi_body(pb, gb) -> None:
        P = pb.view("f4", shape)
        part_gosa = jacobi_rows(P, 1, shape[0] - 1, cfg.omega)
        gb.view("f8")[0] += part_gosa

    interior_cells = li * lj * (mk - 2)
    jacobi = Kernel("jacobi2d", body=jacobi_body,
                    flops=float(FLOPS_PER_CELL) * interior_cells)
    pack_lo = _pack_kernel(shape, 1, "pack")
    pack_hi = _pack_kernel(shape, shape[1] - 2, "pack")
    unpack_lo = _pack_kernel(shape, 0, "unpack")
    unpack_hi = _pack_kernel(shape, shape[1] - 1, "unpack")
    gosa_host = np.zeros(1, dtype=np.float64)
    gosa_seen = 0.0

    def row_off(i: int) -> int:
        return i * row_bytes

    yield from ctx.comm.barrier()
    t0 = ctx.env.now
    gosas = []
    e_k: tuple = ()

    for _ in range(cfg.iterations):
        waits = []
        # --- i-halos: contiguous planes, direct clMPI transfers ---------
        if nbr["i_hi"] is not None:
            waits.append((yield from clmpi.enqueue_send_buffer(
                qs, p_buf, False, row_off(shape[0] - 2), row_bytes,
                nbr["i_hi"], TAG_I_UP, ctx.comm, wait_for=e_k)))
            waits.append((yield from clmpi.enqueue_recv_buffer(
                qr, p_buf, False, row_off(shape[0] - 1), row_bytes,
                nbr["i_hi"], TAG_I_DOWN, ctx.comm, wait_for=e_k)))
        if nbr["i_lo"] is not None:
            waits.append((yield from clmpi.enqueue_send_buffer(
                qs, p_buf, False, row_off(1), row_bytes,
                nbr["i_lo"], TAG_I_DOWN, ctx.comm, wait_for=e_k)))
            waits.append((yield from clmpi.enqueue_recv_buffer(
                qr, p_buf, False, row_off(0), row_bytes,
                nbr["i_lo"], TAG_I_UP, ctx.comm, wait_for=e_k)))
        # --- j-halos: pack -> send; recv -> unpack ------------------------
        if nbr["j_hi"] is not None:
            e_pack = yield from qp.enqueue_nd_range_kernel(
                pack_hi, (p_buf, edge["j_hi_s"]), wait_for=e_k)
            waits.append((yield from clmpi.enqueue_send_buffer(
                qs, edge["j_hi_s"], False, 0, col_bytes,
                nbr["j_hi"], TAG_J_UP, ctx.comm, wait_for=(e_pack,))))
            e_recv = yield from clmpi.enqueue_recv_buffer(
                qr, edge["j_hi_r"], False, 0, col_bytes,
                nbr["j_hi"], TAG_J_DOWN, ctx.comm, wait_for=e_k)
            waits.append((yield from qp.enqueue_nd_range_kernel(
                unpack_hi, (p_buf, edge["j_hi_r"]),
                wait_for=(e_recv,))))
        if nbr["j_lo"] is not None:
            e_pack = yield from qp.enqueue_nd_range_kernel(
                pack_lo, (p_buf, edge["j_lo_s"]), wait_for=e_k)
            waits.append((yield from clmpi.enqueue_send_buffer(
                qs, edge["j_lo_s"], False, 0, col_bytes,
                nbr["j_lo"], TAG_J_DOWN, ctx.comm, wait_for=(e_pack,))))
            e_recv = yield from clmpi.enqueue_recv_buffer(
                qr, edge["j_lo_r"], False, 0, col_bytes,
                nbr["j_lo"], TAG_J_UP, ctx.comm, wait_for=e_k)
            waits.append((yield from qp.enqueue_nd_range_kernel(
                unpack_lo, (p_buf, edge["j_lo_r"]),
                wait_for=(e_recv,))))
        # --- pure-Jacobi sweep over the whole local interior ---------------
        ek = yield from q0.enqueue_nd_range_kernel(
            jacobi, (p_buf, gosa_buf), wait_for=tuple(waits))
        e_k = (ek,)
        yield from q0.finish()
        yield from qs.finish()
        yield from qr.finish()
        yield from qp.finish()
        # gosa
        yield from q0.enqueue_read_buffer(gosa_buf, True, 0, 8, gosa_host)
        local = np.array([gosa_host[0] - gosa_seen])
        gosa_seen = float(gosa_host[0])
        out = np.zeros(1)
        yield from ctx.comm.allreduce(local, out, "sum")
        gosas.append(float(out[0]))
    yield from ctx.comm.barrier()
    return {
        "rank": rank,
        "time": ctx.env.now - t0,
        "gosa_per_iter": gosas,
        "span": (i0, i1, j0, j1),
        "p_local": (p_buf.view("f4", shape).copy()
                    if collect and ctx.ocl.functional else None),
    }


@dataclass
class Himeno2DResult:
    """Outcome of a 2-D run."""

    config: HimenoConfig
    pi: int
    pj: int
    time: float
    gflops: float
    gosa_per_iter: list[float]
    #: assembled global interior field (collect + functional only)
    assembled: Optional[np.ndarray] = None


def run_himeno_2d(system: SystemPreset, pi: int, pj: int,
                  config: Optional[HimenoConfig] = None,
                  functional: bool = True, collect: bool = False,
                  trace: bool = False) -> Himeno2DResult:
    """Run the 2-D-decomposed Himeno once."""
    config = config or HimenoConfig(size="XS", iterations=2)
    app = ClusterApp(system, pi * pj, functional=functional, trace=trace)
    results = app.run(clmpi_2d_main, config, pi, pj, collect)
    time = max(r["time"] for r in results)
    assembled = None
    if collect and functional:
        mi, mj, mk = config.grid
        assembled = np.zeros((mi - 2, mj - 2, mk), dtype=np.float32)
        for r in results:
            i0, i1, j0, j1 = r["span"]
            assembled[i0 - 1:i1 - 1, j0 - 1:j1 - 1, :] = \
                r["p_local"][1:-1, 1:-1, :]
    res = Himeno2DResult(
        config=config, pi=pi, pj=pj, time=time,
        gflops=config.total_flops / time / 1e9,
        gosa_per_iter=results[0]["gosa_per_iter"],
        assembled=assembled,
    )
    res.tracer = app.tracer  # type: ignore[attr-defined]
    return res


def reference_2d(config: HimenoConfig) -> tuple[np.ndarray, list[float]]:
    """Sequential pure-Jacobi reference (full sweep per iteration)."""
    mi, mj, mk = config.grid
    P = init_pressure(mi, mj, mk)
    gosas = []
    for _ in range(config.iterations):
        gosas.append(float(jacobi_rows(P, 1, mi - 1, config.omega)))
    return P[1:-1, 1:-1, :], gosas
