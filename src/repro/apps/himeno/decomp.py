"""1-D domain decomposition for the Himeno benchmark (Fig 3).

The global grid's interior i-rows are split contiguously across ranks;
each rank stores its slab plus two ghost planes (``local[0]`` and
``local[li+1]``).  Each slab is halved into portion **A** (lower half of
local interior rows) and **B** (upper half).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Partition", "TAG_UP", "TAG_DOWN"]

#: tag of halo rows travelling towards higher ranks (rank r's top interior
#: row -> rank r+1's lower ghost)
TAG_UP = 11
#: tag of halo rows travelling towards lower ranks
TAG_DOWN = 12


@dataclass(frozen=True)
class Partition:
    """Row partition of an ``(mi, mj, mk)`` grid over ``num_ranks``."""

    num_ranks: int
    mi: int
    mj: int
    mk: int

    def __post_init__(self) -> None:
        if self.num_ranks < 1:
            raise ConfigurationError("need at least one rank")
        interior = self.mi - 2
        if interior // self.num_ranks < 2:
            raise ConfigurationError(
                f"{interior} interior rows over {self.num_ranks} ranks "
                "leaves less than 2 rows per rank (A/B split impossible)")

    @property
    def interior_rows(self) -> int:
        return self.mi - 2

    def local_rows(self, rank: int) -> int:
        """Number of interior rows owned by ``rank``."""
        base, extra = divmod(self.interior_rows, self.num_ranks)
        return base + (1 if rank < extra else 0)

    def row_start(self, rank: int) -> int:
        """Global i-index of ``rank``'s ghost row 0.

        Local row ``l`` maps to global row ``row_start(rank) + l``; local
        interior row 1 is the rank's first owned global interior row.
        """
        base, extra = divmod(self.interior_rows, self.num_ranks)
        owned_before = rank * base + min(rank, extra)
        return owned_before  # ghost row sits just before the owned rows

    def ab_split(self, rank: int) -> tuple[int, int, int, int]:
        """Local interior row ranges ``(a_lo, a_hi, b_lo, b_hi)``."""
        li = self.local_rows(rank)
        half = li // 2
        return 1, half + 1, half + 1, li + 1

    def neighbors(self, rank: int) -> tuple[int | None, int | None]:
        """(lower, upper) neighbour ranks, None at the boundary."""
        lo = rank - 1 if rank > 0 else None
        hi = rank + 1 if rank < self.num_ranks - 1 else None
        return lo, hi

    def plane_bytes(self) -> int:
        """Bytes of one halo plane (float32)."""
        return self.mj * self.mk * 4

    def local_shape(self, rank: int) -> tuple[int, int, int]:
        """Local array shape including the two ghost planes."""
        return (self.local_rows(rank) + 2, self.mj, self.mk)
