"""The *serial* Himeno implementation (§V.C).

"Almost the same as the hand-optimized implementation but all the
computations and communications are serialized": the same A/B phase
structure and the same pinned transfers, with every step blocking the
host thread.  Its performance is the paper's lower bound (Fig 9).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.apps.himeno.common import (
    HimenoState,
    finalize,
    read_gosa,
    setup_rank,
)
from repro.apps.himeno.config import HimenoConfig
from repro.apps.himeno.decomp import TAG_DOWN, TAG_UP
from repro.launcher import RankContext
from repro.ocl.api import wait_for_events

__all__ = ["serial_main"]


def _kernel_blocking(ctx, st: HimenoState, q, lo: int,
                     hi: int) -> Generator[Any, Any, None]:
    evt = yield from q.enqueue_nd_range_kernel(
        st.kernel, (st.p_buf, st.gosa_buf, lo, hi))
    yield from wait_for_events([evt], host=ctx.node.host)
    st.track(evt)


def _exchange_blocking(ctx, st: HimenoState, q, own_row: int,
                       ghost_row: int, nbr: int, send_tag: int,
                       recv_tag: int) -> Generator[Any, Any, None]:
    """Fully serialized halo exchange: read → sendrecv → write."""
    send_host = st.plane_array()
    recv_host = st.plane_array()
    yield from q.enqueue_read_buffer(
        st.p_buf, True, st.row_offset(own_row), st.plane, send_host,
        pinned=True)
    yield from ctx.comm.sendrecv(send_host, nbr, send_tag,
                                 recv_host, nbr, recv_tag)
    yield from q.enqueue_write_buffer(
        st.p_buf, True, st.row_offset(ghost_row), st.plane, recv_host,
        pinned=True)


def serial_main(ctx: RankContext, cfg: HimenoConfig,
                collect: bool = False) -> Generator[Any, Any, dict]:
    """Rank coroutine of the serial implementation."""
    st = yield from setup_rank(ctx, cfg)
    q = ctx.queue(name=f"r{ctx.rank}.q0")
    even = ctx.rank % 2 == 0
    t0 = ctx.env.now
    gosas = []
    for _ in range(cfg.iterations):
        if even:
            yield from _kernel_blocking(ctx, st, q, st.a_lo, st.a_hi)
            if st.hi_nbr is not None:
                yield from _exchange_blocking(ctx, st, q, st.li, st.li + 1,
                                              st.hi_nbr, TAG_UP, TAG_DOWN)
            yield from _kernel_blocking(ctx, st, q, st.b_lo, st.b_hi)
            if st.lo_nbr is not None:
                yield from _exchange_blocking(ctx, st, q, 1, 0,
                                              st.lo_nbr, TAG_DOWN, TAG_UP)
        else:
            yield from _kernel_blocking(ctx, st, q, st.b_lo, st.b_hi)
            if st.lo_nbr is not None:
                yield from _exchange_blocking(ctx, st, q, 1, 0,
                                              st.lo_nbr, TAG_DOWN, TAG_UP)
            yield from _kernel_blocking(ctx, st, q, st.a_lo, st.a_hi)
            if st.hi_nbr is not None:
                yield from _exchange_blocking(ctx, st, q, st.li, st.li + 1,
                                              st.hi_nbr, TAG_UP, TAG_DOWN)
        gosas.append((yield from read_gosa(ctx, st, q)))
    yield from ctx.comm.barrier()
    return finalize(ctx, st, t0, ctx.env.now, gosas, collect)
