"""A *GPU-aware MPI* Himeno implementation (§II comparator).

Identical overlap structure to the hand-optimized version, but the halo
exchanges use the GPU-aware MPI interface
(:mod:`repro.clmpi.gpu_aware`): device buffers go straight into MPI-style
calls and the optimized transfer engines are used automatically — yet the
host thread still serializes kernel completion against each exchange and
is tied up for the exchange's duration, because a GPU-aware MPI has no
event integration.  Sits between hand-optimized and clMPI in Fig 9(a)'s
4-node regime, isolating "better engines" from "no host blocking".
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.apps.himeno.common import (
    finalize,
    read_gosa,
    setup_rank,
)
from repro.apps.himeno.config import HimenoConfig
from repro.apps.himeno.decomp import TAG_DOWN, TAG_UP
from repro.clmpi import gpu_aware
from repro.launcher import RankContext
from repro.ocl.event import CLEvent

__all__ = ["gpu_aware_main"]


def gpu_aware_main(ctx: RankContext, cfg: HimenoConfig,
                   collect: bool = False) -> Generator[Any, Any, dict]:
    """Rank coroutine of the GPU-aware-MPI implementation."""
    st = yield from setup_rank(ctx, cfg)
    q0 = ctx.queue(name=f"r{ctx.rank}.compute")
    even = ctx.rank % 2 == 0
    rt = ctx.runtime
    t0 = ctx.env.now
    gosas = []
    kernel_events = []
    e_second_prev: Optional[CLEvent] = None

    def exchange(own_row: int, ghost_row: int, nbr: int, stag: int,
                 rtag: int, after) -> Generator[Any, Any, None]:
        yield from gpu_aware.sendrecv_device(
            rt, st.p_buf, st.row_offset(own_row), nbr, stag,
            st.p_buf, st.row_offset(ghost_row), nbr, rtag,
            st.plane, ctx.comm,
            after=tuple(e for e in after if e is not None))

    for _ in range(cfg.iterations):
        if even:
            eA = yield from q0.enqueue_nd_range_kernel(
                st.kernel, (st.p_buf, st.gosa_buf, st.a_lo, st.a_hi),
                label="jacobi_A")
            if st.hi_nbr is not None:
                # host blocks through the exchange; kernel A overlaps
                yield from exchange(st.li, st.li + 1, st.hi_nbr,
                                    TAG_UP, TAG_DOWN, (e_second_prev,))
            eB = yield from q0.enqueue_nd_range_kernel(
                st.kernel, (st.p_buf, st.gosa_buf, st.b_lo, st.b_hi),
                label="jacobi_B")
            if st.lo_nbr is not None:
                yield from exchange(1, 0, st.lo_nbr,
                                    TAG_DOWN, TAG_UP, (eA,))
            e_second_prev = eB
            kernel_events += [eA, eB]
        else:
            eB = yield from q0.enqueue_nd_range_kernel(
                st.kernel, (st.p_buf, st.gosa_buf, st.b_lo, st.b_hi),
                label="jacobi_B")
            if st.lo_nbr is not None:
                yield from exchange(1, 0, st.lo_nbr,
                                    TAG_DOWN, TAG_UP, (e_second_prev,))
            eA = yield from q0.enqueue_nd_range_kernel(
                st.kernel, (st.p_buf, st.gosa_buf, st.a_lo, st.a_hi),
                label="jacobi_A")
            if st.hi_nbr is not None:
                yield from exchange(st.li, st.li + 1, st.hi_nbr,
                                    TAG_UP, TAG_DOWN, (eB,))
            e_second_prev = eA
            kernel_events += [eB, eA]
        yield from q0.finish()
        gosas.append((yield from read_gosa(ctx, st, q0)))
    for evt in kernel_events:
        st.track(evt)
    yield from ctx.comm.barrier()
    return finalize(ctx, st, t0, ctx.env.now, gosas, collect)
