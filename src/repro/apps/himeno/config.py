"""Problem sizes and run configuration for the Himeno benchmark."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["SIZES", "HimenoConfig", "FLOPS_PER_CELL"]

#: Official Himeno grid sizes (mimax, mjmax, mkmax) plus small test sizes.
SIZES: dict[str, tuple[int, int, int]] = {
    "XXS": (16, 16, 32),
    "XS": (32, 32, 64),
    "S": (64, 64, 128),
    "M": (128, 128, 256),   # the paper evaluates "M-size data"
    "L": (256, 256, 512),
}

#: The benchmark's official operation count per interior cell per sweep.
FLOPS_PER_CELL = 34


@dataclass(frozen=True)
class HimenoConfig:
    """One Himeno run's parameters.

    Attributes
    ----------
    size:
        A key of :data:`SIZES`, or leave and set ``dims``.
    dims:
        Explicit ``(mi, mj, mk)`` grid (overrides ``size``).
    iterations:
        Jacobi sweeps to run (the paper reports sustained GFLOPS, so a
        few sweeps suffice).
    omega:
        Relaxation factor (benchmark standard 0.8).
    """

    size: str = "M"
    dims: tuple[int, int, int] | None = None
    iterations: int = 4
    omega: float = 0.8

    def __post_init__(self) -> None:
        if self.dims is None and self.size not in SIZES:
            raise ConfigurationError(
                f"unknown Himeno size {self.size!r}; pick from {sorted(SIZES)}")
        mi, mj, mk = self.grid
        if min(mi, mj, mk) < 4:
            raise ConfigurationError("grid must be at least 4^3")
        if self.iterations < 1:
            raise ConfigurationError("need at least one iteration")
        if not (0.0 < self.omega <= 1.0):
            raise ConfigurationError("omega must be in (0, 1]")

    @property
    def grid(self) -> tuple[int, int, int]:
        """(mi, mj, mk) including boundary planes."""
        return self.dims if self.dims is not None else SIZES[self.size]

    @property
    def interior_cells(self) -> int:
        mi, mj, mk = self.grid
        return (mi - 2) * (mj - 2) * (mk - 2)

    @property
    def total_flops(self) -> float:
        """Official FLOP count of the whole run."""
        return float(FLOPS_PER_CELL) * self.interior_cells * self.iterations

    @property
    def plane_bytes(self) -> int:
        """Bytes of one i-plane (the halo message size), float32."""
        _, mj, mk = self.grid
        return mj * mk * 4
