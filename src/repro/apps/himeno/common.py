"""Shared setup and helpers for the three Himeno implementations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

import numpy as np

from repro.apps.himeno.config import HimenoConfig
from repro.apps.himeno.decomp import Partition
from repro.apps.himeno.kernels import GOSA_BYTES, make_jacobi_kernel
from repro.apps.himeno.reference import init_pressure
from repro.launcher import RankContext
from repro.ocl.buffer import Buffer
from repro.ocl.kernel import Kernel

__all__ = ["HimenoState", "setup_rank", "read_gosa", "finalize"]


@dataclass
class HimenoState:
    """Per-rank state of one Himeno run."""

    cfg: HimenoConfig
    part: Partition
    rank: int
    li: int                      # owned interior rows
    a_lo: int
    a_hi: int
    b_lo: int
    b_hi: int
    lo_nbr: Optional[int]
    hi_nbr: Optional[int]
    plane: int                   # bytes per i-plane
    p_buf: Buffer
    gosa_buf: Buffer
    kernel: Kernel
    #: accumulated simulated GPU kernel time (for the comp/comm ratio)
    kernel_time: float = 0.0
    #: cumulative gosa read back so far
    gosa_seen: float = 0.0
    gosa_host: np.ndarray = field(
        default_factory=lambda: np.zeros(1, dtype=np.float64))

    def row_offset(self, row: int) -> int:
        """Byte offset of local i-plane ``row`` inside ``p_buf``."""
        return row * self.plane

    def plane_array(self) -> np.ndarray:
        """Fresh float32 host staging array of one plane."""
        return np.empty((self.part.mj, self.part.mk), dtype=np.float32)

    def track(self, kernel_event) -> None:
        """Record a kernel event for the compute-time tally."""
        self.kernel_time += kernel_event.duration()


def setup_rank(ctx: RankContext,
               cfg: HimenoConfig) -> Generator[Any, Any, HimenoState]:
    """Allocate and initialize this rank's slab; collective barrier at end."""
    mi, mj, mk = cfg.grid
    part = Partition(ctx.size, mi, mj, mk)
    rank = ctx.rank
    li = part.local_rows(rank)
    a_lo, a_hi, b_lo, b_hi = part.ab_split(rank)
    lo_nbr, hi_nbr = part.neighbors(rank)
    shape = part.local_shape(rank)
    p_buf = ctx.ocl.create_buffer(int(np.prod(shape)) * 4,
                                  name=f"p.r{rank}")
    gosa_buf = ctx.ocl.create_buffer(GOSA_BYTES, name=f"gosa.r{rank}")
    if ctx.ocl.functional:
        p_buf.view("f4", shape)[:] = init_pressure(
            shape[0], mj, mk, i_offset=part.row_start(rank), mi_global=mi)
    kernel = make_jacobi_kernel(shape, cfg.omega)
    state = HimenoState(cfg=cfg, part=part, rank=rank, li=li,
                        a_lo=a_lo, a_hi=a_hi, b_lo=b_lo, b_hi=b_hi,
                        lo_nbr=lo_nbr, hi_nbr=hi_nbr,
                        plane=part.plane_bytes(),
                        p_buf=p_buf, gosa_buf=gosa_buf, kernel=kernel)
    yield from ctx.comm.barrier()
    return state


def read_gosa(ctx: RankContext, st: HimenoState,
              queue) -> Generator[Any, Any, float]:
    """End-of-iteration gosa: blocking tiny read + allreduce.

    Returns this iteration's *global* residual (all implementations do
    this identically, as the real benchmark does).
    """
    yield from queue.enqueue_read_buffer(st.gosa_buf, True, 0, GOSA_BYTES,
                                         st.gosa_host)
    local = np.array([st.gosa_host[0] - st.gosa_seen], dtype=np.float64)
    st.gosa_seen = float(st.gosa_host[0])
    out = np.zeros(1, dtype=np.float64)
    yield from ctx.comm.allreduce(local, out, "sum")
    return float(out[0])


def finalize(ctx: RankContext, st: HimenoState, t0: float, t1: float,
             gosas: list[float], collect: bool) -> dict:
    """Package one rank's results."""
    result = {
        "rank": st.rank,
        "time": t1 - t0,
        "kernel_time": st.kernel_time,
        "gosa_per_iter": gosas,
        "gosa": gosas[-1] if gosas else float("nan"),
        "p_local": None,
    }
    if collect and ctx.ocl.functional:
        shape = st.part.local_shape(st.rank)
        result["p_local"] = st.p_buf.view("f4", shape).copy()
    return result
