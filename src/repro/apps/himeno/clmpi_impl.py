"""The *clMPI* Himeno implementation (§IV, Fig 6).

Halo exchanges become ``clEnqueueSendBuffer`` / ``clEnqueueRecvBuffer``
commands whose dependencies with the Jacobi kernels are expressed purely
through event objects.  The host thread enqueues the whole iteration
without blocking and only waits in ``clFinish`` at the iteration end —
Fig 4(c): the runtime releases each communication command the moment its
prerequisites complete, with no host involvement.

The transfer engine (pinned / mapped / pipelined) is whatever the
runtime's selector picks for the system — the application code does not
know or care, which is the paper's portability argument.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro import clmpi
from repro.apps.himeno.common import (
    HimenoState,
    finalize,
    read_gosa,
    setup_rank,
)
from repro.apps.himeno.config import HimenoConfig
from repro.apps.himeno.decomp import TAG_DOWN, TAG_UP
from repro.launcher import RankContext
from repro.ocl.event import CLEvent

__all__ = ["clmpi_main"]


def _exchange_clmpi(ctx, st: HimenoState, qs, qr, own_row: int,
                    ghost_row: int, nbr: int, send_tag: int, recv_tag: int,
                    after: tuple[CLEvent, ...]
                    ) -> Generator[Any, Any, tuple[CLEvent, CLEvent]]:
    """Enqueue a halo exchange as one send + one recv command.

    Non-blocking: the host returns immediately with the two events.
    """
    e_send = yield from clmpi.enqueue_send_buffer(
        qs, st.p_buf, False, st.row_offset(own_row), st.plane,
        dest=nbr, tag=send_tag, comm=ctx.comm, wait_for=after)
    e_recv = yield from clmpi.enqueue_recv_buffer(
        qr, st.p_buf, False, st.row_offset(ghost_row), st.plane,
        source=nbr, tag=recv_tag, comm=ctx.comm, wait_for=after)
    return e_send, e_recv


def clmpi_main(ctx: RankContext, cfg: HimenoConfig,
               collect: bool = False) -> Generator[Any, Any, dict]:
    """Rank coroutine of the clMPI implementation (Fig 6)."""
    st = yield from setup_rank(ctx, cfg)
    q0 = ctx.queue(name=f"r{ctx.rank}.compute")
    qs = ctx.queue(name=f"r{ctx.rank}.send")
    qr = ctx.queue(name=f"r{ctx.rank}.recv")
    even = ctx.rank % 2 == 0
    t0 = ctx.env.now
    gosas = []
    kernel_events = []
    e_first_prev: Optional[CLEvent] = None
    e_second_prev: Optional[CLEvent] = None
    ex_second_prev: tuple[CLEvent, ...] = ()

    for _ in range(cfg.iterations):
        if even:
            # phase 1: compute A ∥ exchange halo-of-B (hi neighbour)
            eA = yield from q0.enqueue_nd_range_kernel(
                st.kernel, (st.p_buf, st.gosa_buf, st.a_lo, st.a_hi),
                wait_for=ex_second_prev, label="jacobi_A")
            ex_hi: tuple[CLEvent, ...] = ()
            if st.hi_nbr is not None:
                ex_hi = yield from _exchange_clmpi(
                    ctx, st, qs, qr, st.li, st.li + 1, st.hi_nbr,
                    TAG_UP, TAG_DOWN, _evts(e_second_prev))
            # phase 2: compute B ∥ exchange halo-of-A (lo neighbour)
            eB = yield from q0.enqueue_nd_range_kernel(
                st.kernel, (st.p_buf, st.gosa_buf, st.b_lo, st.b_hi),
                wait_for=ex_hi, label="jacobi_B")
            ex_lo: tuple[CLEvent, ...] = ()
            if st.lo_nbr is not None:
                ex_lo = yield from _exchange_clmpi(
                    ctx, st, qs, qr, 1, 0, st.lo_nbr,
                    TAG_DOWN, TAG_UP, _evts(eA))
            e_first_prev, e_second_prev, ex_second_prev = eA, eB, ex_lo
            kernel_events += [eA, eB]
        else:
            # phase 1: compute B ∥ exchange halo-of-A (lo neighbour)
            eB = yield from q0.enqueue_nd_range_kernel(
                st.kernel, (st.p_buf, st.gosa_buf, st.b_lo, st.b_hi),
                wait_for=ex_second_prev, label="jacobi_B")
            ex_lo = ()
            if st.lo_nbr is not None:
                ex_lo = yield from _exchange_clmpi(
                    ctx, st, qs, qr, 1, 0, st.lo_nbr,
                    TAG_DOWN, TAG_UP, _evts(e_second_prev))
            # phase 2: compute A ∥ exchange halo-of-B (hi neighbour)
            eA = yield from q0.enqueue_nd_range_kernel(
                st.kernel, (st.p_buf, st.gosa_buf, st.a_lo, st.a_hi),
                wait_for=ex_lo, label="jacobi_A")
            ex_hi = ()
            if st.hi_nbr is not None:
                ex_hi = yield from _exchange_clmpi(
                    ctx, st, qs, qr, st.li, st.li + 1, st.hi_nbr,
                    TAG_UP, TAG_DOWN, _evts(eB))
            e_first_prev, e_second_prev, ex_second_prev = eB, eA, ex_hi
            kernel_events += [eB, eA]
        # Fig 6: "the host thread is just waiting at the end of the
        # iteration by calling clFinish".
        yield from q0.finish()
        yield from qs.finish()
        yield from qr.finish()
        gosas.append((yield from read_gosa(ctx, st, q0)))
    for evt in kernel_events:
        st.track(evt)
    yield from ctx.comm.barrier()
    return finalize(ctx, st, t0, ctx.env.now, gosas, collect)


def _evts(*events) -> tuple:
    return tuple(e for e in events if e is not None)
