"""The *hand-optimized* Himeno implementation (§III Fig 2, from [13]).

Two in-order command queues: ``q0`` runs the Jacobi kernels, ``q1`` the
halo transfers (pinned reads/writes).  The host thread orchestrates the
overlap: it enqueues the first-stage kernel, then *blocks* managing the
first-stage halo exchange (wait for the device→host read, MPI_Sendrecv,
enqueue the host→device ghost write), then enqueues the second-stage
kernel with an event dependency on the ghost write, and so on.

This is exactly the pattern whose weakness Fig 4(b) shows: while the host
is tied up in the first-stage exchange, the second-stage exchange cannot
start even if its data is ready.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.apps.himeno.common import (
    HimenoState,
    finalize,
    read_gosa,
    setup_rank,
)
from repro.apps.himeno.config import HimenoConfig
from repro.apps.himeno.decomp import TAG_DOWN, TAG_UP
from repro.launcher import RankContext
from repro.ocl.api import wait_for_events
from repro.ocl.event import CLEvent

__all__ = ["hand_optimized_main"]


def _exchange_host_managed(ctx, st: HimenoState, q1, own_row: int,
                           ghost_row: int, nbr: int, send_tag: int,
                           recv_tag: int,
                           read_after: tuple[CLEvent, ...]
                           ) -> Generator[Any, Any, CLEvent]:
    """Host-managed pinned halo exchange; returns the ghost-write event."""
    send_host = st.plane_array()
    recv_host = st.plane_array()
    e_read = yield from q1.enqueue_read_buffer(
        st.p_buf, False, st.row_offset(own_row), st.plane, send_host,
        wait_for=read_after, pinned=True)
    # The host thread blocks here — this is the serialization the paper
    # attacks: nothing else can be initiated by this host meanwhile.
    yield from wait_for_events([e_read], host=ctx.node.host)
    yield from ctx.comm.sendrecv(send_host, nbr, send_tag,
                                 recv_host, nbr, recv_tag)
    e_write = yield from q1.enqueue_write_buffer(
        st.p_buf, False, st.row_offset(ghost_row), st.plane, recv_host,
        pinned=True)
    return e_write


def hand_optimized_main(ctx: RankContext, cfg: HimenoConfig,
                        collect: bool = False) -> Generator[Any, Any, dict]:
    """Rank coroutine of the hand-optimized implementation."""
    st = yield from setup_rank(ctx, cfg)
    q0 = ctx.queue(name=f"r{ctx.rank}.compute")
    q1 = ctx.queue(name=f"r{ctx.rank}.transfer")
    even = ctx.rank % 2 == 0
    t0 = ctx.env.now
    gosas = []
    kernel_events = []
    # events carried across iterations
    e_first_prev: Optional[CLEvent] = None   # previous phase-1 kernel
    e_second_prev: Optional[CLEvent] = None  # previous phase-2 kernel
    e_ghost_prev: Optional[CLEvent] = None   # previous phase-2 ghost write

    for _ in range(cfg.iterations):
        if even:
            # phase 1: compute A  ∥  exchange halo-of-B (with hi_nbr)
            eA = yield from q0.enqueue_nd_range_kernel(
                st.kernel, (st.p_buf, st.gosa_buf, st.a_lo, st.a_hi),
                wait_for=_evts(e_ghost_prev), label="jacobi_A")
            e_whi = None
            if st.hi_nbr is not None:
                e_whi = yield from _exchange_host_managed(
                    ctx, st, q1, st.li, st.li + 1, st.hi_nbr,
                    TAG_UP, TAG_DOWN, _evts(e_second_prev))
            # phase 2: compute B  ∥  exchange halo-of-A (with lo_nbr)
            eB = yield from q0.enqueue_nd_range_kernel(
                st.kernel, (st.p_buf, st.gosa_buf, st.b_lo, st.b_hi),
                wait_for=_evts(e_whi), label="jacobi_B")
            e_wlo = None
            if st.lo_nbr is not None:
                e_wlo = yield from _exchange_host_managed(
                    ctx, st, q1, 1, 0, st.lo_nbr,
                    TAG_DOWN, TAG_UP, _evts(eA))
            e_first_prev, e_second_prev, e_ghost_prev = eA, eB, e_wlo
            kernel_events += [eA, eB]
        else:
            # phase 1: compute B  ∥  exchange halo-of-A (with lo_nbr)
            eB = yield from q0.enqueue_nd_range_kernel(
                st.kernel, (st.p_buf, st.gosa_buf, st.b_lo, st.b_hi),
                wait_for=_evts(e_ghost_prev), label="jacobi_B")
            e_wlo = None
            if st.lo_nbr is not None:
                e_wlo = yield from _exchange_host_managed(
                    ctx, st, q1, 1, 0, st.lo_nbr,
                    TAG_DOWN, TAG_UP, _evts(e_second_prev))
            # phase 2: compute A  ∥  exchange halo-of-B (with hi_nbr)
            eA = yield from q0.enqueue_nd_range_kernel(
                st.kernel, (st.p_buf, st.gosa_buf, st.a_lo, st.a_hi),
                wait_for=_evts(e_wlo), label="jacobi_A")
            e_whi = None
            if st.hi_nbr is not None:
                e_whi = yield from _exchange_host_managed(
                    ctx, st, q1, st.li, st.li + 1, st.hi_nbr,
                    TAG_UP, TAG_DOWN, _evts(eB))
            e_first_prev, e_second_prev, e_ghost_prev = eB, eA, e_whi
            kernel_events += [eB, eA]
        yield from q0.finish()
        yield from q1.finish()
        gosas.append((yield from read_gosa(ctx, st, q1)))
    for evt in kernel_events:
        st.track(evt)
    yield from ctx.comm.barrier()
    return finalize(ctx, st, t0, ctx.env.now, gosas, collect)


def _evts(*events) -> tuple:
    """Filter Nones into a wait list."""
    return tuple(e for e in events if e is not None)
