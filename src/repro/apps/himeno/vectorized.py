"""Mesoscale (vectorized-engine) replay of the Himeno implementations.

Every rank of :func:`~repro.apps.himeno.clmpi_impl.clmpi_main` and
:func:`~repro.apps.himeno.serial.serial_main` executes the same command
sequence per iteration — only the operand values (neighbour ranks, A/B
row counts, kernel durations) differ per rank.  This module replays that
sequence once, as float64 array lanes over all P ranks, through
:class:`~repro.sim.vectorized.VectorEngine` — byte-identical to the
coroutine engine at any rank count, in milliseconds at 1k+ ranks.

Supported: ``serial`` and ``clmpi`` implementations, pinned and mapped
halo transfers, timing-only runs.  Refused with
:class:`~repro.sim.EngineError`: functional runs, pipelined halo
planes (per-block DMA interleaves with the other queues' DMA in ways
that need genuine event interleaving), and odd-rank mapped-mode clmpi
runs (the reduce tree's tied 8-byte messages are ordered by the
coroutine heap's global event sequence there, which no static rule
reproduces — see ``_reduce_drain``).  ``hand-optimized`` /
``gpu-aware-mpi`` have no vectorized model — the driver falls back to
the coroutine engine with a warning.

Shared-DMA arbitration note (the C1060 / single-copy-engine case): in
one clMPI iteration a node's phase-1 *receive drain* (h2d) and phase-2
*send stage* (d2h) can request the single DMA engine at the same
simulated instant (symmetric neighbour pairs).  The coroutine scheduler
resolves this deterministically in favour of the receive drain: its
wake-up (the MPI receive completion) resumes the recv command, which
requests the link in that same event, while the send side still has to
hop through command-completion → dispatcher → wait-list processing
before it can request.  The replay encodes exactly that order (h2d
entries first in the combined batch, ``allow_ties=True``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.himeno.config import FLOPS_PER_CELL, HimenoConfig
from repro.apps.himeno.decomp import Partition
from repro.apps.himeno.kernels import GOSA_BYTES
from repro.clmpi.selector import TransferSelector
from repro.mpi.matching import match_arrays
from repro.sim import EngineError, Environment
from repro.systems.presets import SystemPreset

__all__ = ["VECTORIZED_IMPLEMENTATIONS", "vectorized_rows"]

#: implementations this module can replay
VECTORIZED_IMPLEMENTATIONS = ("serial", "clmpi")

_NEG_INF = float("-inf")


class _Lanes:
    """Per-rank decomposition constants + engine, shared by both models."""

    def __init__(self, system: SystemPreset, nodes: int,
                 config: HimenoConfig):
        mi, mj, mk = config.grid
        self.part = Partition(nodes, mi, mj, mk)
        self.P = nodes
        self.cfg = config
        ranks = np.arange(nodes)
        self.ranks = ranks
        self.even = ranks % 2 == 0
        ab = np.array([self.part.ab_split(r) for r in range(nodes)],
                      dtype=np.float64)
        rows_a = ab[:, 1] - ab[:, 0]
        rows_b = ab[:, 3] - ab[:, 2]
        # phase order: even ranks compute A then B, odd ranks B then A
        self.rows_first = np.where(self.even, rows_a, rows_b)
        self.rows_second = np.where(self.even, rows_b, rows_a)
        self.plane = self.part.plane_bytes()
        self.env = Environment(engine="vectorized")
        self.v = self.env.vector.bind(system, nodes)
        self.t = self.v.t

    def kdur(self, rows: np.ndarray) -> np.ndarray:
        """Replay of the jacobi kernel's cost model for ``rows`` i-rows."""
        _, mj, mk = self.cfg.grid
        flops = float(FLOPS_PER_CELL) * rows * (mj - 2) * (mk - 2)
        mem = 4.0 * rows * mj * mk * 4
        return self.t.kernel_duration(flops, mem)

    def x1_masks(self):
        """Phase-1 halo exchange: rank 2i ↔ 2i+1 (even's hi neighbour)."""
        ranks, P = self.ranks, self.P
        has = np.where(self.even, ranks + 1 < P, True)
        partner = np.where(self.even, ranks + 1, ranks - 1)
        return has, partner

    def x2_masks(self):
        """Phase-2 halo exchange: rank 2i+1 ↔ 2i+2 (even's lo neighbour)."""
        ranks, P = self.ranks, self.P
        has = np.where(self.even, ranks > 0, ranks + 1 < P)
        partner = np.where(self.even, ranks - 1, ranks + 1)
        return has, partner

    def rows_out(self, t0, t1, ktime) -> list[dict]:
        """Per-rank result dicts exactly as ``finalize`` shapes them."""
        iters = self.cfg.iterations
        gosas = [0.0] * iters     # timing-only: the residual is never run
        return [{"rank": int(r),
                 "time": float(t1[r] - t0[r]),
                 "kernel_time": float(ktime[r]),
                 "gosa_per_iter": list(gosas),
                 "gosa": gosas[-1] if gosas else float("nan"),
                 "p_local": None}
                for r in range(self.P)]


def _gosa_and_allreduce(L: _Lanes, h, q_ready, raced=None):
    """End-of-iteration ``read_gosa``: blocking 8-byte read + allreduce.

    ``raced`` is ``(rank, gosa_done, pre_tuple)`` for a rank whose gosa
    read and reduce isend were already serviced (see :func:`_race_ahead`
    — it skipped the final exchange phase and ran ahead of it).
    Returns ``(h, q_ready)`` after the collective.
    """
    t, v = L.t, L.v
    sub = h + t.co
    disp = np.maximum(q_ready, sub)
    if raced is None:
        _, done = v.d2h.use(L.ranks, disp, t.dma_duration(GOSA_BYTES))
        pre = None
    else:
        r, done_r, pre_t = raced
        sel = L.ranks[L.ranks != r]
        done = np.empty(L.P)
        _, dsel = v.d2h.use(sel, disp[sel], t.dma_duration(GOSA_BYTES))
        done[sel] = dsel
        done[r] = done_r
        pre = {r: pre_t}
    h = done + t.so            # blocking enqueue: completion + wake-up
    return v.allreduce_small(h, float(GOSA_BYTES), pre=pre), done


def _race_ahead(L: _Lanes, r: int, h_r: float, q_ready_r: float):
    """Rank ``r``'s gosa read and reduce-isend post, computed *before*
    the final exchange phase is serviced.

    At even P, rank P-1 has no phase-2 exchange: its gosa read (own DMA
    port — safe) and its 8-byte reduce message to parent P-2 genuinely
    interleave with the phase-2 halo arriving at P-2's NIC receive
    port.  Returns ``(gosa_done, ts1, t2)`` of the reduce isend.
    """
    t, v = L.t, L.v
    sub = h_r + t.co
    disp = max(q_ready_r, sub)
    _, d = v.d2h.use(np.array([r]), np.array([disp]),
                     t.dma_duration(GOSA_BYTES))
    done = float(d[0])
    entry = done + t.so
    ts1 = entry + t.co
    t2 = ts1 + (t.pmo + float(GOSA_BYTES) / t.mbw)
    return done, ts1, t2


def _reduce_isend_first(L: _Lanes, r: int, t2_r: float,
                        halo_ts1: float, halo_tr1: float) -> bool:
    """Does rank ``r``'s raced-ahead reduce isend hit port ``r-1``'s
    NIC receive before the phase-2 halo from ``r-2`` does?

    Both request times are tx-port grants, predictable from current
    port state (the two messages use different tx ports).  An exact tie
    is a coroutine heap arbitration — refused.
    """
    t, v = L.t, L.v
    if L.plane <= t.eager_threshold:
        wreq = halo_ts1 + (t.pmo + L.plane / t.mbw)
    else:
        wreq = max(halo_ts1, halo_tr1) + (t.nic_lat + t.switch_lat)
    halo_txg = max(wreq, float(v.tx.free[r - 2]))
    my_txg = max(t2_r, float(v.tx.free[r]))
    if my_txg == halo_txg:
        raise EngineError(
            "raced-ahead reduce isend ties the phase-2 halo on the "
            "parent's receive port; the coroutine engine resolves this "
            "by heap sequence — refusing to guess")
    return my_txg < halo_txg


def _clmpi_rows(L: _Lanes, mode: str, block: Optional[int],
                base: str) -> list[dict]:
    """Replay of :func:`clmpi_main` over all ranks at once."""
    t, v, P = L.t, L.v, L.P
    if mode == "pipelined":
        raise EngineError(
            "the vectorized himeno model does not support pipelined halo "
            "planes (per-block DMA interleaves across queues); use "
            "engine='coroutine' or a non-pipelined force_mode")
    if mode == "mapped" and P >= 3 and P % 2 == 1:
        # At odd P the phase-2 exchange leaves the reduce tree's children
        # in perfect lockstep, so their 8-byte messages hit the root's rx
        # port at bit-identical times.  The coroutine engine breaks that
        # tie by global event sequence, which for the mapped-mode clMPI
        # program differs from the calibrated descending-child order
        # (empirically: cichlid/clmpi/P=3 serves the lower child first).
        # No static rule reproduces it, so this cell is refused rather
        # than silently diverging; the driver falls back to the
        # coroutine engine.
        raise EngineError(
            "the vectorized himeno model cannot reproduce the coroutine "
            "scheduler's exact-tie service order for odd-rank mapped-mode "
            "clmpi runs; use engine='coroutine' or an even rank count")
    has_x1, p1 = L.x1_masks()
    has_x2, p2 = L.x2_masks()
    src1 = L.ranks[has_x1]
    dst1 = p1[has_x1]
    src2 = L.ranks[has_x2]
    dst2 = p2[has_x2]
    dur_f = L.kdur(L.rows_first)
    dur_s = L.kdur(L.rows_second)
    plane = L.plane
    pdur = t.dma_duration(plane)

    entry = v.barrier(np.zeros(P, dtype=np.float64))
    t0 = entry
    h = entry.copy()
    q0r = entry.copy()          # per-queue dispatcher-ready times
    qsr = entry.copy()
    qrr = entry.copy()
    ktime = np.zeros(P, dtype=np.float64)
    s_prev = np.full(P, _NEG_INF)       # previous second kernel
    x2s_prev = np.full(P, _NEG_INF)     # previous phase-2 events
    x2r_prev = np.full(P, _NEG_INF)

    for _ in range(L.cfg.iterations):
        # --- host thread: enqueue the whole iteration without blocking
        sub_f = h + t.co
        h = sub_f
        sub_x1s = h + t.co
        sub_x1r = sub_x1s + t.co
        h = np.where(has_x1, sub_x1r, h)
        sub_s = h + t.co
        h = sub_s
        sub_x2s = h + t.co
        sub_x2r = sub_x2s + t.co
        h = np.where(has_x2, sub_x2r, h)

        # --- first kernel: waits the previous iteration's phase-2 events
        run_f = np.maximum(np.maximum(np.maximum(q0r, sub_f), x2s_prev),
                           x2r_prev)
        _, done_f = v.gpu.use(L.ranks, run_f, dur_f)

        # --- phase-1 exchange: waits the previous second kernel
        x1s_run = np.maximum(np.maximum(qsr, sub_x1s), s_prev)
        x1r_run = np.maximum(np.maximum(qrr, sub_x1r), s_prev)
        x1s_done = qsr.copy()
        x1r_done = qrr.copy()
        recv_c1 = np.full(P, _NEG_INF)
        if src1.size:
            if mode == "pinned":
                res = v.clmpi_pair(src1, dst1, x1s_run[src1],
                                   x1r_run[dst1], plane, "pinned",
                                   defer_recv_dma=True)
            else:
                res = v.clmpi_pair(src1, dst1, x1s_run[src1],
                                   x1r_run[dst1], plane, mode, block, base)
            x1s_done[src1] = res["send_done"]
            recv_c1[dst1] = res["recv_c"]
            if mode != "pinned":
                x1r_done[dst1] = res["recv_done"]

        # --- phase-2 send stage + phase-1 receive drain share the DMA
        # engine(s); service them as one batch (see module docstring)
        x2s_run = np.maximum(np.maximum(np.where(has_x1, x1s_done, qsr),
                                        sub_x2s), done_f)
        if mode == "pinned":
            n1, n2 = src1.size, src2.size
            # one FifoPorts holds both directions when the engine is
            # shared (C1060) — h2d drains go first (see module docstring)
            if v.h2d is v.d2h:
                _, dones = v.d2h.use(
                    np.concatenate([dst1, src2]),
                    np.concatenate([recv_c1[dst1], x2s_run[src2]]),
                    pdur, allow_ties=True)
            else:
                _, h2d_dones = v.h2d.use(dst1, recv_c1[dst1], pdur,
                                         allow_ties=True)
                _, d2h_dones = v.d2h.use(src2, x2s_run[src2], pdur,
                                         allow_ties=True)
                dones = np.concatenate([h2d_dones, d2h_dones])
            x1r_done[dst1] = dones[:n1]
            x2_d2h = dones[n1:n1 + n2]

        # --- second kernel: waits both phase-1 events
        run_s = np.maximum(
            np.maximum(np.maximum(done_f, sub_s),
                       np.where(has_x1, x1s_done, _NEG_INF)),
            np.where(has_x1, x1r_done, _NEG_INF))
        _, done_s = v.gpu.use(L.ranks, run_s, dur_s)

        # --- phase-2 exchange: waits the first kernel
        x2r_run = np.maximum(np.maximum(np.where(has_x1, x1r_done, qrr),
                                        sub_x2r), done_f)
        x2s_done = np.full(P, _NEG_INF)
        x2r_done = np.full(P, _NEG_INF)
        raced = None
        if src2.size:
            if mode == "pinned":
                ts1_2 = x2_d2h + t.co
                tr1_2 = x2r_run[dst2] + t.co
                rate = None
            else:
                ts1_2 = ((x2s_run[src2] + t.map_overhead)
                         + t.mapped_latency) + t.co
                tr1_2 = ((x2r_run[dst2] + t.map_overhead)
                         + t.mapped_latency) + t.co
                rate = t.mapped_bw
            first = False
            if P % 2 == 0 and P >= 4:
                # rank P-1 skips this phase: replay its clFinishes, gosa
                # read and reduce isend now, and order that isend's wire
                # against the halo into its reduce parent's receive port
                R = P - 1
                hr = float(h[R])
                d_s = float(done_s[R])
                hr = d_s + t.so if d_s > hr else hr + t.co     # q0
                tail = float(x1s_done[R])
                hr = tail + t.so if tail > hr else hr + t.co   # qs
                tail = float(x1r_done[R])
                hr = tail + t.so if tail > hr else hr + t.co   # qr
                done_r, ts1_r, t2_r = _race_ahead(L, R, hr, d_s)
                i = int(np.nonzero(src2 == R - 2)[0][0])
                first = _reduce_isend_first(L, R, t2_r, float(ts1_2[i]),
                                            float(tr1_2[i]))
                if first:
                    pre_t = v.eager_wire_single(R, R - 1, ts1_r)
            send_c, recv_c = v.transfer(src2, dst2, ts1_2, tr1_2, plane,
                                        send_rate=rate, recv_rate=rate)
            if P % 2 == 0 and P >= 4:
                if not first:
                    pre_t = v.eager_wire_single(R, R - 1, ts1_r)
                raced = (R, done_r, pre_t)
            if mode == "pinned":
                x2s_done[src2] = send_c
                _, drained = v.h2d.use(dst2, recv_c, pdur)
                x2r_done[dst2] = drained
            else:
                x2s_done[src2] = send_c + t.map_overhead
                x2r_done[dst2] = recv_c + t.map_overhead

        ktime = (ktime + (done_f - run_f)) + (done_s - run_s)
        q0r = done_s
        qsr = np.where(has_x2, x2s_done, np.where(has_x1, x1s_done, qsr))
        qrr = np.where(has_x2, x2r_done, np.where(has_x1, x1r_done, qrr))

        # --- clFinish × 3 (Fig 6: the host only waits here)
        h = np.where(done_s > h, done_s + t.so, h + t.co)      # q0
        qs_tail = np.where(has_x2, x2s_done,
                           np.where(has_x1, x1s_done, _NEG_INF))
        h = np.where(qs_tail > h, qs_tail + t.so, h + t.co)    # qs
        qr_tail = np.where(has_x2, x2r_done,
                           np.where(has_x1, x1r_done, _NEG_INF))
        h = np.where(qr_tail > h, qr_tail + t.so, h + t.co)    # qr

        h, q0r = _gosa_and_allreduce(L, h, q0r, raced)
        s_prev = done_s
        x2s_prev = np.where(has_x2, x2s_done, _NEG_INF)
        x2r_prev = np.where(has_x2, x2r_done, _NEG_INF)

    t1 = v.barrier(h)
    v.commit(t1)
    return L.rows_out(t0, t1, ktime)


def _serial_rows(L: _Lanes) -> list[dict]:
    """Replay of :func:`serial_main`: everything blocks the host."""
    t, v, P = L.t, L.v, L.P
    has_x1, p1 = L.x1_masks()
    has_x2, p2 = L.x2_masks()
    dur_f = L.kdur(L.rows_first)
    dur_s = L.kdur(L.rows_second)
    plane = L.plane
    pdur = t.dma_duration(plane)

    entry = v.barrier(np.zeros(P, dtype=np.float64))
    t0 = entry
    h = entry.copy()
    qr = entry.copy()           # the single queue's ready time
    ktime = np.zeros(P, dtype=np.float64)

    def kernel_blocking(h, qr, ktime, dur):
        sub = h + t.co
        run = np.maximum(qr, sub)
        _, done = v.gpu.use(L.ranks, run, dur)
        h = np.where(done > sub, done + t.so, sub + t.co)
        return h, done, ktime + (done - run)

    def exchange_blocking(h, qr, has, partner, race=None):
        src = L.ranks[has]
        dst = partner[has]
        # blocking pinned read of the outgoing plane
        sub = h + t.co
        disp = np.maximum(qr, sub)
        _, d2h_done = v.d2h.use(src, disp[src], pdur)
        qr = qr.copy()
        qr[src] = d2h_done
        h = np.where(has, np.full(P, _NEG_INF), h)
        h[src] = d2h_done + t.so
        # sendrecv: isend, then irecv, then wait both (+ wake-up)
        ts1 = h + t.co
        tr1 = ts1 + t.co
        pre_t = None
        if race is not None:
            # order the raced rank's reduce isend against the halo into
            # its parent's receive port (see _race_ahead)
            R, ts1_r, t2_r = race
            first = _reduce_isend_first(L, R, t2_r, float(ts1[R - 2]),
                                        float(tr1[R - 1]))
            if first:
                pre_t = v.eager_wire_single(R, R - 1, ts1_r)
        send_c, recv_c = v.transfer(src, dst, ts1[src], tr1[dst], plane)
        if race is not None and pre_t is None:
            pre_t = v.eager_wire_single(R, R - 1, ts1_r)
        done = np.full(P, _NEG_INF)
        # pair each rank's posted receive with the envelope headed its
        # way: batch non-wildcard matching (recv i names source dst[i])
        done[src] = np.maximum(recv_c[match_arrays(dst, 0, src, 0)], send_c)
        h = np.where(has, done + t.so, h)
        # blocking pinned write of the received plane
        sub2 = h + t.co
        disp2 = np.maximum(qr, sub2)
        _, h2d_done = v.h2d.use(src, disp2[src], pdur)
        qr[src] = h2d_done
        h[src] = h2d_done + t.so
        return h, qr, pre_t

    for _ in range(L.cfg.iterations):
        hk, qrk, ktime = kernel_blocking(h, qr, ktime, dur_f)
        h, qr = hk, qrk
        if np.any(has_x1):
            hx, qx, _ = exchange_blocking(h, qr, has_x1, p1)
            h = np.where(has_x1, hx, h)
            qr = np.where(has_x1, qx, qr)
        hk, qrk, ktime = kernel_blocking(h, qr, ktime, dur_s)
        h, qr = hk, qrk
        raced = None
        if np.any(has_x2):
            race = None
            if P % 2 == 0 and P >= 4:
                # rank P-1 has no second exchange: its gosa read and
                # reduce isend race ahead of this phase's wire traffic
                R = P - 1
                done_r, ts1_r, t2_r = _race_ahead(L, R, float(h[R]),
                                                  float(qr[R]))
                race = (R, ts1_r, t2_r)
            hx, qx, pre_t = exchange_blocking(h, qr, has_x2, p2, race)
            if race is not None:
                raced = (R, done_r, pre_t)
            h = np.where(has_x2, hx, h)
            qr = np.where(has_x2, qx, qr)
        h, qr = _gosa_and_allreduce(L, h, qr, raced)

    t1 = v.barrier(h)
    v.commit(t1)
    return L.rows_out(t0, t1, ktime)


def vectorized_rows(system: SystemPreset, nodes: int, implementation: str,
                    config: HimenoConfig,
                    force_mode: Optional[str] = None,
                    force_block: Optional[int] = None
                    ) -> tuple[list[dict], Environment]:
    """Replay one Himeno run; returns ``(per-rank rows, environment)``.

    Raises :class:`EngineError` for anything the mesoscale model refuses
    (see module docstring); the driver decides whether to surface that
    or fall back.
    """
    if implementation not in VECTORIZED_IMPLEMENTATIONS:
        raise EngineError(
            f"no vectorized model for implementation {implementation!r}; "
            f"available: {VECTORIZED_IMPLEMENTATIONS}")
    L = _Lanes(system, nodes, config)
    if implementation == "serial":
        rows = _serial_rows(L)
    else:
        mode, block, base = TransferSelector(
            system.policy, force_mode=force_mode,
            force_block=force_block).choose(L.plane)
        rows = _clmpi_rows(L, mode, block, base)
    return rows, L.env
