"""Simulated GPU kernels for the Himeno benchmark.

The functional body *is* :func:`repro.apps.himeno.reference.jacobi_rows`
applied to the device buffer's NumPy view, so the simulated runs agree
bitwise with the dataflow reference.  The cost model charges the official
34 flops/cell.
"""

from __future__ import annotations

from repro.apps.himeno.config import FLOPS_PER_CELL
from repro.apps.himeno.reference import jacobi_rows
from repro.ocl.kernel import Kernel

__all__ = ["make_jacobi_kernel", "GOSA_BYTES"]

#: The per-rank gosa accumulator buffer: one float64.
GOSA_BYTES = 8


def make_jacobi_kernel(shape: tuple[int, int, int],
                       omega: float) -> Kernel:
    """Kernel updating interior rows ``[lo, hi)`` of a local slab.

    Args (at launch): ``(p_buf, gosa_buf, lo, hi)`` where ``p_buf`` holds
    a float32 slab of ``shape`` and ``gosa_buf`` a single float64 that the
    kernel accumulates into.
    """
    mi, mj, mk = shape

    def body(p_buf, gosa_buf, lo: int, hi: int) -> None:
        P = p_buf.view("f4", shape)
        part = jacobi_rows(P, lo, hi, omega)
        gosa_buf.view("f8")[0] += part

    def flops(p_buf, gosa_buf, lo: int, hi: int) -> float:
        return float(FLOPS_PER_CELL) * (hi - lo) * (mj - 2) * (mk - 2)

    def mem_bytes(p_buf, gosa_buf, lo: int, hi: int) -> float:
        # streaming estimate: read 3 i-planes' worth + write 1 per row
        return 4.0 * (hi - lo) * mj * mk * 4

    return Kernel(name="jacobi", body=body, flops=flops,
                  mem_bytes=mem_bytes)
