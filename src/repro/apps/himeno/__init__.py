"""The Himeno benchmark (§V.C / Fig 9).

A 3-D pressure-Poisson Jacobi solver with 1-D domain decomposition, each
local domain halved into an upper portion *A* and lower portion *B*
(Fig 3) so halo exchange can overlap computation: while one half
computes, the other half's halo is exchanged (Fig 2 / Fig 6).

Three implementations, exactly as evaluated in the paper:

* :func:`serial_main` — identical structure, every operation blocking.
* :func:`hand_optimized_main` — the host-managed two-queue overlap of
  [13] with pinned transfers.
* :func:`clmpi_main` — the Fig 6 rewrite: clMPI commands + events, host
  only calls ``clFinish`` at the end of each iteration.

All three produce **bit-identical** pressure fields (tested against the
pure-NumPy dataflow emulator in :mod:`repro.apps.himeno.reference`).
"""

from repro.apps.himeno.clmpi_impl import clmpi_main
from repro.apps.himeno.config import SIZES, HimenoConfig
from repro.apps.himeno.decomp import Partition
from repro.apps.himeno.driver import IMPLEMENTATIONS, HimenoResult, run_himeno
from repro.apps.himeno.gpu_aware_impl import gpu_aware_main
from repro.apps.himeno.hand_optimized import hand_optimized_main
from repro.apps.himeno.reference import (
    distributed_reference,
    init_pressure,
    jacobi_rows,
    run_reference,
)
from repro.apps.himeno.serial import serial_main
from repro.apps.himeno.twod import (
    Partition2D,
    clmpi_2d_main,
    reference_2d,
    run_himeno_2d,
)

__all__ = [
    "HimenoConfig",
    "SIZES",
    "init_pressure",
    "jacobi_rows",
    "run_reference",
    "distributed_reference",
    "Partition",
    "serial_main",
    "hand_optimized_main",
    "clmpi_main",
    "gpu_aware_main",
    "HimenoResult",
    "run_himeno",
    "IMPLEMENTATIONS",
    "Partition2D",
    "clmpi_2d_main",
    "run_himeno_2d",
    "reference_2d",
]
