"""Pure-NumPy references for the Himeno benchmark.

Two references:

* :func:`run_reference` — the textbook single-domain benchmark (full
  Jacobi sweep per iteration).  Used for convergence checks.
* :func:`distributed_reference` — a timing-free emulation of the *exact*
  dataflow of the distributed A/B-overlapped implementations: per-half
  in-place updates, phase-ordered halo exchange, parity-dependent phase
  order.  The simulated implementations must match it **bit for bit**.

The Himeno coefficient arrays are constant after initialization
(``a=(1,1,1,1/6)``, ``b=0``, ``c=1``, ``bnd=1``, ``wrk1=0``), so the
stencil reduces to the 6-neighbour form implemented in
:func:`jacobi_rows`; the cost model still charges the official 34
flops/cell (see :mod:`repro.apps.himeno.config`).
"""

from __future__ import annotations

import numpy as np

from repro.apps.himeno.decomp import Partition

__all__ = ["init_pressure", "jacobi_rows", "run_reference",
           "distributed_reference"]


def init_pressure(mi: int, mj: int, mk: int,
                  i_offset: int = 0, mi_global: int | None = None
                  ) -> np.ndarray:
    """Initial pressure field: ``p[i] = ((i)/(mi-1))**2`` along axis 0.

    ``i_offset``/``mi_global`` produce the slab of a decomposed global
    grid with the *global* i-index profile.
    """
    mi_global = mi if mi_global is None else mi_global
    gi = np.arange(i_offset, i_offset + mi, dtype=np.float64)
    profile = ((gi / (mi_global - 1)) ** 2).astype(np.float32)
    return np.broadcast_to(profile[:, None, None], (mi, mj, mk)).copy()


def jacobi_rows(P: np.ndarray, lo: int, hi: int,
                omega: float = 0.8) -> np.float64:
    """In-place Jacobi update of interior rows ``[lo, hi)`` of ``P``.

    Returns the partial ``gosa`` (sum of squared residuals) as float64.
    This exact function is also the functional body of the simulated GPU
    kernel, so reference and simulation share every floating-point
    operation (and therefore agree bitwise).
    """
    if not (1 <= lo and hi <= P.shape[0] - 1 and lo <= hi):
        raise ValueError(f"rows [{lo}, {hi}) outside interior of {P.shape}")
    if lo == hi:
        return np.float64(0.0)
    c = P[lo:hi, 1:-1, 1:-1]
    s0 = (P[lo + 1:hi + 1, 1:-1, 1:-1] + P[lo - 1:hi - 1, 1:-1, 1:-1]
          + P[lo:hi, 2:, 1:-1] + P[lo:hi, :-2, 1:-1]
          + P[lo:hi, 1:-1, 2:] + P[lo:hi, 1:-1, :-2])
    ss = s0 * np.float32(1.0 / 6.0) - c
    gosa = np.float64((ss.astype(np.float64) ** 2).sum())
    P[lo:hi, 1:-1, 1:-1] = c + np.float32(omega) * ss
    return gosa


def run_reference(mi: int, mj: int, mk: int, iterations: int,
                  omega: float = 0.8) -> tuple[np.ndarray, list[float]]:
    """Textbook single-domain run: full sweep per iteration.

    Returns ``(final pressure, per-iteration gosa)``.
    """
    P = init_pressure(mi, mj, mk)
    gosas = []
    for _ in range(iterations):
        gosas.append(float(jacobi_rows(P, 1, mi - 1, omega)))
    return P, gosas


def distributed_reference(num_ranks: int, mi: int, mj: int, mk: int,
                          iterations: int, omega: float = 0.8
                          ) -> tuple[list[np.ndarray], list[float]]:
    """Timing-free emulation of the distributed A/B dataflow.

    Phase structure per iteration (paper §III):

    * even rank: phase 1 = compute A ∥ exchange halo-of-B;
      phase 2 = compute B ∥ exchange halo-of-A.
    * odd rank: phases swapped.

    Messages carry the sender's row values *at send time*: phase-1
    messages are sent before the phase-1 compute touches them, phase-2
    messages after the phase-1 compute (matching the event dependencies
    of the simulated implementations).

    Returns ``(per-rank local arrays, per-iteration global gosa)``.
    """
    part = Partition(num_ranks, mi, mj, mk)
    local = [init_pressure(part.local_rows(r) + 2, mj, mk,
                           i_offset=part.row_start(r), mi_global=mi)
             for r in range(num_ranks)]
    gosas = []
    for _ in range(iterations):
        gosa_rank = [np.float64(0.0)] * num_ranks
        # ----- phase 1: record outgoing halo rows ------------------------
        msgs_up = {}    # r -> row sent to r+1 (its ghost_low)
        msgs_down = {}  # r -> row sent to r-1 (its ghost_high)
        for r in range(num_ranks):
            li = part.local_rows(r)
            if r % 2 == 0:
                if r + 1 < num_ranks:        # exchange halo-of-B
                    msgs_up[r] = local[r][li].copy()
            else:
                if r - 1 >= 0:               # exchange halo-of-A
                    msgs_down[r] = local[r][1].copy()
        # ----- phase 1: compute ------------------------------------------
        for r in range(num_ranks):
            li = part.local_rows(r)
            a_lo, a_hi, b_lo, b_hi = 1, li // 2 + 1, li // 2 + 1, li + 1
            if r % 2 == 0:
                gosa_rank[r] += jacobi_rows(local[r], a_lo, a_hi, omega)
            else:
                gosa_rank[r] += jacobi_rows(local[r], b_lo, b_hi, omega)
        # ----- phase 1: deliver -------------------------------------------
        for r, row in msgs_up.items():
            local[r + 1][0] = row            # odd (r+1) ghost_low
        for r, row in msgs_down.items():
            li = part.local_rows(r - 1)
            local[r - 1][li + 1] = row       # even (r-1) ghost_high
        # ----- phase 2: record outgoing halo rows -------------------------
        msgs_up.clear()
        msgs_down.clear()
        for r in range(num_ranks):
            li = part.local_rows(r)
            if r % 2 == 0:
                if r - 1 >= 0:               # exchange halo-of-A
                    msgs_down[r] = local[r][1].copy()
            else:
                if r + 1 < num_ranks:        # exchange halo-of-B
                    msgs_up[r] = local[r][li].copy()
        # ----- phase 2: compute --------------------------------------------
        for r in range(num_ranks):
            li = part.local_rows(r)
            a_lo, a_hi, b_lo, b_hi = 1, li // 2 + 1, li // 2 + 1, li + 1
            if r % 2 == 0:
                gosa_rank[r] += jacobi_rows(local[r], b_lo, b_hi, omega)
            else:
                gosa_rank[r] += jacobi_rows(local[r], a_lo, a_hi, omega)
        # ----- phase 2: deliver ----------------------------------------------
        for r, row in msgs_up.items():
            local[r + 1][0] = row
        for r, row in msgs_down.items():
            li = part.local_rows(r - 1)
            local[r - 1][li + 1] = row
        gosas.append(float(np.sum(gosa_rank)))
    return local, gosas
