"""Himeno experiment driver: run one (system, nodes, implementation)."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.apps.himeno.clmpi_impl import clmpi_main
from repro.apps.himeno.config import HimenoConfig
from repro.apps.himeno.gpu_aware_impl import gpu_aware_main
from repro.apps.himeno.hand_optimized import hand_optimized_main
from repro.apps.himeno.serial import serial_main
from repro.apps.himeno.vectorized import (
    VECTORIZED_IMPLEMENTATIONS,
    vectorized_rows,
)
from repro.errors import ConfigurationError
from repro.launcher import ClusterApp
from repro.sim import ENGINES, EngineError
from repro.systems.presets import SystemPreset

__all__ = ["IMPLEMENTATIONS", "HimenoResult", "run_himeno"]

IMPLEMENTATIONS: dict[str, Callable] = {
    "serial": serial_main,
    "hand-optimized": hand_optimized_main,
    "gpu-aware-mpi": gpu_aware_main,
    "clmpi": clmpi_main,
}


@dataclass
class HimenoResult:
    """Outcome of one Himeno run."""

    system: str
    implementation: str
    nodes: int
    config: HimenoConfig
    #: virtual wall time of the timed region (s)
    time: float
    #: sustained performance by the official FLOP count
    gflops: float
    #: final-iteration global residual
    gosa: float
    gosa_per_iter: list[float]
    #: per-rank GPU busy time (s)
    kernel_times: list[float]
    #: collected local slabs (functional runs with collect=True)
    p_locals: list[Optional[np.ndarray]] = field(default_factory=list)

    @property
    def comp_comm_ratio(self) -> float:
        """Computation/communication-time ratio (paper's Fig 9a metric).

        Meaningful for the serial implementation, where everything that
        is not GPU compute is exposed communication/serialization.
        """
        comp = float(np.mean(self.kernel_times))
        comm = self.time - comp
        return comp / comm if comm > 0 else float("inf")


def run_himeno(system: SystemPreset, nodes: int, implementation: str,
               config: Optional[HimenoConfig] = None,
               functional: bool = True, collect: bool = False,
               force_mode: Optional[str] = None,
               force_block: Optional[int] = None,
               trace: bool = False, faults=None,
               metrics: bool = False,
               engine: str = "coroutine",
               strict_engine: bool = False) -> HimenoResult:
    """Run the Himeno benchmark once and return its result.

    Parameters mirror the paper's setup: ``implementation`` is one of
    ``'serial'``, ``'hand-optimized'``, ``'clmpi'``; ``functional=False``
    runs timing-only (identical virtual clock, no NumPy work) for
    paper-scale sweeps.  ``metrics=True`` attaches a
    :class:`~repro.obs.MetricsRegistry` (exposed as ``result.metrics``).

    ``engine='vectorized'`` replays the run on the mesoscale engine
    (timing-only; byte-identical results, milliseconds at 1k+ ranks).
    It refuses functional runs and falls back to the coroutine engine
    with a ``RuntimeWarning`` naming the specific feature it does not
    model (tracing, faults, metrics, the hand-optimized / gpu-aware
    implementations, pipelined planes, odd-rank mapped layouts);
    ``strict_engine=True`` raises :class:`~repro.sim.EngineError`
    instead of falling back.
    """
    try:
        main = IMPLEMENTATIONS[implementation]
    except KeyError:
        raise ConfigurationError(
            f"unknown implementation {implementation!r}; choose from "
            f"{sorted(IMPLEMENTATIONS)}") from None
    config = config or HimenoConfig()
    if engine not in ENGINES:
        raise EngineError(
            f"unknown engine {engine!r}; choose from {ENGINES}")
    if engine == "vectorized":
        if functional:
            raise EngineError(
                "engine='vectorized' is timing-only; functional Himeno "
                "runs need engine='coroutine' (pass functional=False "
                "for mesoscale sweeps)")
        unsupported = []
        if trace:
            unsupported.append("trace")
        if faults is not None:
            unsupported.append("faults")
        if metrics:
            unsupported.append("metrics")
        if implementation not in VECTORIZED_IMPLEMENTATIONS:
            unsupported.append(f"implementation={implementation!r}")
        if force_mode == "pipelined":
            unsupported.append("force_mode='pipelined'")
        if unsupported:
            if strict_engine:
                raise EngineError(
                    "engine='vectorized' does not support "
                    f"{', '.join(unsupported)} (strict_engine=True "
                    "forbids the coroutine fallback)")
            warnings.warn(
                "engine='vectorized' does not support "
                f"{', '.join(unsupported)}; falling back to the "
                "coroutine engine", RuntimeWarning, stacklevel=2)
        else:
            try:
                results, env = vectorized_rows(
                    system, nodes, implementation, config,
                    force_mode=force_mode, force_block=force_block)
            except EngineError as exc:
                # e.g. odd-rank mapped-mode clmpi — the refusal names it
                if strict_engine:
                    raise
                warnings.warn(
                    f"engine='vectorized' refused this run ({exc}); "
                    "falling back to the coroutine engine",
                    RuntimeWarning, stacklevel=2)
            else:
                return _finish(system, nodes, implementation, config,
                               results, tracer=None, metrics_reg=None,
                               env=env)
    app = ClusterApp(system, nodes, functional=functional,
                     force_mode=force_mode, force_block=force_block,
                     trace=trace, faults=faults, metrics=metrics)
    results = app.run(main, config, collect)
    return _finish(system, nodes, implementation, config, results,
                   tracer=app.tracer, metrics_reg=app.metrics,
                   env=app.env)


def _finish(system: SystemPreset, nodes: int, implementation: str,
            config: HimenoConfig, results: list[dict], *, tracer,
            metrics_reg, env) -> HimenoResult:
    """Shape per-rank result rows into a :class:`HimenoResult`."""
    time = max(r["time"] for r in results)
    gosa_series = results[0]["gosa_per_iter"]
    res = HimenoResult(
        system=system.name,
        implementation=implementation,
        nodes=nodes,
        config=config,
        time=time,
        gflops=config.total_flops / time / 1e9,
        gosa=results[0]["gosa"],
        gosa_per_iter=gosa_series,
        kernel_times=[r["kernel_time"] for r in results],
        p_locals=[r["p_local"] for r in results],
    )
    res.tracer = tracer  # type: ignore[attr-defined]
    res.metrics = metrics_reg  # type: ignore[attr-defined]
    res.env = env  # type: ignore[attr-defined]
    return res
