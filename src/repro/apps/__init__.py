"""The paper's evaluation applications.

* :mod:`repro.apps.pingpong` — point-to-point sustained-bandwidth
  microbenchmark (§V.B, Fig 8).
* :mod:`repro.apps.himeno` — the Himeno benchmark in the three
  implementations of §V.C (serial / hand-optimized / clMPI, Fig 9).
* :mod:`repro.apps.nanopowder` — the nanopowder growth simulation of
  §V.D (baseline vs clMPI, Fig 10).
"""

__all__ = ["pingpong", "himeno", "nanopowder"]
