"""Collective-heavy load scenario: staggered compute + allreduce rounds.

The Himeno runs exercise the collectives once per iteration, drowned in
halo traffic; this scenario inverts the mix.  Every round each rank
"computes" for a rank-proportional stagger (a deterministic skew, the
worst case for a latency-bound reduction tree), then the whole job
allreduces one 8-byte residual and synchronizes on a barrier — the
shape of an elliptic solver's convergence loop, and the workload where
collective latency dominates end-to-end time.

The scenario exists primarily as an engine-equivalence probe: the
staggered entries drive the binomial reduce tree through its
heterogeneous-arrival paths (every child reaches its parent's NIC at a
distinct time), which is exactly the regime the mesoscale engine's
:meth:`~repro.sim.vectorized.VectorEngine.reduce_small` drain has to
replay request-by-request.  Both engines produce byte-identical rows
at any rank count (see ``tests/sim/test_engine_equivalence.py``).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.launcher import ClusterApp, RankContext
from repro.systems.presets import SystemPreset

__all__ = ["collective_load", "collective_load_point",
           "collective_load_specs"]

#: default per-rank stagger step (50 µs: comparable to one GbE hop, so
#: the skew neither vanishes nor swamps the tree latency)
DEFAULT_JITTER = 50e-6


def _collective_main(ctx: RankContext, rounds: int,
                     jitter: float) -> Generator[Any, Any, float]:
    """Rank coroutine: stagger, allreduce 8 bytes, barrier — per round."""
    acc = np.zeros(1, dtype=np.float64)
    out = np.zeros(1, dtype=np.float64)
    yield from ctx.comm.barrier()
    t0 = ctx.env.now
    for _ in range(rounds):
        if jitter > 0.0 and ctx.rank:
            yield ctx.env.timeout(ctx.rank * jitter)
        yield from ctx.comm.allreduce(acc, out)
        yield from ctx.comm.barrier()
    return ctx.env.now - t0


def _vectorized_per_rank(system: SystemPreset, ranks: int, rounds: int,
                         jitter: float) -> list[float]:
    """Mesoscale replay of :func:`_collective_main`, all ranks at once."""
    from repro.sim import Environment

    env = Environment(engine="vectorized")
    v = env.vector.bind(system, ranks)
    entry = v.barrier(np.zeros(ranks, dtype=np.float64))
    t0 = entry.copy()
    t = entry
    skew = np.arange(ranks, dtype=np.float64) * jitter
    for _ in range(rounds):
        if jitter > 0.0:
            t = t + skew
        t = v.allreduce_small(t, 8.0)
        t = v.barrier(t)
    v.commit(t)
    return [float(x) for x in t - t0]


def collective_load(system: SystemPreset, ranks: int, rounds: int = 8,
                    jitter: float = DEFAULT_JITTER,
                    engine: str = "coroutine") -> dict:
    """Run the scenario; returns an engine-independent row dict.

    The row carries per-rank virtual seconds (``per_rank``) and their
    max (``seconds``) — the full vector, so the equivalence gate diffs
    every lane, not just the critical path.
    """
    if ranks < 2:
        raise ConfigurationError("collective_load needs at least 2 ranks")
    if rounds < 1:
        raise ConfigurationError("rounds must be positive")
    if engine == "vectorized":
        per_rank = _vectorized_per_rank(system, ranks, rounds, jitter)
    else:
        from repro.sim import ENGINES, EngineError

        if engine not in ENGINES:
            raise EngineError(
                f"unknown engine {engine!r}; choose from {ENGINES}")
        app = ClusterApp(system, ranks, functional=False)
        per_rank = app.run(_collective_main, rounds, jitter)
    return {"system": system.name, "ranks": ranks, "rounds": rounds,
            "jitter": jitter, "seconds": max(per_rank),
            "per_rank": per_rank}


def collective_load_point(spec: dict) -> dict:
    """Sweep worker: dict-in/dict-out (process-pool and cache safe)."""
    from repro.systems import get_system

    ranks = spec["ranks"]
    system = get_system(spec["system"])
    if ranks > system.cluster.max_nodes:
        system = get_system(spec["system"], max_nodes=ranks)
    return collective_load(system, ranks,
                           rounds=spec.get("rounds", 8),
                           jitter=spec.get("jitter", DEFAULT_JITTER),
                           engine=spec.get("engine", "coroutine"))


def collective_load_specs(system: str, rank_counts: list[int],
                          rounds: int = 8,
                          jitter: float = DEFAULT_JITTER,
                          engine: str = "coroutine") -> list[dict]:
    """Spec dicts for a rank-count sweep, in canonical order."""
    specs = [{"system": system, "ranks": r, "rounds": rounds,
              "jitter": jitter} for r in rank_counts]
    if engine != "coroutine":
        for spec in specs:
            spec["engine"] = engine
    return specs
