"""Deterministic discrete-event simulation (DES) core.

Everything in :mod:`repro` runs on this engine.  It plays the role that the
real operating system, POSIX threads, and wall-clock time played in the
paper's testbeds: simulated "host threads" are generator-based coroutines
scheduled on a virtual clock, so blocking a host thread to serialize MPI
and OpenCL operations (the exact pathology the paper attacks) is modelled
precisely and deterministically.

Coroutine convention
--------------------
A *simulation coroutine* is a generator that yields :class:`Event`
instances (or uses ``yield from`` to delegate to sub-coroutines).  A
coroutine becomes a schedulable :class:`Process` via
:meth:`Environment.process`.  ``yield event`` suspends the coroutine until
the event fires; the ``yield`` expression evaluates to the event's value.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(1.5)
...     return env.now
>>> p = env.process(hello(env))
>>> env.run()
>>> p.value
1.5
"""

from repro.sim.core import (
    ENGINES,
    HIGH,
    LOW,
    NORMAL,
    AllOf,
    AnyOf,
    EngineError,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import PriorityStore, Resource, Store
from repro.sim.trace import Tracer, TraceRecord

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "EngineError",
    "ENGINES",
    "Resource",
    "Store",
    "PriorityStore",
    "TraceRecord",
    "Tracer",
    "NORMAL",
    "HIGH",
    "LOW",
]
