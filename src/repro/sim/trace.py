"""Timeline tracing.

The paper's Figure 4 is a set of host/GPU/network timelines showing which
activities overlap.  The :class:`Tracer` collects interval records from the
hardware and runtime layers so the harness can regenerate those timelines
(as ASCII Gantt charts) and so tests can assert overlap properties
("the second-stage communication starts before the first-stage computation
ends", etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterable, Mapping, Optional

__all__ = ["TraceRecord", "Tracer"]

#: Shared immutable mapping used for records without metadata, so the
#: hot ``record()`` path does not allocate a fresh dict per record.
_EMPTY_META: Mapping = MappingProxyType({})


@dataclass(frozen=True)
class TraceRecord:
    """One closed interval of activity on a named lane.

    Attributes
    ----------
    lane:
        Timeline lane, e.g. ``"rank0.host"``, ``"rank0.gpu"``,
        ``"rank0.nic.tx"``.
    label:
        Human-readable activity name (``"jacobi_A"``, ``"halo send"``).
    start, end:
        Virtual-time interval bounds in seconds.
    category:
        Coarse class used for filtering: ``compute`` / ``d2h`` / ``h2d`` /
        ``net`` / ``host`` / ``sync``.
    meta:
        Free-form extras (message size, peer rank, ...).
    flow:
        Causal-chain id linking records across lanes (0 = unlinked).
        All stages of one logical transfer (d2h -> net -> h2d, or an
        MPI send -> recv pair) share a flow id; the exporter turns the
        chain into Chrome/Perfetto flow arrows and the critical-path
        analyzer follows it across lanes.
    span:
        Unique per-tracer record id (1-based, insertion order).
    """

    lane: str
    label: str
    start: float
    end: float
    category: str = "other"
    meta: Mapping = field(default_factory=dict, compare=False)
    flow: int = 0
    span: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "TraceRecord") -> bool:
        """True if the two intervals share a positive-length overlap."""
        return min(self.end, other.end) > max(self.start, other.start)


class Tracer:
    """Append-only collection of :class:`TraceRecord`.

    Attach one to an :class:`~repro.sim.Environment` (``env.tracer``) and
    hardware layers will record their busy intervals.  Disabled lanes cost
    nothing: callers check ``tracer is not None`` before recording.
    """

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []
        self._next_span = 0
        self._next_flow = 0

    def new_flow(self) -> int:
        """Allocate a fresh nonzero flow id for a causal chain."""
        self._next_flow += 1
        return self._next_flow

    def record(self, lane: str, label: str, start: float, end: float,
               category: str = "other", flow: int = 0,
               **meta) -> TraceRecord:
        """Append a record and return it."""
        self._next_span += 1
        rec = TraceRecord(lane, label, start, end, category,
                          meta if meta else _EMPTY_META, flow,
                          self._next_span)
        self.records.append(rec)
        return rec

    # -- queries -------------------------------------------------------------
    def lanes(self) -> list[str]:
        """Sorted set of lane names seen so far."""
        return sorted({r.lane for r in self.records})

    def on_lane(self, lane: str) -> list[TraceRecord]:
        """Records for one lane, in start order."""
        return sorted((r for r in self.records if r.lane == lane),
                      key=lambda r: (r.start, r.end))

    def by_category(self, category: str) -> list[TraceRecord]:
        """Records of one category, in start order."""
        return sorted((r for r in self.records if r.category == category),
                      key=lambda r: (r.start, r.end))

    def busy_time(self, lane: str) -> float:
        """Total busy (union) time on a lane, merging overlaps."""
        total = 0.0
        last_end = float("-inf")
        for rec in self.on_lane(lane):
            if rec.start >= last_end:
                total += rec.duration
                last_end = rec.end
            elif rec.end > last_end:
                total += rec.end - last_end
                last_end = rec.end
        return total

    def overlap_time(self, cat_a: str, cat_b: str) -> float:
        """Total time during which categories a and b are both active."""
        ints_a = _merge(sorted((r.start, r.end) for r in self.by_category(cat_a)))
        ints_b = _merge(sorted((r.start, r.end) for r in self.by_category(cat_b)))
        total, i, j = 0.0, 0, 0
        while i < len(ints_a) and j < len(ints_b):
            lo = max(ints_a[i][0], ints_b[j][0])
            hi = min(ints_a[i][1], ints_b[j][1])
            if hi > lo:
                total += hi - lo
            if ints_a[i][1] < ints_b[j][1]:
                i += 1
            else:
                j += 1
        return total

    def span(self) -> tuple[float, float]:
        """(earliest start, latest end) across all records."""
        if not self.records:
            return (0.0, 0.0)
        return (min(r.start for r in self.records),
                max(r.end for r in self.records))

    # -- rendering -------------------------------------------------------------
    def render_gantt(self, width: int = 78,
                     lanes: Optional[Iterable[str]] = None) -> str:
        """ASCII Gantt chart of the recorded intervals (Fig 4 style)."""
        lanes = list(lanes) if lanes is not None else self.lanes()
        lo, hi = self.span()
        if hi <= lo:
            return "(empty trace)"
        scale = width / (hi - lo)
        name_w = max((len(ln) for ln in lanes), default=4)
        out = []
        for lane in lanes:
            row = [" "] * width
            for rec in self.on_lane(lane):
                a = int((rec.start - lo) * scale)
                b = max(a + 1, int((rec.end - lo) * scale))
                ch = _CATEGORY_GLYPH.get(rec.category, "#")
                for k in range(a, min(b, width)):
                    row[k] = ch
            out.append(f"{lane:<{name_w}} |{''.join(row)}|")
        legend = "  ".join(f"{g}={c}" for c, g in _CATEGORY_GLYPH.items())
        span = f"[{lo * 1e3:.3f} ms .. {hi * 1e3:.3f} ms]"
        out.append(f"{'':<{name_w}}  {span}  {legend}")
        return "\n".join(out)


    def flows(self) -> dict[int, list[TraceRecord]]:
        """Records grouped by nonzero flow id, each chain in causal
        (start, end, span) order, keyed in ascending flow-id order."""
        chains: dict[int, list[TraceRecord]] = {}
        for rec in self.records:
            if rec.flow:
                chains.setdefault(rec.flow, []).append(rec)
        return {fid: sorted(chains[fid],
                            key=lambda r: (r.start, r.end, r.span))
                for fid in sorted(chains)}

    def to_chrome_trace(self) -> list[dict]:
        """Export as Chrome-tracing events (load in ``chrome://tracing``
        or Perfetto).  Lanes become threads; virtual seconds become
        microseconds.  Causal chains (nonzero ``flow`` shared by two or
        more records) are emitted as flow events (``ph`` ``s``/``t``/
        ``f``) so the viewer draws arrows between the linked slices."""
        lanes = self.lanes()
        tid = {lane: i for i, lane in enumerate(lanes)}
        events: list[dict] = [
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": i,
             "args": {"name": lane}}
            for lane, i in tid.items()
        ]
        for rec in self.records:
            args = {str(k): v for k, v in rec.meta.items()}
            args["span"] = rec.span
            if rec.flow:
                args["flow"] = rec.flow
            events.append({
                "name": rec.label,
                "cat": rec.category,
                "ph": "X",
                "pid": 0,
                "tid": tid[rec.lane],
                "ts": rec.start * 1e6,
                "dur": rec.duration * 1e6,
                "args": args,
            })
        for fid, chain in self.flows().items():
            if len(chain) < 2:
                continue
            for i, rec in enumerate(chain):
                ev = {
                    "name": f"flow{fid}",
                    "cat": "flow",
                    "ph": "s" if i == 0 else (
                        "f" if i == len(chain) - 1 else "t"),
                    "id": fid,
                    "pid": 0,
                    "tid": tid[rec.lane],
                    "ts": rec.start * 1e6,
                }
                if ev["ph"] == "f":
                    ev["bp"] = "e"
                events.append(ev)
        return events

    def save_chrome_trace(self, path) -> None:
        """Write :meth:`to_chrome_trace` output as a JSON file."""
        import json

        with open(path, "w") as fh:
            json.dump({"traceEvents": self.to_chrome_trace()}, fh)


_CATEGORY_GLYPH = {
    "compute": "#",
    "d2h": "v",
    "h2d": "^",
    "net": "=",
    "host": ".",
    "sync": "x",
}


def _merge(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    merged: list[tuple[float, float]] = []
    for lo, hi in intervals:
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged
