"""Timeline tracing.

The paper's Figure 4 is a set of host/GPU/network timelines showing which
activities overlap.  The :class:`Tracer` collects interval records from the
hardware and runtime layers so the harness can regenerate those timelines
(as ASCII Gantt charts) and so tests can assert overlap properties
("the second-stage communication starts before the first-stage computation
ends", etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One closed interval of activity on a named lane.

    Attributes
    ----------
    lane:
        Timeline lane, e.g. ``"rank0.host"``, ``"rank0.gpu"``,
        ``"rank0.nic.tx"``.
    label:
        Human-readable activity name (``"jacobi_A"``, ``"halo send"``).
    start, end:
        Virtual-time interval bounds in seconds.
    category:
        Coarse class used for filtering: ``compute`` / ``d2h`` / ``h2d`` /
        ``net`` / ``host`` / ``sync``.
    meta:
        Free-form extras (message size, peer rank, ...).
    """

    lane: str
    label: str
    start: float
    end: float
    category: str = "other"
    meta: dict = field(default_factory=dict, compare=False)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "TraceRecord") -> bool:
        """True if the two intervals share a positive-length overlap."""
        return min(self.end, other.end) > max(self.start, other.start)


class Tracer:
    """Append-only collection of :class:`TraceRecord`.

    Attach one to an :class:`~repro.sim.Environment` (``env.tracer``) and
    hardware layers will record their busy intervals.  Disabled lanes cost
    nothing: callers check ``tracer is not None`` before recording.
    """

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []

    def record(self, lane: str, label: str, start: float, end: float,
               category: str = "other", **meta) -> TraceRecord:
        """Append a record and return it."""
        rec = TraceRecord(lane, label, start, end, category, meta)
        self.records.append(rec)
        return rec

    # -- queries -------------------------------------------------------------
    def lanes(self) -> list[str]:
        """Sorted set of lane names seen so far."""
        return sorted({r.lane for r in self.records})

    def on_lane(self, lane: str) -> list[TraceRecord]:
        """Records for one lane, in start order."""
        return sorted((r for r in self.records if r.lane == lane),
                      key=lambda r: (r.start, r.end))

    def by_category(self, category: str) -> list[TraceRecord]:
        """Records of one category, in start order."""
        return sorted((r for r in self.records if r.category == category),
                      key=lambda r: (r.start, r.end))

    def busy_time(self, lane: str) -> float:
        """Total busy (union) time on a lane, merging overlaps."""
        total = 0.0
        last_end = float("-inf")
        for rec in self.on_lane(lane):
            if rec.start >= last_end:
                total += rec.duration
                last_end = rec.end
            elif rec.end > last_end:
                total += rec.end - last_end
                last_end = rec.end
        return total

    def overlap_time(self, cat_a: str, cat_b: str) -> float:
        """Total time during which categories a and b are both active."""
        ints_a = _merge(sorted((r.start, r.end) for r in self.by_category(cat_a)))
        ints_b = _merge(sorted((r.start, r.end) for r in self.by_category(cat_b)))
        total, i, j = 0.0, 0, 0
        while i < len(ints_a) and j < len(ints_b):
            lo = max(ints_a[i][0], ints_b[j][0])
            hi = min(ints_a[i][1], ints_b[j][1])
            if hi > lo:
                total += hi - lo
            if ints_a[i][1] < ints_b[j][1]:
                i += 1
            else:
                j += 1
        return total

    def span(self) -> tuple[float, float]:
        """(earliest start, latest end) across all records."""
        if not self.records:
            return (0.0, 0.0)
        return (min(r.start for r in self.records),
                max(r.end for r in self.records))

    # -- rendering -------------------------------------------------------------
    def render_gantt(self, width: int = 78,
                     lanes: Optional[Iterable[str]] = None) -> str:
        """ASCII Gantt chart of the recorded intervals (Fig 4 style)."""
        lanes = list(lanes) if lanes is not None else self.lanes()
        lo, hi = self.span()
        if hi <= lo:
            return "(empty trace)"
        scale = width / (hi - lo)
        name_w = max((len(ln) for ln in lanes), default=4)
        out = []
        for lane in lanes:
            row = [" "] * width
            for rec in self.on_lane(lane):
                a = int((rec.start - lo) * scale)
                b = max(a + 1, int((rec.end - lo) * scale))
                ch = _CATEGORY_GLYPH.get(rec.category, "#")
                for k in range(a, min(b, width)):
                    row[k] = ch
            out.append(f"{lane:<{name_w}} |{''.join(row)}|")
        legend = "  ".join(f"{g}={c}" for c, g in _CATEGORY_GLYPH.items())
        span = f"[{lo * 1e3:.3f} ms .. {hi * 1e3:.3f} ms]"
        out.append(f"{'':<{name_w}}  {span}  {legend}")
        return "\n".join(out)


    def to_chrome_trace(self) -> list[dict]:
        """Export as Chrome-tracing events (load in ``chrome://tracing``
        or Perfetto).  Lanes become threads; virtual seconds become
        microseconds."""
        lanes = self.lanes()
        tid = {lane: i for i, lane in enumerate(lanes)}
        events: list[dict] = [
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": i,
             "args": {"name": lane}}
            for lane, i in tid.items()
        ]
        for rec in self.records:
            events.append({
                "name": rec.label,
                "cat": rec.category,
                "ph": "X",
                "pid": 0,
                "tid": tid[rec.lane],
                "ts": rec.start * 1e6,
                "dur": rec.duration * 1e6,
                "args": {str(k): v for k, v in rec.meta.items()},
            })
        return events

    def save_chrome_trace(self, path) -> None:
        """Write :meth:`to_chrome_trace` output as a JSON file."""
        import json

        with open(path, "w") as fh:
            json.dump({"traceEvents": self.to_chrome_trace()}, fh)


_CATEGORY_GLYPH = {
    "compute": "#",
    "d2h": "v",
    "h2d": "^",
    "net": "=",
    "host": ".",
    "sync": "x",
}


def _merge(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    merged: list[tuple[float, float]] = []
    for lo, hi in intervals:
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged
