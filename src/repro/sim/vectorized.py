"""NumPy-vectorized timing-only execution engine (the *mesoscale* engine).

The coroutine engine (:mod:`repro.sim.core`) pays one generator frame and
several heap events per simulated action; at 1000+ ranks a single sweep
point costs millions of events.  This module is the second execution
engine behind the :class:`~repro.sim.Environment` facade
(``Environment(engine="vectorized")``): *rank-virtualized* timing models
replay the exact arithmetic the coroutine layers would perform — as
elementwise float64 array operations over all ranks at once — without
instantiating a single coroutine.

Why the results are **byte-identical** and not merely close: every timing
rule in the simulator bottoms out in IEEE-754 double adds, divides, and
maxes (``docs/performance.md``: the cross-engine determinism invariant).
NumPy float64 elementwise ops are the same IEEE operations in the same
association order, so replaying a rank's chain ``t = (t + a) + b`` as a
lane of an array produces bit-for-bit the float the coroutine produced.
The primitives here encode those chains once:

* :class:`FifoPorts` — batched service of capacity-1 FIFO resources (NIC
  tx/rx ports, PCIe DMA engines, GPU compute): ``grant = max(request,
  free)``, with an explicit :class:`~repro.sim.EngineError` refusal when
  a batch contains an arbitration tie the ``(time, priority, sequence)``
  order of the coroutine heap would have resolved arbitrarily.
* :class:`VectorEngine` — the per-environment facade: wire transfers
  (eager / rendezvous exactly as :mod:`repro.mpi.comm` models them),
  dissemination barriers, binomial reduce/bcast, PCIe link service, and
  a bucketed :class:`BucketCalendar` for homogeneous event lanes.

What the vectorized engine deliberately does **not** support (it refuses
with :class:`~repro.sim.EngineError` or the caller falls back to the
coroutine engine with a warning): functional (payload-moving) kernels,
schedule-policy exploration, per-event monitor hooks, fault injection,
and tracing — all of these need the per-event coroutine substrate.
"""

from __future__ import annotations

import math
from typing import Any, Optional

import numpy as np

from repro.sim.core import EngineError

__all__ = ["VectorEngine", "FifoPorts", "BucketCalendar", "Timings"]

_NEG_INF = float("-inf")


class Timings:
    """Scalar timing constants of one :class:`SystemPreset`, unpacked.

    One attribute per constant the replay formulas use, so model code
    reads ``v.co`` instead of chasing the preset's nested dataclasses.
    The cluster is homogeneous (every node shares one NodeSpec), which is
    what lets one scalar serve all lanes.
    """

    def __init__(self, preset) -> None:
        cluster = preset.cluster
        node = cluster.node
        host, gpu, pcie = node.host, node.gpu, node.pcie
        nic = cluster.fabric.nic
        self.preset = preset
        #: host API-call overhead (every enqueue/isend/irecv)
        self.co = float(host.call_overhead)
        #: host sync wake-up (every blocking wait that actually blocked)
        self.so = float(host.sync_overhead)
        #: single-thread host memcpy bandwidth (eager staging copies)
        self.mbw = float(host.memcpy_bandwidth)
        self.nic_bw = float(nic.bandwidth)
        self.nic_lat = float(nic.latency)
        self.pmo = float(nic.per_message_overhead)
        self.switch_lat = float(cluster.fabric.switch_latency)
        self.loopback_bw = float(cluster.fabric.loopback_bandwidth)
        self.eager_threshold = int(preset.mpi_eager_threshold)
        self.pinned_bw = float(pcie.pinned_bandwidth)
        self.pageable_bw = float(pcie.pageable_bandwidth)
        self.mapped_bw = float(pcie.mapped_bandwidth)
        self.copy_latency = float(pcie.copy_latency)
        self.map_overhead = float(pcie.map_overhead)
        self.mapped_latency = float(pcie.mapped_latency)
        self.copy_engines = int(gpu.copy_engines)
        self.gpu_launch = float(gpu.launch_overhead)
        self.gpu_gflops = float(gpu.sustained_gflops)
        self.gpu_mem_bw = float(gpu.mem_bandwidth)

    def kernel_duration(self, flops, mem_bytes):
        """Replay of :meth:`GpuSpec.kernel_time` (elementwise)."""
        return self.gpu_launch + np.maximum(
            flops / (self.gpu_gflops * 1e9), mem_bytes / self.gpu_mem_bw)

    def dma_duration(self, nbytes, pinned: bool = True):
        """Replay of :meth:`LinkSpec.time` for one PCIe copy."""
        if not pinned:
            # driver bounce buffers: the coroutine engine pushes the
            # scaled byte count through the pinned-rate link
            nbytes = np.floor(nbytes * (self.pinned_bw / self.pageable_bw))
        return self.copy_latency + nbytes / self.pinned_bw


class FifoPorts:
    """A batch of capacity-1 FIFO resources serviced with array math.

    Mirrors :class:`repro.sim.resources.Resource` (capacity 1): a request
    at time ``r`` on a port free at ``f`` is granted at ``max(r, f)``;
    the port stays busy until the caller-computed ``done`` time.  FIFO
    order *is* request-time order — the coroutine heap guarantees that —
    so a batch whose request times cannot be totally ordered per port
    (two equal request times, or a request earlier than one already
    serviced) is an arbitration the ``(time, priority, sequence)``
    tie-break would resolve arbitrarily.  We refuse such batches with
    :class:`EngineError` instead of guessing (the caller reruns on the
    coroutine engine); this is the engine's graceful-degradation edge.
    """

    def __init__(self, n: int, what: str = "port"):
        self.free = np.zeros(n, dtype=np.float64)
        self.last_req = np.full(n, _NEG_INF, dtype=np.float64)
        self.what = what

    def use(self, idx, req, dur, allow_ties: bool = False):
        """Service one batch; returns ``(grant, done)`` in input order.

        ``idx`` are port indices (duplicates allowed — chained in request
        order), ``req`` request times, ``dur`` busy durations charged
        from the grant.

        ``allow_ties=True`` declares that the *caller* knows the
        coroutine engine's resolution of equal-time requests and has
        ordered the batch accordingly: equal ``(port, req)`` entries are
        chained in input order (``np.lexsort`` is stable), and a request
        equal to an already-serviced one loses to it.  Callers may only
        pass it where the scheduler's hop count provably orders the tie
        (see the himeno model's shared-DMA note); everywhere else ties
        are refused.
        """
        idx = np.atleast_1d(np.asarray(idx, dtype=np.intp))
        req = np.atleast_1d(np.asarray(req, dtype=np.float64))
        dur = np.broadcast_to(np.asarray(dur, dtype=np.float64), req.shape)
        order = np.lexsort((req, idx))
        si, sr = idx[order], req[order]
        sd = dur[order]
        late = sr < self.last_req[si] if allow_ties \
            else sr <= self.last_req[si]
        if np.any(late):
            raise EngineError(
                f"vectorized {self.what} service out of FIFO order: a "
                "request is not strictly later than one already granted "
                "(same-time arbitration is a coroutine-engine tie)")
        same = si[1:] == si[:-1]
        if not allow_ties and np.any(same & (sr[1:] == sr[:-1])):
            raise EngineError(
                f"vectorized {self.what} service hit an equal-time "
                "arbitration tie within one batch; the coroutine engine "
                "resolves this by heap sequence — refusing to guess")
        grant = np.maximum(sr, self.free[si])
        done = grant + sd
        if np.any(same):
            # chain duplicates: grant_i = max(req_i, done_{i-1}); group
            # sizes are tiny, so fixed-point passes converge immediately
            while True:
                prop = np.maximum(grant[1:],
                                  np.where(same, done[:-1], grant[1:]))
                if np.array_equal(prop, grant[1:]):
                    break
                grant[1:] = prop
                done = grant + sd
        np.maximum.at(self.free, si, done)
        np.maximum.at(self.last_req, si, sr)
        out_g = np.empty_like(grant)
        out_d = np.empty_like(done)
        out_g[order] = grant
        out_d[order] = done
        return out_g, out_d


class BucketCalendar:
    """Bucketed calendar queue for homogeneous event lanes.

    Where the coroutine calendar pays one heap push/pop per event, lanes
    of *independent, homogeneous* events (the regime of timing-only
    sweeps) are scheduled as whole arrays into coarse time buckets and
    drained bucket-by-bucket — the classic calendar-queue structure with
    array payloads.  Used by :meth:`VectorEngine.tick_lanes` and
    available to batch models that need genuine event interleaving.
    """

    def __init__(self, width: float = 1e-3):
        if width <= 0:
            raise EngineError("bucket width must be positive")
        self.width = width
        self._buckets: dict[int, list[np.ndarray]] = {}
        self.scheduled = 0

    def schedule(self, times: np.ndarray) -> None:
        """Schedule one lane's event times (any order within the lane)."""
        times = np.asarray(times, dtype=np.float64)
        if times.size == 0:
            return
        keys = np.floor_divide(times, self.width).astype(np.int64)
        for k in np.unique(keys):
            self._buckets.setdefault(int(k), []).append(times[keys == k])
        self.scheduled += times.size

    def drain(self) -> tuple[int, float]:
        """Fire every bucket in time order; returns ``(count, last_t)``."""
        fired, last = 0, 0.0
        for k in sorted(self._buckets):
            for arr in self._buckets[k]:
                fired += arr.size
                if arr.size:
                    last = max(last, float(arr.max()))
        self._buckets.clear()
        return fired, last


class VectorEngine:
    """Array-lane engine bound to one vectorized :class:`Environment`.

    Create via ``Environment(engine="vectorized").vector``; call
    :meth:`bind` with a system preset and node count before using the
    hardware primitives.  All primitives take and return float64 arrays
    indexed by rank/lane and leave the environment clock untouched until
    :meth:`commit`.
    """

    def __init__(self, env):
        self.env = env
        self.t: Optional[Timings] = None
        self.nodes = 0
        self.events = 0  # batched "events" accounted (for benchmarks)

    # ------------------------------------------------------------------
    # binding
    # ------------------------------------------------------------------
    def bind(self, preset, num_nodes: int) -> "VectorEngine":
        """Instantiate port state for ``num_nodes`` nodes of ``preset``."""
        if num_nodes < 1:
            raise EngineError("vectorized engine needs at least one node")
        t = Timings(preset)
        self.t = t
        self.nodes = num_nodes
        self.tx = FifoPorts(num_nodes, "nic-tx")
        self.rx = FifoPorts(num_nodes, "nic-rx")
        self.gpu = FifoPorts(num_nodes, "gpu-compute")
        d2h = FifoPorts(num_nodes, "pcie-dma")
        self.d2h = d2h
        # one shared DMA engine serializes both directions (C1060);
        # two engines give each direction its own port lane (C2070)
        self.h2d = d2h if t.copy_engines == 1 else FifoPorts(num_nodes,
                                                             "pcie-dma")
        return self

    def _need_bind(self) -> Timings:
        if self.t is None:
            raise EngineError(
                "VectorEngine.bind(preset, num_nodes) must run before "
                "hardware primitives are used")
        return self.t

    # ------------------------------------------------------------------
    # wire (replay of repro.hardware.network.Fabric.send)
    # ------------------------------------------------------------------
    def wire(self, src, dst, req, nbytes, rate=None):
        """Arrival time of one message batch (≤1 tx/rx use per node).

        ``rate`` is the effective rate cap per message (NaN = none).
        Loopback messages bypass the ports, exactly as the fabric does.
        """
        t = self._need_bind()
        src = np.atleast_1d(np.asarray(src, dtype=np.intp))
        dst = np.atleast_1d(np.asarray(dst, dtype=np.intp))
        req = np.atleast_1d(np.asarray(req, dtype=np.float64))
        nb = np.broadcast_to(np.asarray(nbytes, dtype=np.float64), req.shape)
        rate = (np.full(req.shape, np.nan) if rate is None
                else np.broadcast_to(np.asarray(rate, dtype=np.float64),
                                     req.shape))
        arr = np.empty_like(req)
        loop = src == dst
        if np.any(loop):
            arr[loop] = req[loop] + nb[loop] / t.loopback_bw
        cross = ~loop
        if np.any(cross):
            cs, cd = src[cross], dst[cross]
            if (np.unique(cs).size != cs.size
                    or np.unique(cd).size != cd.size):
                raise EngineError(
                    "vectorized wire batch uses a NIC port twice; ports "
                    "are held until arrival, so callers must split such "
                    "batches into sequential rounds")
            tx_grant, _ = self.tx.use(src[cross], req[cross], 0.0)
            rx_grant, _ = self.rx.use(dst[cross], tx_grant, 0.0)
            bw = np.where(np.isnan(rate[cross]) | (rate[cross] >= t.nic_bw),
                          t.nic_bw, rate[cross])
            a = rx_grant + ((t.nic_lat + nb[cross] / bw) + t.switch_lat)
            # both ports stay held until the arrival releases them
            np.maximum.at(self.tx.free, src[cross], a)
            np.maximum.at(self.rx.free, dst[cross], a)
            arr[cross] = a
        self.events += 4 * req.size
        return arr

    # ------------------------------------------------------------------
    # point-to-point (replay of repro.mpi.comm eager / rendezvous)
    # ------------------------------------------------------------------
    def transfer(self, src, dst, ts1, tr1, nbytes,
                 send_rate=None, recv_rate=None):
        """One matched isend/irecv batch; returns ``(send_c, recv_c)``.

        ``ts1`` is the sender's post-overhead delivery time, ``tr1`` the
        receiver's post time; both completions replay
        :meth:`Communicator._send_proc` / ``_recv_finish`` bit-for-bit.
        """
        t = self._need_bind()
        ts1 = np.atleast_1d(np.asarray(ts1, dtype=np.float64))
        tr1 = np.atleast_1d(np.asarray(tr1, dtype=np.float64))
        shape = ts1.shape
        src = np.broadcast_to(np.atleast_1d(np.asarray(src, np.intp)), shape)
        dst = np.broadcast_to(np.atleast_1d(np.asarray(dst, np.intp)), shape)
        nb = np.broadcast_to(np.asarray(nbytes, dtype=np.float64), shape)
        srate = (np.full(shape, np.nan) if send_rate is None
                 else np.broadcast_to(np.asarray(send_rate, np.float64),
                                      shape))
        rrate = (np.full(shape, np.nan) if recv_rate is None
                 else np.broadcast_to(np.asarray(recv_rate, np.float64),
                                      shape))
        send_c = np.empty(shape)
        recv_c = np.empty(shape)
        eager = nb <= t.eager_threshold
        if np.any(eager):
            m = eager
            t2 = ts1[m] + (t.pmo + nb[m] / t.mbw)
            a = self.wire(src[m], dst[m], t2, nb[m], srate[m])
            unexpected = ts1[m] < tr1[m]
            buffered = unexpected & (a < tr1[m])
            send_c[m] = a
            recv_c[m] = np.where(buffered, tr1[m] + nb[m] / t.mbw, a)
        if not np.all(eager):
            m = ~eager
            tm = np.maximum(ts1[m], tr1[m])
            tc = tm + (t.nic_lat + t.switch_lat)
            rate = np.where(np.isnan(rrate[m]), srate[m],
                            np.where(np.isnan(srate[m]), rrate[m],
                                     np.minimum(srate[m], rrate[m])))
            a = self.wire(src[m], dst[m], tc, nb[m], rate)
            send_c[m] = a
            recv_c[m] = a
        self.events += 6 * ts1.size
        return send_c, recv_c

    # ------------------------------------------------------------------
    # clMPI transfer engines (replay of repro.clmpi.transfers.*)
    # ------------------------------------------------------------------
    def clmpi_pair(self, src, dst, start_s, start_r, nbytes: int,
                   mode: str, block: Optional[int] = None,
                   base: str = "pinned", defer_recv_dma: bool = False):
        """One batch of matched clMPI transfers (device↔device).

        ``start_s``/``start_r`` are the times the send/recv *commands*
        begin executing on their queues.  Returns a dict with
        ``send_done``/``recv_done`` (command completion times) and
        ``recv_c`` (wire-side receive completion, before the drain DMA).

        ``defer_recv_dma=True`` (pinned mode only) skips the receiver's
        h2d drain so the caller can service it in a combined batch with
        other same-engine DMA requests (the single-copy-engine C1060
        case); ``recv_done`` is None then.
        """
        t = self._need_bind()
        start_s = np.atleast_1d(np.asarray(start_s, dtype=np.float64))
        start_r = np.atleast_1d(np.asarray(start_r, dtype=np.float64))
        src = np.atleast_1d(np.asarray(src, dtype=np.intp))
        dst = np.atleast_1d(np.asarray(dst, dtype=np.intp))
        if mode == "pinned":
            dur = t.copy_latency + nbytes / t.pinned_bw
            _, d2h_done = self.d2h.use(src, start_s, dur)
            ts1 = d2h_done + t.co
            tr1 = start_r + t.co
            send_c, recv_c = self.transfer(src, dst, ts1, tr1, nbytes)
            if defer_recv_dma:
                recv_done = None
            else:
                _, recv_done = self.h2d.use(dst, recv_c, dur)
            return {"send_done": send_c, "recv_done": recv_done,
                    "recv_c": recv_c}
        if mode == "mapped":
            ts1 = ((start_s + t.map_overhead) + t.mapped_latency) + t.co
            tr1 = ((start_r + t.map_overhead) + t.mapped_latency) + t.co
            send_c, recv_c = self.transfer(src, dst, ts1, tr1, nbytes,
                                           send_rate=t.mapped_bw,
                                           recv_rate=t.mapped_bw)
            return {"send_done": send_c + t.map_overhead,
                    "recv_done": recv_c + t.map_overhead,
                    "recv_c": recv_c}
        if mode == "pipelined":
            if defer_recv_dma:
                raise EngineError(
                    "defer_recv_dma applies to pinned transfers only")
            return self._clmpi_pipelined(src, dst, start_s, start_r,
                                         nbytes, block, base)
        raise EngineError(f"unknown clMPI transfer mode {mode!r}")

    def _clmpi_pipelined(self, src, dst, start_s, start_r, nbytes: int,
                         block: Optional[int], base: str):
        """Replay of the pipelined engine (per-block DMA ∥ wire)."""
        t = self._need_bind()
        if block is None or block <= 0:
            raise EngineError("pipelined transfer needs a block size")
        ranges = [(lo, min(lo + block, nbytes))
                  for lo in range(0, nbytes, block)]
        mapped_base = base == "mapped"
        rate = t.mapped_bw if mapped_base else None
        T = start_s + t.map_overhead if mapped_base else start_s.copy()
        R = start_r + t.map_overhead if mapped_base else start_r.copy()
        # receiver pre-posts every block's irecv: one api_call each
        tr1 = []
        pos = R.copy()
        for _ in ranges:
            pos = pos + t.co
            tr1.append(pos.copy())
        # sender: staging chain (d2h per block, or instant when mapped)
        staged = []
        if mapped_base:
            staged = [T.copy() for _ in ranges]
            staged_last = T.copy()
        else:
            st = T.copy()
            for lo, hi in ranges:
                dur = t.copy_latency + (hi - lo) / t.pinned_bw
                _, st = self.d2h.use(src, st, dur)
                staged.append(st)
            staged_last = staged[-1]
        # wire coroutine: strictly sequential blocking sends; the
        # receiver drains blocks in order, overlapping the next block
        cur = T.copy()
        drain = pos  # receiver host position after the pre-posting loop
        for i, (lo, hi) in enumerate(ranges):
            ts1 = np.maximum(cur, staged[i]) + t.co
            send_c, recv_c = self.transfer(src, dst, ts1, tr1[i],
                                           hi - lo, send_rate=rate,
                                           recv_rate=rate)
            cur = send_c
            drain = np.maximum(drain, recv_c)
            if not mapped_base:
                dur = t.copy_latency + (hi - lo) / t.pinned_bw
                _, drain = self.h2d.use(dst, drain, dur)
        send_done = np.maximum(staged_last, cur)
        recv_done = drain
        if mapped_base:
            send_done = send_done + t.map_overhead
            recv_done = recv_done + t.map_overhead
        return {"send_done": send_done, "recv_done": recv_done,
                "recv_c": drain}

    # ------------------------------------------------------------------
    # collectives (replay of repro.mpi.collectives over 8..small payloads)
    # ------------------------------------------------------------------
    def barrier(self, t, nodes=None):
        """Dissemination barrier; ``t`` per-rank entry → exit times."""
        tt = self._need_bind()
        t = np.array(t, dtype=np.float64, copy=True)
        P = t.size
        if P == 1:
            return t
        ranks = np.arange(P)
        nodes = ranks if nodes is None else np.asarray(nodes, dtype=np.intp)
        k = 1
        while k < P:
            dest = (ranks + k) % P
            src = (ranks - k) % P
            ts1 = t + tt.co             # sendrecv: isend first
            tr1 = ts1 + tt.co           # then irecv, one api_call later
            # message m_r: rank r -> dest[r]; its receiver posted at
            # tr1[dest[r]]
            send_c, recv_c = self.transfer(nodes, nodes[dest], ts1,
                                           tr1[dest], 1.0)
            # _blocking_wait drains recv then send; the resume time is
            # the max of both completions, plus one sync wake-up
            t = np.maximum(recv_c[src], send_c) + tt.so
            k *= 2
        return t

    def eager_wire_single(self, src: int, dst: int, ts1: float,
                          nbytes: float = 8.0):
        """Service one eager message's wire path immediately.

        For out-of-phase traffic that must interleave with a *later*
        batch on the same receive port (a rank that skipped a phase and
        raced ahead — see the himeno model).  Returns ``(ts1, txg,
        arr)`` suitable for :meth:`reduce_small`'s ``pre`` argument.
        """
        tt = self._need_bind()
        t2 = ts1 + (tt.pmo + nbytes / tt.mbw)
        txg = max(t2, float(self.tx.free[src]))
        if t2 <= self.tx.last_req[src] or txg <= self.rx.last_req[dst]:
            raise EngineError(
                "vectorized eager wire service out of FIFO order: the "
                "raced-ahead message does not postdate earlier traffic")
        rxg = max(txg, float(self.rx.free[dst]))
        arr = rxg + ((tt.nic_lat + nbytes / tt.nic_bw) + tt.switch_lat)
        self.tx.free[src] = max(float(self.tx.free[src]), arr)
        self.rx.free[dst] = max(float(self.rx.free[dst]), arr)
        self.tx.last_req[src] = max(float(self.tx.last_req[src]), t2)
        self.rx.last_req[dst] = max(float(self.rx.last_req[dst]), txg)
        self.events += 4
        return ts1, txg, arr

    def reduce_small(self, t, nbytes=8.0, nodes=None, pre=None):
        """Binomial-tree reduce to rank 0 of a sub-ring payload.

        Payloads must stay below the eager threshold (the gosa pattern).

        Round-batched port service would be wrong here: with
        heterogeneous entry times a round-2 child's eager message can
        hit the parent's NIC receive port *before* the round-1 child's
        message, and the coroutine fabric serves true request order.
        Each rank's send time only depends on its own subtree, so the
        tree is replayed parent-by-parent: all of a parent's incoming
        messages are serviced as one request-ordered FIFO chain while
        the parent's blocking-receive chain stays in mask order.

        ``pre`` maps sender ranks whose isend *and* wire service already
        happened (via :meth:`eager_wire_single`, to interleave with
        earlier phases) to their ``(ts1, txg, arr)`` — those senders'
        ports are not touched again.  Returns per-rank exit times.
        """
        tt = self._need_bind()
        t = np.array(t, dtype=np.float64, copy=True)
        P = t.size
        if P == 1:
            return t
        if nbytes > tt.eager_threshold:
            raise EngineError("reduce_small replays the eager tree only")
        ranks = np.arange(P)
        nodes = ranks if nodes is None else np.asarray(nodes, dtype=np.intp)
        pre = pre or {}
        nb = float(nbytes)
        stage = tt.pmo + nb / tt.mbw           # eager host staging copy
        hold = (tt.nic_lat + nb / tt.nic_bw) + tt.switch_lat
        ts1 = np.zeros(P)                      # per-sender isend time
        txg = np.zeros(P)                      # per-sender tx-port grant
        arr = np.zeros(P)                      # per-sender wire arrival
        for r, (p_ts1, p_txg, p_arr) in pre.items():
            ts1[r], txg[r], arr[r] = p_ts1, p_txg, p_arr
        mask = 1
        while mask < P:
            senders = np.nonzero(((ranks & (mask - 1)) == 0)
                                 & ((ranks & mask) != 0))[0]
            for s in senders:
                # a sender's own receive chain (its subtree) is complete
                # before it sends — drain it now, then post the isend
                self._reduce_drain(int(s), mask, t, ts1, txg, arr,
                                   nodes, nb, hold, pre)
            live = np.array([s for s in senders if s not in pre],
                            dtype=np.intp)
            if live.size:
                ts1[live] = t[live] + tt.co
                t2 = ts1[live] + stage
                n = nodes[live]
                if np.any(t2 <= self.tx.last_req[n]):
                    raise EngineError(
                        "vectorized nic-tx service out of FIFO order "
                        "during reduce (cross-phase arbitration tie)")
                txg[live] = np.maximum(t2, self.tx.free[n])
                np.maximum.at(self.tx.last_req, n, t2)
            mask <<= 1
        self._reduce_drain(0, mask, t, ts1, txg, arr, nodes, nb, hold,
                           pre)
        # senders: blocked wait on the send completion (= eager wire
        # arrival), plus one sync wake-up; they do nothing afterwards
        t[1:] = arr[1:] + tt.so
        self.events += 6 * (P - 1)
        return t

    def _reduce_drain(self, p: int, lsb_p: int, t, ts1, txg, arr,
                      nodes, nb: float, hold: float, pre) -> None:
        """Serve parent ``p``'s incoming reduce messages.

        ``lsb_p`` bounds the child masks (children are ``p + 2**k`` for
        ``2**k < lsb_p``).  The receive port is FIFO in tx-grant order;
        equal-time requests (symmetric subtrees finishing together) are
        served in *descending* child-rank order — calibrated against the
        coroutine heap's sequence resolution and held to it by the
        cross-engine equivalence suite.  The parent's blocking receives
        then complete in mask order.  Children in ``pre`` already went
        through the wire; their arrivals are used as-is.
        """
        tt = self.t
        P = t.size
        kids = []
        m = 1
        while m < lsb_p and p + m < P:
            kids.append(p + m)
            m <<= 1
        if not kids:
            return
        n_p = int(nodes[p])
        todo = [c for c in kids if c not in pre]
        order = sorted(todo[::-1], key=lambda c: txg[c])
        free = float(self.rx.free[n_p])
        before = float(self.rx.last_req[n_p])        # pre-reduce traffic
        last = before
        for c in order:
            req = float(txg[c])
            if req <= before:
                raise EngineError(
                    "vectorized nic-rx service out of FIFO order during "
                    "reduce: a request does not postdate earlier "
                    "non-reduce traffic on the port — refusing to guess")
            last = req
            a = max(req, free) + hold       # port held until arrival
            free = a
            arr[c] = a
            n_c = int(nodes[c])
            if a > self.tx.free[n_c]:
                self.tx.free[n_c] = a
        if order:
            self.rx.free[n_p] = free
            self.rx.last_req[n_p] = last
        for c in kids:                      # blocking recvs in mask order
            tr1 = t[p] + tt.co
            a = arr[c]
            buffered = (ts1[c] < tr1) and (a < tr1)
            recv_c = tr1 + nb / tt.mbw if buffered else a
            t[p] = recv_c + tt.so

    def bcast_small(self, t, nbytes=8.0, nodes=None):
        """Binomial-tree broadcast from rank 0 (eager payloads only)."""
        tt = self._need_bind()
        t = np.array(t, dtype=np.float64, copy=True)
        P = t.size
        if P == 1:
            return t
        if nbytes > tt.eager_threshold:
            raise EngineError("bcast_small replays the eager tree only")
        ranks = np.arange(P)
        nodes = ranks if nodes is None else np.asarray(nodes, dtype=np.intp)
        entry = t.copy()                 # each rank's recv posts at entry
        top = 1
        while top < P:
            top <<= 1
        m = top >> 1
        while m > 0:
            # rank p sends at level m iff its own receive happened at a
            # higher level (or p is the root) and the child exists
            lsb = ranks & -ranks
            can_send = (ranks == 0) | (lsb > m)
            senders = can_send & (ranks + m < P)
            if np.any(senders):
                s = ranks[senders]
                c = s + m
                ts1 = t[s] + tt.co
                tr1 = entry[c] + tt.co      # child's blocking recv
                send_c, recv_c = self.transfer(nodes[s], nodes[c], ts1,
                                               tr1, nbytes)
                t[s] = send_c + tt.so
                t[c] = recv_c + tt.so
            m >>= 1
        return t

    def allreduce_small(self, t, nbytes=8.0, nodes=None, pre=None):
        """reduce-to-root + broadcast (the small-payload allreduce).

        ``pre`` is forwarded to :meth:`reduce_small` (pre-serviced
        raced-ahead senders).
        """
        return self.bcast_small(self.reduce_small(t, nbytes, nodes, pre),
                                nbytes, nodes)

    # ------------------------------------------------------------------
    # homogeneous event lanes (the raw-throughput regime)
    # ------------------------------------------------------------------
    def tick_lanes(self, lanes: int, steps: int, dt: float) -> float:
        """Advance ``lanes`` virtual processes through ``steps``
        sequential timeouts of ``dt`` each — the vectorized equivalent
        of the coroutine engine's ticker benchmark.

        The per-lane clock is the *sequential* float accumulation
        ``((0 + dt) + dt) + ...`` (``np.cumsum`` accumulates left to
        right in C), so the final clock is bit-identical to running
        ``steps`` coroutine timeouts.  Scheduling goes through a real
        :class:`BucketCalendar` drain so the benchmark measures batch
        calendar throughput, not a closed-form shortcut.
        """
        if lanes < 1 or steps < 1:
            raise EngineError("tick_lanes needs lanes >= 1 and steps >= 1")
        ticks = np.cumsum(np.full(steps, float(dt)))
        cal = BucketCalendar(width=max(float(dt) * 64.0, 1e-12))
        for _ in range(lanes):
            cal.schedule(ticks)
        fired, last = cal.drain()
        self.events += fired
        self.env.advance_to(last)
        return self.env.now

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    def commit(self, *times) -> float:
        """Advance the environment clock to the max of ``times``."""
        peak = 0.0
        for t in times:
            arr = np.asarray(t, dtype=np.float64)
            if arr.size:
                peak = max(peak, float(arr.max()))
        self.env.advance_to(peak)
        return self.env.now
