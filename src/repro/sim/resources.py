"""Shared-resource primitives for the DES core.

:class:`Resource` models a fixed number of identical servers (a PCIe copy
engine, a NIC port, a GPU compute engine).  :class:`Store` is an unbounded
FIFO mailbox used for command queues and runtime worker threads.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Generator

from repro.sim.core import Environment, Event, SimulationError

__all__ = ["Resource", "Store", "PriorityStore"]


class Request(Event):
    """Grant event handed out by :meth:`Resource.request`."""

    __slots__ = ("resource",)

    def __init__(self, env: Environment, resource: "Resource"):
        super().__init__(env)
        self.resource = resource


class Resource:
    """``capacity`` identical servers with a FIFO wait queue.

    Usage (inside a simulation coroutine)::

        grant = yield from link.acquire()
        try:
            yield env.timeout(cost)
        finally:
            link.release(grant)
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._users: set[Request] = set()
        self._queue: deque[Request] = deque()

    # -- introspection -----------------------------------------------------
    @property
    def count(self) -> int:
        """Number of grants currently held."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        """Number of requests waiting."""
        return len(self._queue)

    # -- protocol ------------------------------------------------------------
    def request(self) -> Request:
        """Return a grant event; it fires when a server is free (FIFO)."""
        req = Request(self.env, self)
        if len(self._users) < self.capacity and not self._queue:
            self._users.add(req)
            req.succeed(req)
        else:
            self._queue.append(req)
        return req

    def release(self, req: Request) -> None:
        """Return a previously granted server; wakes the next waiter."""
        if req in self._users:
            self._users.remove(req)
        elif req in self._queue:  # cancelled before grant
            self._queue.remove(req)
            return
        else:
            raise SimulationError(f"release of a grant not held on {self.name!r}")
        while self._queue and len(self._users) < self.capacity:
            nxt = self._queue.popleft()
            self._users.add(nxt)
            nxt.succeed(nxt)

    def acquire(self) -> Generator[Event, Any, Request]:
        """Coroutine helper: ``grant = yield from res.acquire()``."""
        req = self.request()
        yield req
        return req


class Store:
    """Unbounded FIFO mailbox with blocking ``get``.

    ``put`` never blocks (infinite capacity); ``get`` suspends the caller
    until an item is available.  Items are delivered in FIFO order and each
    item goes to exactly one getter.
    """

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (FIFO)."""
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None


class PriorityStore(Store):
    """Store delivering the smallest item first (heap order).

    Items must be comparable; use ``(priority, seq, payload)`` tuples.
    """

    def __init__(self, env: Environment, name: str = ""):
        super().__init__(env, name)
        self._items: list[Any] = []  # type: ignore[assignment]

    def put(self, item: Any) -> None:
        if self._getters:
            # An item only reaches a waiting getter if the heap is empty,
            # so delivery order is still smallest-first overall.
            self._getters.popleft().succeed(item)
        else:
            heapq.heappush(self._items, item)

    def get(self) -> Event:
        ev = Event(self.env)
        if self._items:
            ev.succeed(heapq.heappop(self._items))
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        if self._items:
            return True, heapq.heappop(self._items)
        return False, None
