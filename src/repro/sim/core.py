"""DES engine: virtual clock, events, and generator-based processes.

The engine is a classic calendar-queue simulator.  The event heap is
ordered by ``(time, priority, sequence)`` so runs are bit-for-bit
reproducible: ties at equal timestamps resolve first by priority band and
then by scheduling order.

Cross-engine determinism invariant
----------------------------------
Two execution engines share the :class:`Environment` facade (select with
``Environment(engine=...)``):

* ``"coroutine"`` (default) — this module's generator-based calendar.
* ``"vectorized"`` — :mod:`repro.sim.vectorized`, a timing-only engine
  that batches homogeneous events into NumPy array operations and
  virtualizes ranks (P simulated ranks never cost P Python coroutines).

Byte-identical results across engines rest on one invariant: **at equal
virtual timestamps, outcomes are fixed by the ``(time, priority,
sequence)`` order and never by anything the tie-break cannot see.**
Concretely:

* Ties at one timestamp fire in priority bands ``HIGH`` (process
  bootstrap/kicks) → ``NORMAL`` (timeouts, completions) → ``LOW``
  (deferred-matching flush rounds), then in scheduling (``_seq``) order
  within a band — exactly the order :meth:`Environment._run_scheduled`
  exposes to schedule policies as explicit tie batches.
* Every *timing-relevant* consequence of a tie is a pure ``max``: a
  FIFO :class:`~repro.sim.resources.Resource` wakes its next waiter at
  the release timestamp itself, so a waiter's start time is
  ``max(request_time, release_time)`` regardless of which same-time
  entry fired first.  The vectorized engine replays these chains as
  elementwise float64 ``max``/``+``/``*``/``/`` operations — IEEE-754
  identical to the scalar arithmetic performed here — which is what
  makes bit-for-bit agreement achievable without running coroutines.
* Therefore no layer may make a timing decision depend on heap *arrival*
  order beyond the ``(time, priority, sequence)`` key (e.g. iterating a
  ``set`` of waiters, or branching on ``len(heap)``).  Matching (see
  :mod:`repro.mpi.matching`) is registration-order FIFO for the same
  reason.

Hot-path notes (see docs/performance.md)
----------------------------------------
A sweep spends nearly all of its real time inside this module, so the
inner loop is written for CPython's profile rather than for symmetry:

* ``succeed``/``fail``/``Timeout`` push onto the calendar directly
  instead of going through :meth:`Environment._schedule` (one call frame
  per event saved; ``_schedule`` remains for subclasses and tests).
* Each :class:`Process` caches its bound ``_resume`` once instead of
  materialising a fresh bound method per wait.
* Resuming a process that yielded an *already processed* event, and
  bootstrapping a new process, both reuse pooled one-shot "kick" events
  (:class:`_Kick`) rather than allocating a fresh :class:`Event`.
* ``Environment.run`` inlines :meth:`step` so the drain loop costs one
  heappop plus one callback dispatch per event.
* ``Environment(reuse_timeouts=True)`` opts into a slotted freelist that
  recycles :class:`Timeout` instances the moment they fire, guarded by a
  refcount check so user-held timeouts are never reused underneath the
  caller.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from sys import getrefcount

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "EngineError",
    "ENGINES",
    "NORMAL",
    "HIGH",
    "LOW",
]

#: Engine names accepted by ``Environment(engine=...)``.
ENGINES = ("coroutine", "vectorized")

#: Priority bands for same-timestamp ordering.  Lower sorts earlier.
HIGH = 0
NORMAL = 1
LOW = 2

# Event lifecycle states.
PENDING = 0
TRIGGERED = 1  # scheduled on the heap, callbacks not yet run
PROCESSED = 2  # callbacks have run

#: Upper bounds for the per-environment object pools.
_KICK_POOL_MAX = 64
_TIMEOUT_POOL_MAX = 256


class SimulationError(RuntimeError):
    """Raised for engine misuse (double-trigger, yielding non-events, ...)."""


class EngineError(SimulationError):
    """Raised for execution-engine misuse.

    Examples: spawning a coroutine on a vectorized environment (rank
    virtualization means P ranks never get P generator frames), asking
    the vectorized engine for a functional (payload-moving) run, or
    requesting an unknown engine name.
    """


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence on the virtual timeline.

    An event starts *pending*, is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`, and then has its callbacks run at the
    trigger time.  Processes waiting on a failed event have the failure
    exception re-raised at their ``yield`` site.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state: int = PENDING
        self._defused: bool = False

    # -- introspection ----------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception)."""
        if self._state == PENDING:
            raise SimulationError("value of a pending event is undefined")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        env = self.env
        env._seq += 1
        heappush(env._heap, (env._now, priority, env._seq, self))
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as failed; waiters will see ``exc`` raised."""
        if self._state != PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() requires an exception, got {exc!r}")
        self._ok = False
        self._value = exc
        self._state = TRIGGERED
        env = self.env
        env._seq += 1
        heappush(env._heap, (env._now, priority, env._seq, self))
        return self

    def trigger_from(self, other: "Event") -> None:
        """Mirror another (already triggered) event's outcome."""
        if other._ok:
            self.succeed(other._value)
        else:
            other._defused = True
            self.fail(other._value)

    # -- internal ---------------------------------------------------------
    def _run_callbacks(self) -> None:
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)
        if not self._ok and not self._defused:
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None,
                 priority: int = NORMAL):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = TRIGGERED
        self._defused = False
        env._seq += 1
        heappush(env._heap, (env._now + delay, priority, env._seq, self))


class _Kick(Event):
    """Pooled one-shot event used to defer a resume to the next round.

    Kicks never escape the engine (no user code ever holds one), so once
    their callbacks have run inside :meth:`Environment.run` they are reset
    and returned to the environment's pool for reuse.
    """

    __slots__ = ()

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks = []
        self._value = None
        self._ok = True
        self._state = PENDING
        self._defused = False


class Process(Event):
    """A running simulation coroutine.

    A ``Process`` is itself an event that fires when the coroutine
    finishes: its value is the coroutine's ``return`` value, or the
    exception if the coroutine raised.
    """

    __slots__ = ("_generator", "_waiting_on", "_resume_cb", "name")

    def __init__(self, env: "Environment", generator: Generator,
                 name: str = ""):
        if not hasattr(generator, "throw"):
            raise TypeError(f"process() requires a generator, got {generator!r}")
        self.env = env
        self.callbacks = []
        self._value = None
        self._ok = True
        self._state = PENDING
        self._defused = False
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._resume_cb = self._resume
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume the coroutine at the current time.
        pool = env._kick_pool
        boot = pool.pop() if pool else _Kick(env)
        boot.callbacks.append(self._resume_cb)
        boot._state = TRIGGERED
        env._seq += 1
        heappush(env._heap, (env._now, HIGH, env._seq, boot))

    @property
    def is_alive(self) -> bool:
        """True while the coroutine has not finished."""
        return self._state == PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the coroutine at its yield point."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has already terminated")
        target = self._waiting_on
        if target is not None:
            try:
                target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._waiting_on = None
        kick = Event(self.env)
        kick.callbacks.append(lambda _evt: self._throw(Interrupt(cause)))
        kick.succeed(priority=HIGH)

    # -- coroutine stepping -------------------------------------------------
    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                event._defused = True
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            if self.callbacks:
                self.succeed(stop.value)
            else:
                # No waiters: complete in place, skipping the calendar
                # round-trip.  Anyone who yields or inspects the process
                # afterwards sees an ordinary processed event.  (Failures
                # below always go through the calendar so an unhandled
                # one still propagates out of Environment.run.)
                self._value = stop.value
                self._state = PROCESSED
            return
        except BaseException as exc:
            env._active_process = None
            self.fail(exc)
            return
        env._active_process = None
        # Fast path: waiting on a live event — append the cached bound
        # resume to its callbacks.  Everything else (processed targets,
        # non-events) takes the slow path.
        if target.__class__ is Timeout or isinstance(target, Event):
            if target._state != PROCESSED:
                target.callbacks.append(self._resume_cb)
                self._waiting_on = target
                return
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        self.env._active_process = self
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self.env._active_process = None
            if self.callbacks:
                self.succeed(stop.value)
            else:
                self._value = stop.value
                self._state = PROCESSED
            return
        except BaseException as err:
            self.env._active_process = None
            self.fail(err)
            return
        self.env._active_process = None
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; coroutines must "
                "yield Event instances (did you forget 'yield from'?)")
        if target._state == PROCESSED:
            # Already fired: resume on the next scheduling round, via a
            # pooled kick (no fresh Event allocation on this path).
            env = self.env
            pool = env._kick_pool
            kick = pool.pop() if pool else _Kick(env)
            kick._ok = target._ok
            kick._value = target._value
            if not target._ok:
                target._defused = True
            kick.callbacks.append(self._resume_cb)
            kick._state = TRIGGERED
            env._seq += 1
            heappush(env._heap, (env._now, HIGH, env._seq, kick))
            self._waiting_on = kick
        else:
            target.callbacks.append(self._resume_cb)
            self._waiting_on = target


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("cannot mix events from different environments")
        # Count pending children BEFORE dispatching immediate checks, or
        # an already-processed first child would observe pending == 0 and
        # fire the condition while later children are still outstanding.
        self._pending = sum(1 for ev in self.events if not ev.processed)
        for ev in self.events:
            if ev.processed:
                self._check(ev, immediate=True)
            else:
                ev.callbacks.append(self._check)
        self._finalize_empty()

    def _finalize_empty(self) -> None:
        raise NotImplementedError

    def _check(self, event: Event, immediate: bool = False) -> None:
        raise NotImplementedError

    def _late_child(self, event: Event) -> None:
        """Handle a child firing after the condition itself has fired.

        A late *failure* must still be defused: the condition no longer
        propagates it (it already has an outcome), and without defusing it
        the exception would escape :meth:`Environment.run`.
        """
        if not event._ok:
            event._defused = True


class AllOf(_Condition):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ()

    def _finalize_empty(self) -> None:
        if self._state == PENDING and self._pending == 0:
            self.succeed([ev._value for ev in self.events])

    def _check(self, event: Event, immediate: bool = False) -> None:
        if self._state != PENDING:
            self._late_child(event)
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        if not immediate:
            self._pending -= 1
        if self._pending == 0:
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Fires when the first child event fires; value is ``(event, value)``."""

    __slots__ = ()

    def _finalize_empty(self) -> None:
        if self._state == PENDING and not self.events:
            self.succeed((None, None))

    def _check(self, event: Event, immediate: bool = False) -> None:
        if self._state != PENDING:
            self._late_child(event)
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed((event, event._value))


class Environment:
    """The simulation environment: virtual clock plus the event calendar.

    ``reuse_timeouts=True`` opts into the timeout freelist: plain
    :class:`Timeout` events created through :meth:`timeout` are recycled
    once fired *if nothing else still references them* (checked via the
    refcount), trading a tiny per-event check for zero allocation on the
    dominant event type.  Off by default — holding a fired timeout and
    reading its ``value`` later is legal API use and only guaranteed
    stable when the freelist is off or the caller keeps a reference.

    ``engine`` selects the execution engine behind this facade:
    ``"coroutine"`` (default) runs generator processes on the event heap;
    ``"vectorized"`` exposes the NumPy batch engine at :attr:`vector`
    (see :mod:`repro.sim.vectorized`) and *refuses* to spawn coroutines —
    timing-only models advance the shared clock through array operations
    instead.  Both engines honour the cross-engine determinism invariant
    documented at the top of this module.
    """

    def __init__(self, initial_time: float = 0.0,
                 reuse_timeouts: bool = False,
                 engine: str = "coroutine",
                 strict_engine: bool = False):
        if engine not in ENGINES:
            raise EngineError(
                f"unknown engine {engine!r}; choose from {ENGINES}")
        self.engine = engine
        #: When True, callers that would silently fall back from the
        #: requested engine to the coroutine engine (because a feature —
        #: fault injection, tracing, pipelined planes, an odd mapped
        #: rank count — is outside the vectorized model) must raise
        #: :class:`EngineError` instead.  The flag lives here so every
        #: layer that builds models on this environment sees one policy.
        self.strict_engine = bool(strict_engine)
        self._vector = None
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._kick_pool: list[_Kick] = []
        self._timeout_pool: Optional[list[Timeout]] = \
            [] if reuse_timeouts else None
        #: Optional tracer; hardware layers append timeline records here.
        self.tracer = None
        #: Optional correctness monitor (see :mod:`repro.analysis`); the
        #: ocl/mpi/clmpi layers notify it of lifecycle transitions.
        self.monitor = None
        #: Optional fault injector (see :mod:`repro.faults`); hardware and
        #: transport layers consult it for drops, derates, and failures.
        self.faults = None
        #: Optional metrics registry (see :mod:`repro.obs`); layers bump
        #: counters/gauges on it.  Detached (None) costs nothing: the
        #: run loop accounts events via ``_seq`` deltas, never per-event.
        self.metrics = None
        #: Optional schedule policy (see :mod:`repro.analysis.schedule`);
        #: while attached, :meth:`run` routes through
        #: :meth:`_run_scheduled` and same-``(time, priority)`` calendar
        #: ties become explicit choice points the policy resolves.
        #: Detached (None) costs one attribute check per ``run()`` call —
        #: never anything per event.
        self.schedule_policy = None
        #: ordinal of the next tie choice point (scheduled runs only)
        self._tie_no = 0
        #: per-kind counters backing auto-generated entity names
        #: (``buf3``, ``send#7``, ...) — see :meth:`next_id`
        self._name_ids: dict = {}

    def next_id(self, kind: str) -> int:
        """Next ordinal for auto-named entities of ``kind`` (1-based).

        Scoped to the environment so generated names are a function of
        the run alone — a case replayed in a fresh worker process and
        one simulated mid-batch in a long-lived parent produce the same
        labels (sanitizer findings must be byte-identical either way).
        """
        n = self._name_ids.get(kind, 0) + 1
        self._name_ids[kind] = n
        return n

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def vector(self):
        """The batch engine (:class:`repro.sim.vectorized.VectorEngine`).

        Only available when the environment was created with
        ``engine="vectorized"``; the coroutine engine has no array lanes.
        """
        if self.engine != "vectorized":
            raise EngineError(
                "env.vector requires Environment(engine='vectorized'); "
                f"this environment runs the {self.engine!r} engine")
        if self._vector is None:
            from repro.sim.vectorized import VectorEngine

            self._vector = VectorEngine(self)
        return self._vector

    def advance_to(self, when: float) -> float:
        """Advance the clock to ``when`` (vectorized-engine models only).

        The clock is monotone: an earlier ``when`` is a no-op, matching
        the coroutine engine where ``now`` only moves forward.  Refuses
        to jump over undrained calendar entries — batch models must not
        silently starve pending events.
        """
        if self._heap and self._heap[0][0] < when:
            raise EngineError(
                f"advance_to({when}) would skip over a calendar event at "
                f"t={self._heap[0][0]}; drain with run() first")
        if when > self._now:
            self._now = float(when)
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped (None between steps)."""
        return self._active_process

    # -- factories -----------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        pool = self._timeout_pool
        if pool:
            to = pool.pop()
            to._value = value
            to._state = TRIGGERED
        else:
            # Inline Timeout construction: this is the single hottest
            # allocation in any sweep, so skip the __init__ call frame.
            to = Timeout.__new__(Timeout)
            to.env = self
            to.callbacks = []
            to._value = value
            to._ok = True
            to._state = TRIGGERED
            to._defused = False
        self._seq += 1
        heappush(self._heap, (self._now + delay, NORMAL, self._seq, to))
        return to

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register a coroutine for execution; returns its Process event."""
        if self.engine != "coroutine":
            generator.close()
            raise EngineError(
                "Environment(engine='vectorized') virtualizes ranks and "
                "cannot host coroutines; use env.vector batch operations, "
                "or engine='coroutine' for generator processes")
        if self.metrics is not None:
            self.metrics.inc("sim.processes")
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------
    def _schedule(self, event: Event, priority: int = NORMAL,
                  delay: float = 0.0) -> None:
        self._seq += 1
        heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def step(self) -> None:
        """Process the single next event on the calendar."""
        when, _prio, _seq, event = heappop(self._heap)
        self._now = when
        event._run_callbacks()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the calendar empties or the clock reaches ``until``.

        Unhandled process failures propagate out of ``run`` (matching the
        behaviour of an uncaught exception on a real thread).

        The loop inlines :meth:`Event._run_callbacks` (engine classes do
        not override it) so each event costs one heappop plus the
        callback dispatch — no per-event method-call frames.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        if self.schedule_policy is not None:
            return self._run_scheduled(until)
        heap = self._heap
        pool = self._timeout_pool
        kick_pool = self._kick_pool
        metrics = self.metrics
        if metrics is not None:
            # Every heappush bumps _seq exactly once, so event counts can
            # be recovered from deltas at the loop boundaries — the hot
            # loop itself carries no instrumentation.
            seq0 = self._seq
            heap0 = len(heap)
        while heap:
            if until is not None and heap[0][0] > until:
                self._now = until
                if metrics is not None:
                    scheduled = self._seq - seq0
                    metrics.inc("sim.events_scheduled", scheduled)
                    metrics.inc("sim.events_fired",
                                heap0 + scheduled - len(heap))
                return
            when, _p, _s, event = heappop(heap)
            self._now = when
            event._state = PROCESSED
            callbacks = event.callbacks
            if callbacks:
                event.callbacks = []
                for cb in callbacks:
                    cb(event)
            if not event._ok and not event._defused:
                raise event._value
            cls = event.__class__
            if cls is Timeout:
                if (pool is not None and not event.callbacks
                        and getrefcount(event) == 2
                        and len(pool) < _TIMEOUT_POOL_MAX):
                    # Nothing else references the fired timeout: recycle.
                    event._state = PENDING
                    event._value = None
                    event._defused = False
                    pool.append(event)
            elif cls is _Kick:
                event._state = PENDING
                event._ok = True
                event._value = None
                event._defused = False
                if len(kick_pool) < _KICK_POOL_MAX:
                    kick_pool.append(event)
        if until is not None:
            self._now = until
        if metrics is not None:
            scheduled = self._seq - seq0
            metrics.inc("sim.events_scheduled", scheduled)
            metrics.inc("sim.events_fired", heap0 + scheduled - len(heap))

    @staticmethod
    def _tie_label(event: Event) -> str:
        """Stable human-readable label for one tie-batch entry.

        Events a process waits on carry the process's cached bound
        ``_resume`` — the bound method's ``__self__`` is the Process, so
        its name labels the entry.  Anything without a named waiter
        (flush rounds, bare control events) falls back to its class name.
        """
        for cb in event.callbacks:
            name = getattr(getattr(cb, "__self__", None), "name", None)
            if name:
                return name
        return type(event).__name__

    def _run_scheduled(self, until: Optional[float]) -> None:
        """``run`` variant active while a schedule policy is attached.

        Same-``(time, priority)`` heap entries form a *tie batch*; with
        ``policy.explore_ties`` the policy picks which entry fires next
        (choice index 0 always reproduces the detached seq order).  This
        loop skips the hot path's event pooling and metrics accounting —
        only the schedule-space verifier drives it, and it pays for
        introspection instead of throughput.
        """
        policy = self.schedule_policy
        heap = self._heap
        explore = bool(getattr(policy, "explore_ties", False))
        cap = int(getattr(policy, "tie_cap", 4))
        while heap:
            if until is not None and heap[0][0] > until:
                break
            entry = heappop(heap)
            if explore and heap and heap[0][0] == entry[0] \
                    and heap[0][1] == entry[1]:
                batch = [entry]
                while heap and len(batch) < cap \
                        and heap[0][0] == entry[0] \
                        and heap[0][1] == entry[1]:
                    batch.append(heappop(heap))
                labels = [self._tie_label(e[3]) for e in batch]
                if len(set(labels)) > 1:
                    self._tie_no += 1
                    idx = policy.choose(f"tie#{self._tie_no}", labels,
                                        "tie")
                else:
                    idx = 0
                entry = batch.pop(idx)
                for other in batch:
                    heappush(heap, other)
            when, _p, _s, event = entry
            self._now = when
            event._state = PROCESSED
            callbacks = event.callbacks
            if callbacks:
                event.callbacks = []
                for cb in callbacks:
                    cb(event)
            if not event._ok and not event._defused:
                raise event._value
        if until is not None:
            self._now = until

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")
