"""DES engine: virtual clock, events, and generator-based processes.

The engine is a classic calendar-queue simulator.  The event heap is
ordered by ``(time, priority, sequence)`` so runs are bit-for-bit
reproducible: ties at equal timestamps resolve first by priority band and
then by scheduling order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "NORMAL",
    "HIGH",
    "LOW",
]

#: Priority bands for same-timestamp ordering.  Lower sorts earlier.
HIGH = 0
NORMAL = 1
LOW = 2

# Event lifecycle states.
PENDING = 0
TRIGGERED = 1  # scheduled on the heap, callbacks not yet run
PROCESSED = 2  # callbacks have run


class SimulationError(RuntimeError):
    """Raised for engine misuse (double-trigger, yielding non-events, ...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence on the virtual timeline.

    An event starts *pending*, is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`, and then has its callbacks run at the
    trigger time.  Processes waiting on a failed event have the failure
    exception re-raised at their ``yield`` site.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state: int = PENDING
        self._defused: bool = False

    # -- introspection ----------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception)."""
        if self._state == PENDING:
            raise SimulationError("value of a pending event is undefined")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        self.env._schedule(self, priority)
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as failed; waiters will see ``exc`` raised."""
        if self._state != PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() requires an exception, got {exc!r}")
        self._ok = False
        self._value = exc
        self._state = TRIGGERED
        self.env._schedule(self, priority)
        return self

    def trigger_from(self, other: "Event") -> None:
        """Mirror another (already triggered) event's outcome."""
        if other._ok:
            self.succeed(other._value)
        else:
            other._defused = True
            self.fail(other._value)

    # -- internal ---------------------------------------------------------
    def _run_callbacks(self) -> None:
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)
        if not self._ok and not self._defused:
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None,
                 priority: int = NORMAL):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        env._schedule(self, priority, delay)


class Process(Event):
    """A running simulation coroutine.

    A ``Process`` is itself an event that fires when the coroutine
    finishes: its value is the coroutine's ``return`` value, or the
    exception if the coroutine raised.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(self, env: "Environment", generator: Generator,
                 name: str = ""):
        if not hasattr(generator, "throw"):
            raise TypeError(f"process() requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume the coroutine at the current time.
        boot = Event(env)
        boot.callbacks.append(self._resume)
        boot.succeed(priority=HIGH)

    @property
    def is_alive(self) -> bool:
        """True while the coroutine has not finished."""
        return self._state == PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the coroutine at its yield point."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has already terminated")
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        kick = Event(self.env)
        kick.callbacks.append(lambda _evt: self._throw(Interrupt(cause)))
        kick.succeed(priority=HIGH)

    # -- coroutine stepping -------------------------------------------------
    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                event._defused = True
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        self.env._active_process = self
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as err:
            self.env._active_process = None
            self.fail(err)
            return
        self.env._active_process = None
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; coroutines must "
                "yield Event instances (did you forget 'yield from'?)")
        if target.processed:
            # Already fired: resume on the next scheduling round.
            kick = Event(self.env)
            kick._ok, kick._value = target._ok, target._value
            if not target._ok:
                target._defused = True
            kick.callbacks.append(self._resume)
            kick._state = TRIGGERED
            self.env._schedule(kick, HIGH)
            self._waiting_on = kick
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("cannot mix events from different environments")
        # Count pending children BEFORE dispatching immediate checks, or
        # an already-processed first child would observe pending == 0 and
        # fire the condition while later children are still outstanding.
        self._pending = sum(1 for ev in self.events if not ev.processed)
        for ev in self.events:
            if ev.processed:
                self._check(ev, immediate=True)
            else:
                ev.callbacks.append(self._check)
        self._finalize_empty()

    def _finalize_empty(self) -> None:
        raise NotImplementedError

    def _check(self, event: Event, immediate: bool = False) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ()

    def _finalize_empty(self) -> None:
        if self._state == PENDING and self._pending == 0:
            self.succeed([ev._value for ev in self.events])

    def _check(self, event: Event, immediate: bool = False) -> None:
        if self._state != PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        if not immediate:
            self._pending -= 1
        if self._pending == 0:
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Fires when the first child event fires; value is ``(event, value)``."""

    __slots__ = ()

    def _finalize_empty(self) -> None:
        if self._state == PENDING and not self.events:
            self.succeed((None, None))

    def _check(self, event: Event, immediate: bool = False) -> None:
        if self._state != PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed((event, event._value))


class Environment:
    """The simulation environment: virtual clock plus the event calendar."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Optional tracer; hardware layers append timeline records here.
        self.tracer = None
        #: Optional correctness monitor (see :mod:`repro.analysis`); the
        #: ocl/mpi/clmpi layers notify it of lifecycle transitions.
        self.monitor = None

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped (None between steps)."""
        return self._active_process

    # -- factories -----------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register a coroutine for execution; returns its Process event."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------
    def _schedule(self, event: Event, priority: int = NORMAL,
                  delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def step(self) -> None:
        """Process the single next event on the calendar."""
        when, _prio, _seq, event = heapq.heappop(self._heap)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("time ran backwards")
        self._now = when
        event._run_callbacks()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the calendar empties or the clock reaches ``until``.

        Unhandled process failures propagate out of ``run`` (matching the
        behaviour of an uncaught exception on a real thread).
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")
