"""Exception hierarchy shared across the repro packages."""

__all__ = [
    "ReproError",
    "ConfigurationError",
    "OclError",
    "MpiError",
    "MpiRankFailed",
    "MpiRevoked",
    "ClmpiError",
]


class ReproError(Exception):
    """Base class for all library-level errors."""


class ConfigurationError(ReproError):
    """Invalid hardware/system configuration."""


class OclError(ReproError):
    """OpenCL-layer error (invalid handle, bad enqueue arguments, ...).

    Mirrors the role of negative ``cl_int`` status codes in the real API;
    the ``code`` attribute carries the CL-style symbolic name.
    """

    def __init__(self, code: str, message: str = ""):
        super().__init__(f"{code}: {message}" if message else code)
        self.code = code


class MpiError(ReproError):
    """MPI-layer error (rank out of range, truncation, comm misuse)."""


class MpiRankFailed(MpiError):
    """A peer rank has fail-stopped (ULFM ``MPI_ERR_PROC_FAILED``).

    Distinct from a transient :class:`MpiError`: retransmission cannot
    mask a dead rank, so callers should recover via ``Comm.revoke()`` /
    ``Comm.shrink()`` instead of retrying.  ``rank``/``node`` name the
    failed peer when known.
    """

    def __init__(self, message: str, rank=None, node=None):
        super().__init__(message)
        self.rank = rank
        self.node = node


class MpiRevoked(MpiError):
    """Operation aborted on a revoked communicator (ULFM
    ``MPI_ERR_REVOKED``).  Raised by every pending and future operation
    once any rank calls ``Comm.revoke()``; only ``shrink()``/``agree()``
    keep working, which is how survivors reach a usable communicator.
    """


class ClmpiError(ReproError):
    """clMPI-extension error (bad transfer mode, size mismatch, ...)."""
