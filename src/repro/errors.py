"""Exception hierarchy shared across the repro packages."""

__all__ = [
    "ReproError",
    "ConfigurationError",
    "OclError",
    "MpiError",
    "ClmpiError",
]


class ReproError(Exception):
    """Base class for all library-level errors."""


class ConfigurationError(ReproError):
    """Invalid hardware/system configuration."""


class OclError(ReproError):
    """OpenCL-layer error (invalid handle, bad enqueue arguments, ...).

    Mirrors the role of negative ``cl_int`` status codes in the real API;
    the ``code`` attribute carries the CL-style symbolic name.
    """

    def __init__(self, code: str, message: str = ""):
        super().__init__(f"{code}: {message}" if message else code)
        self.code = code


class MpiError(ReproError):
    """MPI-layer error (rank out of range, truncation, comm misuse)."""


class ClmpiError(ReproError):
    """clMPI-extension error (bad transfer mode, size mismatch, ...)."""
