"""System presets encoding the paper's Table I testbeds."""

from repro.systems.presets import (
    SYSTEMS,
    SystemPreset,
    TransferPolicy,
    cichlid,
    custom,
    get_system,
    ricc,
)

__all__ = [
    "cichlid",
    "ricc",
    "custom",
    "TransferPolicy",
    "SystemPreset",
    "get_system",
    "SYSTEMS",
]
