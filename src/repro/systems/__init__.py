"""System presets encoding the paper's Table I testbeds."""

from repro.systems.presets import (
    cichlid,
    ricc,
    custom,
    TransferPolicy,
    SystemPreset,
    get_system,
    SYSTEMS,
)

__all__ = [
    "cichlid",
    "ricc",
    "custom",
    "TransferPolicy",
    "SystemPreset",
    "get_system",
    "SYSTEMS",
]
