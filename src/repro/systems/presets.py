"""Calibrated machine models for the two evaluation systems of Table I.

Every timing constant used anywhere in the simulator lives here, with its
provenance.  The calibration goal is *shape fidelity* for Figures 8-10:
who wins, by roughly what factor, and where crossovers fall — not absolute
GFLOPS (our substrate is a simulator, not the authors' testbeds).

Provenance notes
----------------
* GbE effective point-to-point bandwidth: ~117 MB/s (TCP over 1 Gb/s).
* IPoIB over IB DDR: the paper runs Open MPI over IPoIB (§V.A).  DDR
  signals 16 Gb/s (data 1.6 GB/s after 8b/10b); IPoIB typically sustains
  ~1.0-1.4 GB/s.  We use 1.25 GB/s.
* Tesla C2070 (Fermi): dual copy engines, PCIe gen2 x16 pinned ~5.7 GB/s,
  mapped (zero-copy) access is serviceable (~3 GB/s).
* Tesla C1060 (GT200): single copy engine, pinned ~5.3 GB/s, and mapped
  host access is notoriously slow (~0.8 GB/s) — this is why the mapped
  implementation loses badly on RICC in Fig 8(b) while being the best
  small-message option on Cichlid in Fig 8(a).
* Sustained Himeno-kernel GFLOPS: ~45 SP on C2070, ~28 SP on C1060
  (published Himeno GPU ports of that era; only their *ratio* to network
  speed matters for the figure shapes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.hardware import (
    ClusterSpec,
    FabricSpec,
    GpuSpec,
    HostSpec,
    NicSpec,
    NodeSpec,
    PcieSpec,
)

__all__ = ["TransferPolicy", "SystemPreset", "cichlid", "ricc", "custom",
           "get_system", "SYSTEMS"]

KiB = 1024
MiB = 1024 * 1024


@dataclass(frozen=True)
class TransferPolicy:
    """Automatic transfer-mode selection policy (§V.B).

    The paper's runtime "can use either the pinned or mapped data transfer
    for small messages, and the pipelined data transfer can be performed
    for large messages", with mapped chosen on Cichlid and pinned on RICC.

    Attributes
    ----------
    small_mode:
        ``"mapped"`` or ``"pinned"``: engine for messages below
        ``pipeline_threshold``.
    pipeline_threshold:
        Messages of at least this many bytes use the pipelined engine.
    pipeline_block:
        Function from message size to pipeline block size in bytes.
    pipeline_base:
        Staging engine used by the pipelined transfer (``"pinned"`` or
        ``"mapped"`` — §V.B: "the pipelined data transfer can also be
        implemented using either the pinned or mapped data transfer").
    """

    small_mode: str = "pinned"
    pipeline_threshold: int = 4 * MiB
    pipeline_block: Callable[[int], int] = field(
        default=lambda nbytes: max(256 * KiB, min(4 * MiB, nbytes // 8)))
    pipeline_base: str = "pinned"

    def __post_init__(self) -> None:
        if self.small_mode not in ("pinned", "mapped"):
            raise ConfigurationError(f"bad small_mode {self.small_mode!r}")
        if self.pipeline_base not in ("pinned", "mapped"):
            raise ConfigurationError(f"bad pipeline_base {self.pipeline_base!r}")
        if self.pipeline_threshold < 1:
            raise ConfigurationError("pipeline_threshold must be positive")

    def select(self, nbytes: int) -> tuple[str, Optional[int]]:
        """Return ``(mode, block_size)`` for a message of ``nbytes``."""
        if nbytes >= self.pipeline_threshold:
            block = min(self.pipeline_block(nbytes), nbytes)
            return "pipelined", max(1, block)
        return self.small_mode, None


@dataclass(frozen=True)
class SystemPreset:
    """A cluster spec plus its runtime tuning (one Table I column)."""

    cluster: ClusterSpec
    policy: TransferPolicy
    #: eager/rendezvous switch-over of the MPI layer (Open MPI-like)
    mpi_eager_threshold: int = 64 * KiB

    @property
    def name(self) -> str:
        return self.cluster.name


def cichlid(max_nodes: int = 4) -> SystemPreset:
    """The Cichlid testbed: 4 nodes, Core i7 930 + Tesla C2070, GbE."""
    host = HostSpec(
        name="Intel Core i7 930 (2.8 GHz)",
        sustained_gflops=10.0,        # serial host phases
        memcpy_bandwidth=3.0e9,       # single-thread memcpy
        call_overhead=1.5e-6,
        sync_overhead=60e-6,          # clFinish / MPI_Wait wake-up poll
    )
    gpu = GpuSpec(
        name="NVIDIA Tesla C2070",
        sustained_gflops=45.0,        # Himeno-class stencil, SP
        mem_bandwidth=100e9,          # of 144 GB/s peak
        launch_overhead=8e-6,
        copy_engines=2,               # Fermi: concurrent h2d+d2h
        memory_bytes=6 * 2**30,
    )
    pcie = PcieSpec(
        pinned_bandwidth=5.7e9,       # PCIe gen2 x16, page-locked DMA
        pageable_bandwidth=2.8e9,     # driver bounce buffers
        mapped_bandwidth=3.0e9,       # zero-copy access, Fermi
        copy_latency=18e-6,           # driver + DMA descriptor per copy
        map_overhead=4e-6,
        mapped_latency=2e-6,
    )
    nic = NicSpec(
        name="Gigabit Ethernet",
        bandwidth=117e6,              # effective TCP payload rate
        latency=50e-6,
        per_message_overhead=4e-6,
    )
    node = NodeSpec(host=host, gpu=gpu, pcie=pcie, host_cores=4)
    fabric = FabricSpec(nic=nic, switch_latency=2e-6,
                        loopback_bandwidth=4e9)
    cluster = ClusterSpec(name="Cichlid", node=node, fabric=fabric,
                          max_nodes=max_nodes)
    # §V.B: "the mapped ... data transfers are used for Cichlid": mapped has
    # the lowest fixed latency and GbE (117 MB/s) is far below the mapped
    # PCIe rate, so staging buys nothing on this system.
    policy = TransferPolicy(small_mode="mapped",
                            pipeline_threshold=8 * MiB,
                            pipeline_base="mapped")
    return SystemPreset(cluster=cluster, policy=policy,
                        mpi_eager_threshold=64 * KiB)


def ricc(max_nodes: int = 100) -> SystemPreset:
    """The RICC multi-purpose PC cluster: Xeon 5570 + Tesla C1060, IB DDR."""
    host = HostSpec(
        name="Intel Xeon 5570 (x2)",
        sustained_gflops=11.0,
        memcpy_bandwidth=4.0e9,
        call_overhead=1.2e-6,
        sync_overhead=15e-6,
    )
    gpu = GpuSpec(
        name="NVIDIA Tesla C1060",
        sustained_gflops=28.0,
        mem_bandwidth=73e9,           # of 102 GB/s peak
        launch_overhead=10e-6,
        copy_engines=1,               # GT200: one DMA engine
        memory_bytes=4 * 2**30,
    )
    pcie = PcieSpec(
        pinned_bandwidth=5.3e9,
        pageable_bandwidth=2.2e9,
        mapped_bandwidth=0.8e9,       # zero-copy is slow on GT200
        copy_latency=12e-6,
        map_overhead=15e-6,           # GT200 zero-copy setup is expensive
        mapped_latency=10e-6,
    )
    nic = NicSpec(
        name="InfiniBand DDR (IPoIB)",
        bandwidth=1.25e9,             # IPoIB sustained (§V.A)
        latency=25e-6,
        per_message_overhead=3e-6,
    )
    node = NodeSpec(host=host, gpu=gpu, pcie=pcie, host_cores=8)
    fabric = FabricSpec(nic=nic, switch_latency=1e-6,
                        loopback_bandwidth=5e9)
    cluster = ClusterSpec(name="RICC", node=node, fabric=fabric,
                          max_nodes=max_nodes)
    # §V.B: pinned is the small-message engine on RICC (mapped PCIe access
    # on the C1060 is slower than the IB network), pipelining for large.
    policy = TransferPolicy(small_mode="pinned",
                            pipeline_threshold=1 * MiB,
                            pipeline_base="pinned")
    return SystemPreset(cluster=cluster, policy=policy,
                        mpi_eager_threshold=64 * KiB)


def custom(name: str, *, net_bandwidth: float, net_latency: float,
           gpu_gflops: float, pinned_bandwidth: float,
           mapped_bandwidth: float, copy_engines: int = 2,
           max_nodes: int = 16,
           policy: Optional[TransferPolicy] = None) -> SystemPreset:
    """Build an ad-hoc system preset for what-if studies and tests."""
    host = HostSpec(name=f"{name}-cpu", sustained_gflops=10.0,
                    memcpy_bandwidth=4.0e9)
    gpu = GpuSpec(name=f"{name}-gpu", sustained_gflops=gpu_gflops,
                  mem_bandwidth=100e9, copy_engines=copy_engines)
    pcie = PcieSpec(pinned_bandwidth=pinned_bandwidth,
                    pageable_bandwidth=pinned_bandwidth / 2,
                    mapped_bandwidth=mapped_bandwidth)
    nic = NicSpec(name=f"{name}-nic", bandwidth=net_bandwidth,
                  latency=net_latency)
    node = NodeSpec(host=host, gpu=gpu, pcie=pcie)
    fabric = FabricSpec(nic=nic)
    cluster = ClusterSpec(name=name, node=node, fabric=fabric,
                          max_nodes=max_nodes)
    return SystemPreset(cluster=cluster,
                        policy=policy or TransferPolicy())


#: Registry used by the CLI harness (``--system cichlid``).
SYSTEMS: dict[str, Callable[[], SystemPreset]] = {
    "cichlid": cichlid,
    "ricc": ricc,
}


def get_system(name: str, max_nodes: Optional[int] = None) -> SystemPreset:
    """Look up a preset by (case-insensitive) name.

    ``max_nodes`` overrides the preset's default node count — the
    mesoscale (vectorized-engine) sweeps run the paper's testbeds well
    past their physical size (1k–10k ranks), which the timing model
    supports: the fabric is a full-bisection star, so scaling the node
    count changes nothing but the number of lanes.
    """
    try:
        factory = SYSTEMS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown system {name!r}; choose from {sorted(SYSTEMS)}") from None
    return factory() if max_nodes is None else factory(max_nodes=max_nodes)
