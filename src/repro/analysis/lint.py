"""Static (AST) lint for host code using the repro/clMPI API.

Complements the runtime sanitizer: these hazards are visible in the
source without running anything.

Rules
-----
``CLM001`` *discarded coroutine*: a simulation coroutine called as a
bare statement.  Every ``enqueue_*``/``finish``/``wait``/``send``/...
in this library returns a generator that does nothing until driven with
``yield from``; discarding it silently drops the operation.

``CLM002`` *blocking call in event callback*: a function registered via
``set_callback`` calls a blocking/coroutine API or is itself a
generator.  Event callbacks run synchronously inside the simulator (as
driver callbacks run on the driver thread) and must not block — the
OpenCL spec makes calling blocking API from a callback undefined
behavior.

``CLM003`` *user event never completed*: a module creates user events
(``create_user_event``) but never calls ``set_complete``/``set_failed``
on anything — nobody will ever complete them.

``CLM004`` *request never waited*: a nonblocking operation's request is
assigned to a name that is never read again in the same scope (or the
request is discarded outright).  An unwaited request leaks and its
completion ordering is unobservable — the sanitizer's dynamic
``leaked-request`` finding, caught statically.

``CLM005`` *constant tag/size mismatch across rank branches*: the two
arms of an ``if rank == <const>`` use disjoint constant tags (or
disjoint constant byte sizes) for the sends in one arm and the receives
in the other — the operations can never match each other.

``CLM006`` *buffer touched while a transfer may be in flight*: a buffer
passed to a nonblocking send/receive is rewritten, deleted, or
released before any wait/finish in the same scope.  The transfer reads
or writes the buffer asynchronously; touching it first is a data race
(the dynamic race detector's job, caught statically).

``CLM007`` *wildcard receive feeds a collective*: data received with
``ANY_SOURCE``/``ANY_TAG`` is later passed to a collective.  Which
message satisfied the wildcard depends on the matching order, so the
collective's input diverges across schedules — exactly the class the
schedule-space verifier (``docs/verifier.md``) explores dynamically.

Locations are ``file:line:col`` (0-based column, as compilers print).
``render_json``/``render_sarif`` format findings for editors and CI.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.analysis.report import Finding

__all__ = ["lint_source", "lint_paths", "render_json", "render_sarif",
           "COROUTINE_APIS", "BLOCKING_APIS", "REQUEST_APIS"]

#: API names that return simulation coroutines (must be ``yield from``-ed)
COROUTINE_APIS = frozenset({
    "enqueue_nd_range_kernel", "enqueue_read_buffer",
    "enqueue_write_buffer", "enqueue_copy_buffer", "enqueue_map_buffer",
    "enqueue_unmap_mem_object", "enqueue_marker", "enqueue_barrier",
    "enqueue_custom", "enqueue_send_buffer", "enqueue_recv_buffer",
    "finish", "wait", "wait_for_events", "waitall", "waitany",
    "send", "recv", "sendrecv", "isend", "irecv", "send_obj", "recv_obj",
    "bcast", "ibcast_wait", "reduce", "allreduce", "alltoall", "gather",
    "allgather", "scatter", "barrier", "probe",
})

#: API names an event callback must never call (they block or yield)
BLOCKING_APIS = frozenset(COROUTINE_APIS | {"run"})

#: APIs whose return value is (or resolves to) a Request handle
REQUEST_APIS = frozenset({
    "isend", "irecv", "isend_obj", "irecv_obj", "isend_bytes",
    "irecv_bytes", "ibarrier", "ibcast", "iallreduce",
})

#: statements containing any of these calls settle outstanding requests
#: and in-flight transfers for the purposes of CLM006
WAIT_APIS = frozenset({
    "wait", "waitall", "waitany", "test", "testall", "wait_for_events",
    "finish", "barrier",
})

#: collective operations (CLM007 sinks)
COLLECTIVE_APIS = frozenset({
    "bcast", "ibcast", "reduce", "allreduce", "iallreduce", "gather",
    "allgather", "scatter", "alltoall", "reduce_scatter",
})

#: nonblocking ops that keep referencing a buffer argument after return
ASYNC_BUFFER_APIS = {
    "isend": 0, "irecv": 0, "isend_bytes": 0, "irecv_bytes": 0,
    "enqueue_send_buffer": 1, "enqueue_recv_buffer": 1,
}

#: positional index of the constant tag argument (method-call view)
SEND_TAG_POS = {"send": 2, "isend": 2, "send_obj": 2, "isend_obj": 2,
                "isend_bytes": 3, "enqueue_send_buffer": 6}
RECV_TAG_POS = {"recv": 2, "irecv": 2, "recv_obj": 1, "irecv_obj": 1,
                "irecv_bytes": 3, "enqueue_recv_buffer": 6}
#: positional index of the constant byte-size argument
SEND_SIZE_POS = {"isend_bytes": 1, "enqueue_send_buffer": 4}
RECV_SIZE_POS = {"irecv_bytes": 1, "enqueue_recv_buffer": 4}
#: positional index of the source argument of receive-ish APIs; a value
#: of None means the API defaults to ANY_SOURCE when omitted
RECV_SRC_POS = {"recv": 1, "irecv": 1, "recv_obj": 0, "irecv_obj": 0,
                "irecv_bytes": 2, "enqueue_recv_buffer": 5}
RECV_DEFAULT_WILD = frozenset({"recv", "irecv", "recv_obj", "irecv_obj"})


def _call_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _finding(filename: str, rule: str, node: ast.AST,
             message: str) -> Finding:
    line = getattr(node, "lineno", 0)
    col = getattr(node, "col_offset", 0)
    return Finding(rule, message, location=f"{filename}:{line}:{col}")


def _unwrap_call(value: ast.AST) -> Optional[ast.Call]:
    """The Call behind an expression, looking through ``yield from`` /
    ``await`` (the repro API is generator-based)."""
    if isinstance(value, (ast.YieldFrom, ast.Await)):
        value = value.value
    return value if isinstance(value, ast.Call) else None


def _arg(call: ast.Call, pos: int, kw: str) -> Optional[ast.AST]:
    for keyword in call.keywords:
        if keyword.arg == kw:
            return keyword.value
    if pos < len(call.args):
        return call.args[pos]
    return None


def _const_int(node: Optional[ast.AST]) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_int(node.operand)
        return None if inner is None else -inner
    return None


def _is_wildcard(node: Optional[ast.AST], name: str) -> bool:
    """Is this argument ``ANY_SOURCE``/``ANY_TAG`` (by name or as -1)?"""
    if isinstance(node, ast.Name):
        return node.id == name
    if isinstance(node, ast.Attribute):
        return node.attr == name
    return _const_int(node) == -1


class _Linter(ast.NodeVisitor):
    def __init__(self, filename: str):
        self.filename = filename
        self.findings: list[Finding] = []
        #: function definitions by name (all scopes), for callback lookup
        self.functions: dict[str, ast.AST] = {}
        self.callback_names: set[str] = set()
        self.callback_lambdas: list[ast.Lambda] = []
        self.user_event_sites: list[ast.Call] = []
        self.completes = 0

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(_finding(self.filename, rule, node, message))

    # -- collection ---------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.functions.setdefault(node.name, node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Expr(self, node: ast.Expr) -> None:
        # CLM001: a coroutine API called and thrown away
        if isinstance(node.value, ast.Call):
            name = _call_name(node.value)
            if name in COROUTINE_APIS:
                self._emit(
                    "CLM001", node,
                    f"result of {name}() is discarded: simulation "
                    "coroutines do nothing unless driven with "
                    "'yield from'")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name == "set_callback" and node.args:
            fn = node.args[0]
            if isinstance(fn, ast.Name):
                self.callback_names.add(fn.id)
            elif isinstance(fn, ast.Lambda):
                self.callback_lambdas.append(fn)
        elif name == "create_user_event":
            self.user_event_sites.append(node)
        elif name in ("set_complete", "set_failed"):
            self.completes += 1
        self.generic_visit(node)

    # -- per-rule sweeps ----------------------------------------------
    def _check_callback_body(self, label: str, fn: ast.AST) -> None:
        for sub in ast.walk(fn):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                self._emit(
                    "CLM002", sub,
                    f"event callback {label} yields: callbacks run "
                    "synchronously on the driver thread and cannot be "
                    "simulation coroutines")
                return
            if isinstance(sub, ast.Call):
                name = _call_name(sub)
                if name in BLOCKING_APIS:
                    self._emit(
                        "CLM002", sub,
                        f"event callback {label} calls {name}(): "
                        "blocking API from an event callback is "
                        "undefined behavior (deadlocks the driver "
                        "thread); complete a user event instead")

    def finish_module(self) -> None:
        for name in sorted(self.callback_names):
            fn = self.functions.get(name)
            if fn is not None:
                self._check_callback_body(f"{name}()", fn)
        for lam in self.callback_lambdas:
            self._check_callback_body("<lambda>", lam)
        if self.user_event_sites and not self.completes:
            for site in self.user_event_sites:
                self._emit(
                    "CLM003", site,
                    "user event is created here but this module never "
                    "calls set_complete()/set_failed() on anything — "
                    "waiters will hang forever")


# ---------------------------------------------------------------------------
# flow rules (CLM004-007): per-scope statement-order analysis
# ---------------------------------------------------------------------------
_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _compound_bodies(stmt: ast.stmt) -> list:
    """Statement lists nested inside one compound statement."""
    out = []
    for attr in ("body", "orelse", "finalbody"):
        out.append(getattr(stmt, attr, None) or [])
    for handler in getattr(stmt, "handlers", ()):
        out.append(handler.body)
    return [b for b in out if b]


def _scope_statements(body: Iterable[ast.stmt]):
    """Statements of one scope in source order, descending into
    compound statements but not into nested function/class defs."""
    for stmt in body:
        if isinstance(stmt, _DEFS):
            continue
        yield stmt
        for inner in _compound_bodies(stmt):
            yield from _scope_statements(inner)


def _scopes(tree: ast.Module):
    """``(label, body)`` for the module and every function, any depth."""
    yield "<module>", tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield f"{node.name}()", node.body


def _calls_in(stmt: ast.stmt) -> list:
    return [n for n in ast.walk(stmt) if isinstance(n, ast.Call)]


def _buffer_arg(call: ast.Call, pos: int) -> Optional[ast.AST]:
    for kw in ("buf", "view", "array"):
        found = _arg(call, pos, kw)
        if found is not None:
            return found
    return None


def _check_requests(out: list, filename: str, label: str, body) -> None:
    """CLM004: request handles assigned but never read, or discarded."""
    loads: set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                loads.add(node.id)
    assigned: list[tuple[str, str, ast.AST]] = []
    for stmt in _scope_statements(body):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            call = _unwrap_call(stmt.value)
            if call is not None and _call_name(call) in REQUEST_APIS:
                assigned.append((stmt.targets[0].id, _call_name(call),
                                 stmt))
        elif isinstance(stmt, ast.Expr):
            call = _unwrap_call(stmt.value)
            if call is None:
                continue
            api = _call_name(call)
            # a bare (un-yielded) coroutine call is already CLM001
            if api in REQUEST_APIS and (
                    isinstance(stmt.value, (ast.YieldFrom, ast.Await))
                    or api not in COROUTINE_APIS):
                out.append(_finding(
                    filename, "CLM004", stmt,
                    f"request returned by {api}() is discarded: it can "
                    "never be waited on or freed, and its completion "
                    "order is unobservable"))
    for name, api, stmt in assigned:
        if name not in loads:
            out.append(_finding(
                filename, "CLM004", stmt,
                f"request {name!r} from {api}() is never read in "
                f"{label}: never waited, tested, or freed"))


def _branch_ops(body) -> dict:
    """Constant tags/sizes of send- and recv-ish calls under ``body``."""
    ops = {"send_tags": set(), "recv_tags": set(),
           "send_sizes": set(), "recv_sizes": set()}
    for stmt in body:
        for call in _calls_in(stmt):
            name = _call_name(call)
            if name in SEND_TAG_POS:
                tag = _const_int(_arg(call, SEND_TAG_POS[name], "tag"))
                if tag is not None and tag >= 0:
                    ops["send_tags"].add(tag)
            if name in RECV_TAG_POS:
                tag = _const_int(_arg(call, RECV_TAG_POS[name], "tag"))
                if tag is not None and tag >= 0:
                    ops["recv_tags"].add(tag)
            if name in SEND_SIZE_POS:
                size = _const_int(_arg(call, SEND_SIZE_POS[name],
                                       "nbytes"))
                if size is not None:
                    ops["send_sizes"].add(size)
            if name in RECV_SIZE_POS:
                size = _const_int(_arg(call, RECV_SIZE_POS[name],
                                       "nbytes"))
                if size is not None:
                    ops["recv_sizes"].add(size)
    return ops


def _is_rank_test(test: ast.expr) -> bool:
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.Eq, ast.NotEq))):
        return False
    left = test.left
    name = left.id if isinstance(left, ast.Name) else \
        left.attr if isinstance(left, ast.Attribute) else ""
    return "rank" in name and _const_int(test.comparators[0]) is not None


def _check_rank_branches(out: list, filename: str, tree: ast.Module) -> None:
    """CLM005: disjoint constant tags/sizes across ``if rank == k``."""
    for node in ast.walk(tree):
        if not (isinstance(node, ast.If) and node.orelse
                and _is_rank_test(node.test)):
            continue
        a, b = _branch_ops(node.body), _branch_ops(node.orelse)
        for sends, recvs in ((a, b), (b, a)):
            if sends["send_tags"] and recvs["recv_tags"] and \
                    not (sends["send_tags"] & recvs["recv_tags"]):
                out.append(_finding(
                    filename, "CLM005", node,
                    f"rank branches use disjoint constant tags: sends "
                    f"{sorted(sends['send_tags'])} vs receives "
                    f"{sorted(recvs['recv_tags'])} — these operations "
                    "can never match"))
                break
        for sends, recvs in ((a, b), (b, a)):
            if sends["send_sizes"] and recvs["recv_sizes"] and \
                    min(recvs["recv_sizes"]) < max(sends["send_sizes"]):
                out.append(_finding(
                    filename, "CLM005", node,
                    f"rank branches disagree on constant message sizes: "
                    f"sends {sorted(sends['send_sizes'])}B vs receives "
                    f"{sorted(recvs['recv_sizes'])}B — the receive "
                    "buffer is smaller than the message (truncation)"))
                break


def _check_inflight(out: list, filename: str, body) -> None:
    """CLM006: buffer rewritten/released while a transfer references it."""
    inflight: dict[str, str] = {}
    for stmt in _scope_statements(body):
        calls = _calls_in(stmt)
        names = {_call_name(c) for c in calls}
        if names & WAIT_APIS:
            inflight.clear()
            continue
        hazards: list[tuple[str, ast.AST]] = []
        if isinstance(stmt, (ast.Assign, ast.AugAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            for target in targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id in inflight:
                    hazards.append((target.value.id, target))
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id in inflight:
                    hazards.append((target.id, target))
        for call in calls:
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr == "release" \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id in inflight:
                hazards.append((func.value.id, call))
        for name, where in hazards:
            out.append(_finding(
                filename, "CLM006", where,
                f"buffer {name!r} is modified/released while "
                f"{inflight[name]}() may still be reading or writing "
                "it (no wait between the transfer and this statement)"))
            inflight.pop(name, None)
        for call in calls:
            pos = ASYNC_BUFFER_APIS.get(_call_name(call))
            if pos is None:
                continue
            buf = _buffer_arg(call, pos)
            if isinstance(buf, ast.Name):
                inflight[buf.id] = _call_name(call)


def _check_wildcard_collective(out: list, filename: str, body) -> None:
    """CLM007: wildcard-received data flowing into a collective."""
    tainted: dict[str, str] = {}
    for stmt in _scope_statements(body):
        for call in _calls_in(stmt):
            name = _call_name(call)
            if name in COLLECTIVE_APIS:
                for arg in list(call.args) + [k.value
                                              for k in call.keywords]:
                    if isinstance(arg, ast.Name) and arg.id in tainted:
                        out.append(_finding(
                            filename, "CLM007", call,
                            f"{name}() input {arg.id!r} was received "
                            f"with {tainted[arg.id]}: which message "
                            "satisfied the wildcard depends on the "
                            "matching order, so the collective's input "
                            "diverges across schedules (verify with "
                            "'python -m repro.analysis verify')"))
                        del tainted[arg.id]
                continue
            if name not in RECV_SRC_POS:
                continue
            src = _arg(call, RECV_SRC_POS[name], "source")
            tag = _arg(call, RECV_TAG_POS[name], "tag")
            wild = []
            if _is_wildcard(src, "ANY_SOURCE") or (
                    src is None and name in RECV_DEFAULT_WILD):
                wild.append("ANY_SOURCE")
            if _is_wildcard(tag, "ANY_TAG"):
                wild.append("ANY_TAG")
            if not wild:
                continue
            how = f"{name}({'/'.join(wild)})"
            if name in ("recv", "irecv", "irecv_bytes"):
                buf = _buffer_arg(call, 0)
            elif name == "enqueue_recv_buffer":
                buf = _buffer_arg(call, 1)
            else:
                buf = None
            if isinstance(buf, ast.Name):
                tainted[buf.id] = how
            if name in ("recv_obj", "irecv_obj") \
                    and isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        tainted[target.id] = how
                    elif isinstance(target, ast.Tuple) and target.elts \
                            and isinstance(target.elts[0], ast.Name):
                        tainted[target.elts[0].id] = how


def _flow_lint(tree: ast.Module, filename: str) -> list:
    findings: list[Finding] = []
    for label, body in _scopes(tree):
        _check_requests(findings, filename, label, body)
        _check_inflight(findings, filename, body)
        _check_wildcard_collective(findings, filename, body)
    _check_rank_branches(findings, filename, tree)
    return findings


def _location_key(finding: Finding) -> tuple:
    path, line, col = finding.location.rsplit(":", 2)
    return (path, int(line), int(col), finding.kind, finding.message)


def lint_source(source: str, filename: str = "<string>") -> list:
    """Lint one module's source text; returns findings sorted by
    location (byte-stable across runs)."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [Finding("syntax-error", str(exc),
                        location=f"{filename}:{exc.lineno or 0}:"
                                 f"{(exc.offset or 1) - 1}")]
    linter = _Linter(filename)
    linter.visit(tree)
    linter.finish_module()
    findings = linter.findings + _flow_lint(tree, filename)
    findings.sort(key=_location_key)
    return findings


def lint_paths(paths: Iterable[Union[str, Path]]) -> list:
    """Lint files and directories (``.py`` files, recursively)."""
    findings = []
    for path in paths:
        path = Path(path)
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            findings.extend(lint_source(file.read_text(encoding="utf-8"),
                                        str(file)))
    return findings


# ---------------------------------------------------------------------------
# machine-readable output (--json / --sarif)
# ---------------------------------------------------------------------------
def _split_location(finding: Finding) -> tuple[str, int, int]:
    path, line, col = finding.location.rsplit(":", 2)
    return path, int(line), int(col)


def render_json(findings: Iterable[Finding]) -> str:
    """Findings as a JSON array with explicit file/line/col spans."""
    out = []
    for finding in findings:
        path, line, col = _split_location(finding)
        out.append({"rule": finding.kind, "severity": finding.severity,
                    "message": finding.message, "file": path,
                    "line": line, "col": col})
    return json.dumps(out, indent=2, sort_keys=True)


def render_sarif(findings: Iterable[Finding]) -> str:
    """Findings as a SARIF 2.1.0 log (GitHub/editor CI annotations)."""
    findings = list(findings)
    rules = sorted({f.kind for f in findings})
    results = []
    for finding in findings:
        path, line, col = _split_location(finding)
        results.append({
            "ruleId": finding.kind,
            "level": "error" if finding.severity == "error" else "warning",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": path},
                    "region": {"startLine": max(line, 1),
                               "startColumn": col + 1},
                },
            }],
        })
    log = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-clmpi-lint",
                "informationUri":
                    "https://example.invalid/repro/docs/sanitizer.md",
                "rules": [{"id": rule} for rule in rules],
            }},
            "results": results,
        }],
    }
    return json.dumps(log, indent=2, sort_keys=True)
