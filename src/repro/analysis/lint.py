"""Static (AST) lint for host code using the repro/clMPI API.

Complements the runtime sanitizer: these hazards are visible in the
source without running anything.

Rules
-----
``CLM001`` *discarded coroutine*: a simulation coroutine called as a
bare statement.  Every ``enqueue_*``/``finish``/``wait``/``send``/...
in this library returns a generator that does nothing until driven with
``yield from``; discarding it silently drops the operation.

``CLM002`` *blocking call in event callback*: a function registered via
``set_callback`` calls a blocking/coroutine API or is itself a
generator.  Event callbacks run synchronously inside the simulator (as
driver callbacks run on the driver thread) and must not block — the
OpenCL spec makes calling blocking API from a callback undefined
behavior.

``CLM003`` *user event never completed*: a module creates user events
(``create_user_event``) but never calls ``set_complete``/``set_failed``
on anything — nobody will ever complete them.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Union

from repro.analysis.report import Finding

__all__ = ["lint_source", "lint_paths", "COROUTINE_APIS", "BLOCKING_APIS"]

#: API names that return simulation coroutines (must be ``yield from``-ed)
COROUTINE_APIS = frozenset({
    "enqueue_nd_range_kernel", "enqueue_read_buffer",
    "enqueue_write_buffer", "enqueue_copy_buffer", "enqueue_map_buffer",
    "enqueue_unmap_mem_object", "enqueue_marker", "enqueue_barrier",
    "enqueue_custom", "enqueue_send_buffer", "enqueue_recv_buffer",
    "finish", "wait", "wait_for_events", "waitall", "waitany",
    "send", "recv", "sendrecv", "isend", "irecv", "send_obj", "recv_obj",
    "bcast", "ibcast_wait", "reduce", "allreduce", "alltoall", "gather",
    "allgather", "scatter", "barrier", "probe",
})

#: API names an event callback must never call (they block or yield)
BLOCKING_APIS = frozenset(COROUTINE_APIS | {"run"})


def _call_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


class _Linter(ast.NodeVisitor):
    def __init__(self, filename: str):
        self.filename = filename
        self.findings: list[Finding] = []
        #: function definitions by name (all scopes), for callback lookup
        self.functions: dict[str, ast.AST] = {}
        self.callback_names: set[str] = set()
        self.callback_lambdas: list[ast.Lambda] = []
        self.user_event_sites: list[ast.Call] = []
        self.completes = 0

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule, message,
            location=f"{self.filename}:{getattr(node, 'lineno', 0)}"))

    # -- collection ---------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.functions.setdefault(node.name, node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Expr(self, node: ast.Expr) -> None:
        # CLM001: a coroutine API called and thrown away
        if isinstance(node.value, ast.Call):
            name = _call_name(node.value)
            if name in COROUTINE_APIS:
                self._emit(
                    "CLM001", node,
                    f"result of {name}() is discarded: simulation "
                    "coroutines do nothing unless driven with "
                    "'yield from'")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name == "set_callback" and node.args:
            fn = node.args[0]
            if isinstance(fn, ast.Name):
                self.callback_names.add(fn.id)
            elif isinstance(fn, ast.Lambda):
                self.callback_lambdas.append(fn)
        elif name == "create_user_event":
            self.user_event_sites.append(node)
        elif name in ("set_complete", "set_failed"):
            self.completes += 1
        self.generic_visit(node)

    # -- per-rule sweeps ----------------------------------------------
    def _check_callback_body(self, label: str, fn: ast.AST) -> None:
        for sub in ast.walk(fn):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                self._emit(
                    "CLM002", sub,
                    f"event callback {label} yields: callbacks run "
                    "synchronously on the driver thread and cannot be "
                    "simulation coroutines")
                return
            if isinstance(sub, ast.Call):
                name = _call_name(sub)
                if name in BLOCKING_APIS:
                    self._emit(
                        "CLM002", sub,
                        f"event callback {label} calls {name}(): "
                        "blocking API from an event callback is "
                        "undefined behavior (deadlocks the driver "
                        "thread); complete a user event instead")

    def finish_module(self) -> None:
        for name in sorted(self.callback_names):
            fn = self.functions.get(name)
            if fn is not None:
                self._check_callback_body(f"{name}()", fn)
        for lam in self.callback_lambdas:
            self._check_callback_body("<lambda>", lam)
        if self.user_event_sites and not self.completes:
            for site in self.user_event_sites:
                self._emit(
                    "CLM003", site,
                    "user event is created here but this module never "
                    "calls set_complete()/set_failed() on anything — "
                    "waiters will hang forever")


def lint_source(source: str, filename: str = "<string>") -> list:
    """Lint one module's source text; returns findings."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [Finding("syntax-error", str(exc),
                        location=f"{filename}:{exc.lineno or 0}")]
    linter = _Linter(filename)
    linter.visit(tree)
    linter.finish_module()
    return linter.findings


def lint_paths(paths: Iterable[Union[str, Path]]) -> list:
    """Lint files and directories (``.py`` files, recursively)."""
    findings = []
    for path in paths:
        path = Path(path)
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            findings.extend(lint_source(file.read_text(encoding="utf-8"),
                                        str(file)))
    return findings
