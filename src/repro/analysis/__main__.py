"""CLI for the sanitizer, the schedule-space verifier, and lint.

Usage::

    python -m repro.analysis run script.py [script args...]
    python -m repro.analysis verify script.py [--mode dpor|naive]
        [--bound N] [--max-schedules N] [--ties] [-j N] [--out DIR]
        [--json PATH] [--replay schedule.json]
    python -m repro.analysis lint path [path...] [--json|--sarif]

``run`` executes the script with :func:`~repro.analysis.autosanitize`
active, prints the merged report, and exits 1 on findings (or 2 if the
script itself raised).  ``verify`` model-checks the script across
matching orders (see :mod:`repro.analysis.verify`), exits 1 when a
counterexample is found, and writes each failing schedule under
``--out`` for later ``--replay``.  ``lint`` statically checks the given
files or directories and exits 1 on findings.
"""

from __future__ import annotations

import argparse
import json
import runpy
import sys
import traceback
from pathlib import Path

from repro.analysis.lint import lint_paths, render_json, render_sarif
from repro.analysis.sanitizer import autosanitize
from repro.analysis.schedule import Schedule
from repro.analysis.verify import (DEFAULT_BOUND, DEFAULT_MAX_SCHEDULES,
                                   replay, verify)
from repro.errors import ReproError


def _cmd_run(args) -> int:
    script_argv = [args.script] + args.args
    old_argv, sys.argv = sys.argv, script_argv
    failed = False
    try:
        with autosanitize() as session:
            try:
                runpy.run_path(args.script, run_name="__main__")
            except SystemExit as exc:
                failed = bool(exc.code)
            except BaseException:
                traceback.print_exc()
                failed = True
    finally:
        sys.argv = old_argv
    print(session.report.render())
    if failed:
        return 2
    return 0 if session.report.ok else 1


def _cmd_verify(args) -> int:
    if args.replay:
        schedule = Schedule.load(args.replay)
        outcome = replay(args.script, schedule)
        print(outcome["report"])
        if outcome["diverged"]:
            print(f"replay {schedule.digest}: DIVERGED (program is not "
                  "schedule-deterministic, or the code changed)")
            return 2
        if outcome["error"] is not None:
            print(f"replay {schedule.digest}: "
                  f"{outcome['error_type']}: {outcome['error']}")
        failed = ((outcome["error"] is not None
                   and not outcome["error_injected"])
                  or any(f["severity"] == "error"
                         for f in outcome["findings"]))
        return 1 if failed else 0

    from repro.harness.cache import ResultCache
    cache = None if args.no_cache else ResultCache()
    try:
        result = verify(
            args.script, mode=args.mode, bound=args.bound,
            max_schedules=args.max_schedules, explore_ties=args.ties,
            jobs=args.jobs, cache=cache,
            out_dir=Path(args.out) if args.out else None)
    except ReproError as exc:
        print(f"verify: {exc}", file=sys.stderr)
        return 2
    print(result.render())
    if args.json:
        Path(args.json).write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n")
    return 0 if result.ok else 1


def _cmd_lint(args) -> int:
    findings = lint_paths(args.paths)
    if args.sarif:
        print(render_sarif(findings))
    elif args.json:
        print(render_json(findings))
    else:
        for finding in findings:
            print(finding.render())
        print(f"lint: {len(findings)} finding(s)")
    return 1 if findings else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="clMPI sanitizer: dynamic run analysis and static "
                    "lint")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a script under the sanitizer")
    p_run.add_argument("script", help="python script to execute")
    p_run.add_argument("args", nargs=argparse.REMAINDER,
                       help="arguments passed to the script")
    p_run.set_defaults(func=_cmd_run)

    p_verify = sub.add_parser(
        "verify", help="model-check a script across matching orders")
    p_verify.add_argument("script", help="python script to verify")
    p_verify.add_argument("--mode", choices=("dpor", "naive"),
                          default="dpor",
                          help="partial-order reduction (default) or "
                               "naive enumeration")
    p_verify.add_argument("--bound", type=int, default=DEFAULT_BOUND,
                          help="delay bound: max non-default choices per "
                               f"schedule (default {DEFAULT_BOUND})")
    p_verify.add_argument("--max-schedules", type=int,
                          default=DEFAULT_MAX_SCHEDULES,
                          help="cap on explored schedules (default "
                               f"{DEFAULT_MAX_SCHEDULES})")
    p_verify.add_argument("--ties", action="store_true",
                          help="also explore same-instant event ties")
    p_verify.add_argument("-j", "--jobs", type=int, default=1,
                          help="parallel exploration workers")
    p_verify.add_argument("--no-cache", action="store_true",
                          help="bypass the result cache")
    p_verify.add_argument("--out", metavar="DIR",
                          help="write counterexample schedules here")
    p_verify.add_argument("--json", metavar="PATH",
                          help="write the full result as JSON")
    p_verify.add_argument("--replay", metavar="SCHEDULE",
                          help="replay a serialized schedule instead of "
                               "exploring")
    p_verify.set_defaults(func=_cmd_verify)

    p_lint = sub.add_parser("lint", help="statically lint host code")
    p_lint.add_argument("paths", nargs="+",
                        help="files or directories to lint")
    p_lint.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    p_lint.add_argument("--sarif", action="store_true",
                        help="emit findings as SARIF 2.1.0")
    p_lint.set_defaults(func=_cmd_lint)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
