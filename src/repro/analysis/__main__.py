"""CLI for the sanitizer and lint.

Usage::

    python -m repro.analysis run script.py [script args...]
    python -m repro.analysis lint path [path...]

``run`` executes the script with :func:`~repro.analysis.autosanitize`
active, prints the merged report, and exits 1 on findings (or 2 if the
script itself raised).  ``lint`` statically checks the given files or
directories and exits 1 on findings.
"""

from __future__ import annotations

import argparse
import runpy
import sys
import traceback

from repro.analysis.lint import lint_paths
from repro.analysis.sanitizer import autosanitize


def _cmd_run(args) -> int:
    script_argv = [args.script] + args.args
    old_argv, sys.argv = sys.argv, script_argv
    failed = False
    try:
        with autosanitize() as session:
            try:
                runpy.run_path(args.script, run_name="__main__")
            except SystemExit as exc:
                failed = bool(exc.code)
            except BaseException:
                traceback.print_exc()
                failed = True
    finally:
        sys.argv = old_argv
    print(session.report.render())
    if failed:
        return 2
    return 0 if session.report.ok else 1


def _cmd_lint(args) -> int:
    findings = lint_paths(args.paths)
    for finding in findings:
        print(finding.render())
    print(f"lint: {len(findings)} finding(s)")
    return 1 if findings else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="clMPI sanitizer: dynamic run analysis and static "
                    "lint")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a script under the sanitizer")
    p_run.add_argument("script", help="python script to execute")
    p_run.add_argument("args", nargs=argparse.REMAINDER,
                       help="arguments passed to the script")
    p_run.set_defaults(func=_cmd_run)

    p_lint = sub.add_parser("lint", help="statically lint host code")
    p_lint.add_argument("paths", nargs="+",
                        help="files or directories to lint")
    p_lint.set_defaults(func=_cmd_lint)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
