"""The live monitor installed on ``Environment.monitor``.

The :class:`Recorder` implements every ``on_*`` hook the instrumented
layers call (``repro.ocl``, ``repro.mpi``, ``repro.clmpi``,
``repro.launcher``) and turns the stream of lifecycle notifications into

* an :class:`~repro.analysis.graph.ExecutionGraph` with happens-before
  edges (wait lists, in-order queue position, host sync points, MPI
  request → bridged event),
* per-buffer access interval lists for the race detector,
* entity tables (commands, requests, MPI operations, processes) that the
  deadlock and leak detectors interrogate at quiescence,
* direct findings for hazards that are conclusive the moment they happen
  (API misuse, exceptions escaping event callbacks, failed events).

Everything is keyed by ``id(entity)``; the recorder keeps a strong
reference to every entity it tracks so CPython can never recycle an id
for a different object mid-run.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.analysis import graph as G
from repro.analysis.graph import ExecutionGraph
from repro.analysis.report import Finding, WARNING

__all__ = ["Recorder"]


class Recorder:
    """Builds the execution model of one environment's run."""

    def __init__(self, env):
        self.env = env
        self.graph = ExecutionGraph()
        #: findings that are conclusive at notification time
        self.direct_findings: list[Finding] = []
        #: fault-injection / tolerance records (see Recorder.on_fault)
        self.fault_records: list[dict] = []
        # -- entity tables (ids stay valid: _keep pins every object) -----
        self._keep: list[Any] = []
        self._event_node: dict[int, int] = {}      # id(CLEvent) -> nid
        self._by_completion: dict[int, int] = {}   # id(sim Event) -> nid
        self._commands: dict[int, Any] = {}        # nid -> Command
        self._queues: dict[int, Any] = {}          # id(queue) -> queue
        self._queue_last: dict[int, int] = {}      # id(queue) -> last nid
        self._proc_sync: dict[int, int] = {}       # id(proc) -> sync nid
        self._proc_cmd: dict[int, int] = {}        # id(proc) -> command nid
        self._proc_owner: dict[int, int] = {}      # id(proc) -> transfer nid
        self._accesses: dict[int, list] = {}       # id(buf) -> access list
        self._buffers: dict[int, Any] = {}         # id(buf) -> Buffer
        self._requests: dict[int, tuple] = {}      # id(req) -> (req, nid)
        self._bridged_requests: set[int] = set()   # id(req) bridged to events
        self._comm_states: dict[int, Any] = {}     # id(state) -> _CommState
        self.rank_procs: list[tuple] = []          # [(rank, Process)]

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _pin(self, obj: Any) -> None:
        self._keep.append(obj)

    def _node_of_event(self, ev) -> Optional[int]:
        return self._event_node.get(id(ev))

    def _active_parent(self) -> Optional[int]:
        """The command/transfer node the active process is executing, if
        any (attributes MPI operations to their enclosing command)."""
        proc = self.env.active_process
        if proc is None:
            return None
        nid = self._proc_cmd.get(id(proc))
        if nid is not None:
            cmd = self._commands.get(nid)
            if cmd is not None and not cmd.event.is_complete:
                return nid
        return self._proc_owner.get(id(proc))

    def _note_comm(self, comm) -> None:
        state = comm._state
        self._comm_states.setdefault(id(state), state)

    def node(self, nid: int) -> G.Node:
        return self.graph.nodes[nid]

    # ------------------------------------------------------------------
    # OpenCL events
    # ------------------------------------------------------------------
    def on_event_created(self, ev) -> None:
        from repro.ocl.event import UserEvent
        kind = G.USER_EVENT if isinstance(ev, UserEvent) else G.COMMAND
        node = self.graph.add_node(kind, ev.label, t=self.env.now)
        self._pin(ev)
        self._event_node[id(ev)] = node.nid
        self._by_completion[id(ev.completion)] = node.nid
        node.extra["event"] = ev
        if kind == G.USER_EVENT:
            node.extra["creator"] = self.env.active_process

    def on_event_status(self, ev, status) -> None:
        from repro.ocl.enums import CommandStatus
        nid = self._node_of_event(ev)
        if nid is None:
            return
        node = self.node(nid)
        if status == CommandStatus.RUNNING:
            node.started = True
        elif status == CommandStatus.COMPLETE:
            node.completed = True

    def on_event_failed(self, ev, exc) -> None:
        nid = self._node_of_event(ev)
        if nid is not None:
            node = self.node(nid)
            node.completed = True
            node.failed = exc
            witness = [node.describe()]
        else:  # pragma: no cover - event predates the monitor
            witness = []
        if getattr(exc, "injected", False):
            # Deliberately injected by repro.faults: report it (the user
            # wants to see what the plan did) but as a warning — it is
            # the experiment, not a program bug.  The causal flow id (if
            # the failing transfer carried one) locates the affected
            # message chain on the exported Perfetto timeline.
            flow = getattr(exc, "flow", 0)
            where = f" [flow {flow}]" if flow else ""
            self.direct_findings.append(Finding(
                "injected-fault",
                f"event {ev.label!r} failed by fault injection: "
                f"{exc}{where}",
                severity=WARNING, witness=witness))
            return
        self.direct_findings.append(Finding(
            "event-failed",
            f"event {ev.label!r} failed: {exc}",
            witness=witness))

    def on_fault(self, record: dict) -> None:
        """A fault injector (or tolerance layer) reports one occurrence.

        Injected faults are experiment input, not hazards: they are
        tallied in the stats, not turned into findings.
        """
        self.fault_records.append(record)

    def on_callback_error(self, ev, exc) -> None:
        self.direct_findings.append(Finding(
            "callback-error",
            f"callback of event {ev.label!r} raised "
            f"{type(exc).__name__}: {exc} (captured on event.error; "
            "callbacks must not raise)"))

    def on_misuse(self, kind: str, message: str, entity=None) -> None:
        self.direct_findings.append(Finding(f"misuse:{kind}", message))

    def on_host_sync(self, events) -> None:
        """The active host process blocked until ``events`` completed:
        everything it does afterwards happens-after those events."""
        proc = self.env.active_process
        if proc is None:
            return
        preds = [self._event_node[id(e)] for e in events
                 if id(e) in self._event_node]
        if not preds:
            return
        node = self.graph.add_node(
            G.SYNC, f"{getattr(proc, 'name', 'host')}@t={self.env.now:.6g}",
            t=self.env.now)
        self._pin(proc)
        for p in preds:
            self.graph.add_hb(p, node.nid)
        self.graph.add_hb(self._proc_sync.get(id(proc)), node.nid)
        self._proc_sync[id(proc)] = node.nid

    # ------------------------------------------------------------------
    # OpenCL commands
    # ------------------------------------------------------------------
    def on_command_enqueued(self, queue, cmd) -> None:
        nid = self._node_of_event(cmd.event)
        if nid is None:  # pragma: no cover - event predates the monitor
            return
        node = self.node(nid)
        node.label = cmd.label
        node.detail = f"on queue {queue.name!r}"
        node.extra["cmd"] = cmd
        node.extra["queue"] = queue.name
        self._commands[nid] = cmd
        self._pin(cmd)
        self._queues.setdefault(id(queue), queue)
        # happens-before: the wait list ...
        wait_nids = [self._event_node[id(e)] for e in cmd.wait_events
                     if id(e) in self._event_node]
        for w in wait_nids:
            self.graph.add_hb(w, nid)
        node.extra["wait"] = wait_nids
        # ... the in-order predecessor ...
        if queue.in_order:
            pred = self._queue_last.get(id(queue))
            self.graph.add_hb(pred, nid)
            node.extra["queue_pred"] = pred
            self._queue_last[id(queue)] = nid
        # ... and the enqueuing thread's last sync point.
        proc = self.env.active_process
        if proc is not None:
            self.graph.add_hb(self._proc_sync.get(id(proc)), nid)
        # buffer access intervals for the race detector
        for buf, offset, size, mode in cmd.meta.get("accesses") or ():
            self._buffers.setdefault(id(buf), buf)
            self._accesses.setdefault(id(buf), []).append(
                (nid, offset, size, mode))

    def on_command_running(self, cmd) -> None:
        proc = self.env.active_process
        nid = self._node_of_event(cmd.event)
        if proc is not None and nid is not None:
            self._proc_cmd[id(proc)] = nid
            self._pin(proc)

    # ------------------------------------------------------------------
    # MPI point-to-point
    # ------------------------------------------------------------------
    def on_mpi_send(self, comm, envelope, completion, matched) -> None:
        self._note_comm(comm)
        node = self.graph.add_node(
            G.MPI_SEND,
            f"send r{envelope.src}->r{envelope.dst} tag={envelope.tag}",
            f"{envelope.protocol} {envelope.nbytes}B on {comm.name}",
            t=self.env.now)
        self._pin(envelope)
        node.parent = self._active_parent()
        node.extra.update(envelope=envelope, completion=completion,
                          comm=comm.name, rank=envelope.src,
                          peer=envelope.dst)
        self._by_completion[id(completion)] = node.nid

    def on_mpi_recv(self, comm, posted, envelope) -> None:
        self._note_comm(comm)
        src = "any" if posted.source < 0 else f"r{posted.source}"
        tag = "any" if posted.tag < 0 else posted.tag
        node = self.graph.add_node(
            G.MPI_RECV,
            f"recv r{comm.rank}<-{src} tag={tag}",
            f"on {comm.name}", t=self.env.now)
        self._pin(posted)
        node.parent = self._active_parent()
        node.extra.update(posted=posted, completion=posted.completion,
                          comm=comm.name, rank=comm.rank,
                          peer=posted.source)
        self._by_completion[id(posted.completion)] = node.nid

    def on_request_created(self, req) -> None:
        self._pin(req)
        self._requests[id(req)] = (req, self._by_completion.get(
            id(req.completion)))

    # ------------------------------------------------------------------
    # clMPI
    # ------------------------------------------------------------------
    def on_event_bridge(self, request, uev) -> None:
        """clCreateEventFromMPIRequest: the request's completion
        happens-before the user event's completion."""
        unid = self._node_of_event(uev)
        if unid is None:  # pragma: no cover
            return
        rnid = self._by_completion.get(id(request.completion))
        node = self.node(unid)
        node.extra["bridge"] = rnid
        node.detail = f"bridges {request.label}"
        self._bridged_requests.add(id(request))
        if rnid is not None:
            self.graph.add_hb(rnid, unid)

    def on_clmpi_host_transfer(self, req, proc, kind, comm, peer, tag,
                               nbytes) -> None:
        self._note_comm(comm)
        node = self.graph.add_node(
            G.CLMPI_TRANSFER,
            f"clmpi.host-{kind} r{comm.rank}{'->' if kind == 'send' else '<-'}"
            f"r{peer} tag={tag}",
            f"{nbytes}B on {comm.name}", t=self.env.now)
        self._pin(proc)
        node.extra.update(proc=proc, completion=proc, comm=comm.name,
                          rank=comm.rank, peer=peer, op=kind)
        self._by_completion[id(proc)] = node.nid
        self._proc_owner[id(proc)] = node.nid
        self._requests[id(req)] = (req, node.nid)

    def on_transfer(self, kind, peer, tag, desc) -> None:
        """Engine choice made: annotate the enclosing command/transfer."""
        nid = self._active_parent()
        if nid is not None:
            node = self.node(nid)
            if "engine" not in node.extra:
                node.extra["engine"] = desc.mode
                node.detail = (f"{node.detail}, engine={desc.mode}"
                               if node.detail else f"engine={desc.mode}")

    # ------------------------------------------------------------------
    # launcher
    # ------------------------------------------------------------------
    def on_rank_process(self, rank, proc) -> None:
        self._pin(proc)
        self.rank_procs.append((rank, proc))

    # ------------------------------------------------------------------
    # detector-facing accessors
    # ------------------------------------------------------------------
    def buffer_accesses(self):
        """``[(Buffer, [(nid, offset, size, mode), ...]), ...]``"""
        return [(self._buffers[key], accs)
                for key, accs in self._accesses.items()]

    def pending_commands(self):
        """Incomplete commands: ``[(nid, Command), ...]``."""
        return [(nid, cmd) for nid, cmd in self._commands.items()
                if not cmd.event.is_complete]

    def queue_of(self, nid: int) -> str:
        return self.node(nid).extra.get("queue", "?")

    def incomplete_user_events(self):
        """``[(nid, UserEvent), ...]`` never completed/failed."""
        out = []
        for node in self.graph.nodes:
            if node.kind == G.USER_EVENT and not node.completed:
                out.append((node.nid, node.extra["event"]))
        return out

    def pending_ops(self):
        """MPI/clMPI operation nodes whose completion never fired."""
        out = []
        for node in self.graph.nodes:
            if node.kind not in (G.MPI_SEND, G.MPI_RECV, G.CLMPI_TRANSFER):
                continue
            completion = node.extra["completion"]
            if not completion.triggered:
                out.append(node.nid)
        return out

    def unconsumed_requests(self):
        """Completed requests never waited/tested on (and not bridged)."""
        out = []
        for req, nid in self._requests.values():
            if (req.done and not req.consumed
                    and id(req) not in self._bridged_requests):
                out.append((req, nid))
        return out

    def endpoint_sweep(self):
        """Ground truth from every communicator's matching engines:
        ``[(comm_name, rank, unmatched_envelopes, pending_recvs)]``.

        Revoked communicators are skipped: ULFM revocation deliberately
        abandons in-flight traffic so survivors can shrink away from the
        dead ranks — those stranded envelopes/receives are the *recovery
        mechanism working*, not deadlocks or leaks.
        """
        out = []
        for state in self._comm_states.values():
            if getattr(state, "revoked", False):
                continue
            for rank, ep in enumerate(state.endpoints):
                out.append((state.name, rank, ep.unmatched_envelope_list(),
                            ep.pending_recv_list()))
        return out

    def node_for_sim_event(self, event) -> Optional[int]:
        """Resolve a raw simulation event (or Process) to a graph node."""
        return self._by_completion.get(id(event))

    def stats(self) -> dict:
        out = {
            "nodes": len(self.graph),
            "hb_edges": sum(len(p) for p in self.graph.preds),
            "commands": len(self._commands),
            "buffers": len(self._buffers),
            "requests": len(self._requests),
            "faults": len(self.fault_records),
        }
        metrics = getattr(self.env, "metrics", None)
        if metrics is not None:
            out["metrics"] = metrics.snapshot()
        return out
