"""Schedule-space verifier: stateless model checking for the DES stack.

``verify()`` runs a program repeatedly, each time replaying a recorded
*choice prefix* (:mod:`repro.analysis.schedule`) and defaulting past it,
and runs the sanitizer's detectors on every explored schedule.  The
explored choice points are

* **MPI match order** — which candidate envelope satisfies a receive
  when several senders are matchable at one virtual instant (the
  wildcard-receive races the paper's bridge thread is exposed to), and
* **event ties** (opt-in, ``explore_ties=True``) — which
  same-``(time, priority)`` simulator event fires first.

Exploration is a prefix-tree search in breadth-first waves (so runs are
independent, cacheable, and parallelizable through
:func:`repro.harness.parallel.sweep` with byte-identical results at any
``-j``).  Two reductions keep the tree tractable:

* **Dynamic partial-order reduction** (``mode="dpor"``): match-order
  alternatives are always dependent (they decide happens-before edges)
  and are explored fully, but a tie alternative is pruned sleep-set
  style when the two racing processes belong to ranks whose operations
  cannot be match-dependent in the executed run — i.e. unless *both*
  ranks touched a wildcard receive (posted one, or sent to a rank that
  posted one), swapping their same-instant events commutes.
* **Delay bounding**: a schedule's weight is its number of non-default
  choices; schedules heavier than ``bound`` are cut off.  This is the
  fallback that keeps large programs explorable — iteratively raising
  the bound approaches exhaustive coverage.

A schedule *fails* when a non-injected exception escapes the program or
any detector reports an error-severity finding; failures serialize as
content-addressed :class:`~repro.analysis.schedule.Schedule` artifacts
that :func:`replay` reproduces byte-identically.
"""

from __future__ import annotations

import re
import runpy
import sys
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.analysis import graph as G
from repro.analysis.recorder import Recorder
from repro.analysis.report import ERROR, Report
from repro.analysis.sanitizer import analyze
from repro.analysis.schedule import (Choice, RecordingPolicy, Schedule,
                                     ScheduleDivergence)
from repro.errors import ReproError
from repro.harness.parallel import is_error_record, sweep
from repro.sim import Environment

__all__ = ["verify", "replay", "VerifyResult", "verify_point",
           "DEFAULT_BOUND", "DEFAULT_MAX_SCHEDULES"]

#: default delay bound (max non-default choices per schedule)
DEFAULT_BOUND = 3
#: default cap on explored schedules (exhaustion guard for big programs)
DEFAULT_MAX_SCHEDULES = 256

Program = Union[Callable[[], object], str, Path]


# ----------------------------------------------------------------------
# single-schedule execution
# ----------------------------------------------------------------------
def _execute(program: Callable[[], object], prefix: Sequence[Choice],
             explore_ties: bool, detectors: dict) -> dict:
    """Run ``program`` once under a recording policy; return a
    JSON-able outcome."""
    from repro.faults.injector import injected

    policy = RecordingPolicy(prefix, explore_ties=explore_ties)
    recorders: list[Recorder] = []
    envs: list[Environment] = []
    original = Environment.__init__

    def patched(self, *args, **kwargs):
        original(self, *args, **kwargs)
        self.schedule_policy = policy
        envs.append(self)
        recorder = Recorder(self)
        self.monitor = recorder
        recorders.append(recorder)

    Environment.__init__ = patched
    error: Optional[BaseException] = None
    diverged = False
    try:
        try:
            program()
        except ScheduleDivergence:
            diverged = True
        except SystemExit as exc:
            if exc.code:
                error = exc
        except Exception as exc:
            error = exc
    finally:
        Environment.__init__ = original
        for env in envs:
            env.schedule_policy = None
        for recorder in recorders:
            if recorder.env.monitor is recorder:
                recorder.env.monitor = None

    if not diverged and not policy.followed_prefix:
        diverged = True

    report = Report()
    for recorder in recorders:
        rep = analyze(recorder, **detectors)
        report.findings.extend(rep.findings)
        for key, value in rep.stats.items():
            if isinstance(value, int):
                report.stats[key] = report.stats.get(key, 0) + value
    report.stats["environments"] = len(recorders)

    return {
        "trace": [c.to_dict() for c in policy.trace],
        "diverged": diverged,
        "error": None if error is None else str(error),
        "error_type": None if error is None else type(error).__name__,
        "error_injected": error is not None and injected(error),
        "findings": [{"kind": f.kind, "severity": f.severity,
                      "message": f.message, "location": f.location}
                     for f in report.findings],
        "report": report.render(),
        "racy_ranks": sorted(_racy_ranks(recorders)),
    }


def _racy_ranks(recorders: Sequence[Recorder]) -> set[int]:
    """Ranks whose operations can be match-order dependent this run:
    ranks that posted a wildcard receive, plus ranks that sent to one
    of those."""
    wild: set[int] = set()
    for recorder in recorders:
        for node in recorder.graph.nodes:
            if node.kind != G.MPI_RECV:
                continue
            posted = node.extra.get("posted")
            if posted is not None and (posted.source < 0 or posted.tag < 0):
                rank = node.extra.get("rank")
                if rank is not None:
                    wild.add(rank)
    racy = set(wild)
    for recorder in recorders:
        for node in recorder.graph.nodes:
            if node.kind == G.MPI_SEND and node.extra.get("peer") in wild:
                rank = node.extra.get("rank")
                if rank is not None:
                    racy.add(rank)
    return racy


def _script_program(script: str) -> Callable[[], object]:
    def program() -> None:
        old_argv, sys.argv = sys.argv, [script]
        try:
            runpy.run_path(script, run_name="__main__")
        finally:
            sys.argv = old_argv
    return program


def verify_point(spec: dict) -> dict:
    """Sweep worker: execute one schedule prefix of one script.

    ``spec`` carries ``script`` (path), ``script_sha`` (content hash —
    part of the spec so the result cache invalidates when the script
    changes), ``prefix`` (choice dicts), ``ties`` and ``detectors``.
    """
    prefix = tuple(Choice.from_dict(c) for c in spec["prefix"])
    return _execute(_script_program(spec["script"]), prefix,
                    bool(spec["ties"]), dict(spec["detectors"]))


# ----------------------------------------------------------------------
# DPOR tie pruning
# ----------------------------------------------------------------------
_TIE_RANK = re.compile(r"^rank(\d+)\.")


def _tie_independent(label_a: str, label_b: str, racy) -> bool:
    """Can the two tied events commute (swap without changing any
    detector-visible outcome)?

    Conservative: only claims independence when both labels resolve to
    rank processes and the pair cannot both be on the match-dependent
    side of a wildcard race.  Unknown labels (bare simulator events,
    engine internals) stay dependent and get explored.
    """
    match_a = _TIE_RANK.match(label_a)
    match_b = _TIE_RANK.match(label_b)
    if match_a is None or match_b is None:
        return False
    rank_a, rank_b = int(match_a.group(1)), int(match_b.group(1))
    if rank_a == rank_b:
        return True  # program order on one rank already serializes them
    return not (rank_a in racy and rank_b in racy)


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class VerifyResult:
    """Outcome of one :func:`verify` exploration."""

    ok: bool = True
    mode: str = "dpor"
    bound: int = DEFAULT_BOUND
    max_schedules: int = DEFAULT_MAX_SCHEDULES
    ties: bool = False
    #: schedules actually executed
    explored: int = 0
    #: alternatives pruned by DPOR independence
    pruned_independent: int = 0
    #: alternatives pruned by the delay bound
    pruned_bound: int = 0
    #: runs that diverged from their prefix (nondeterministic program)
    divergent: int = 0
    #: failing schedules: [{digest, schedule, error, findings, report}]
    counterexamples: list = field(default_factory=list)
    #: True when the frontier drained before hitting ``max_schedules``
    exhausted: bool = True

    @property
    def reduction_factor(self) -> float:
        """How much smaller than naive enumeration the explored set was
        thanks to DPOR (1.0 = no reduction)."""
        if self.explored == 0:
            return 1.0
        return (self.explored + self.pruned_independent) / self.explored

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "mode": self.mode,
            "bound": self.bound,
            "max_schedules": self.max_schedules,
            "ties": self.ties,
            "explored": self.explored,
            "pruned_independent": self.pruned_independent,
            "pruned_bound": self.pruned_bound,
            "divergent": self.divergent,
            "exhausted": self.exhausted,
            "reduction_factor": round(self.reduction_factor, 4),
            "counterexamples": self.counterexamples,
        }

    def render(self) -> str:
        verdict = "ok" if self.ok else \
            f"{len(self.counterexamples)} counterexample(s)"
        lines = [
            f"verify: {verdict} ({self.mode}, bound={self.bound}"
            f"{', ties' if self.ties else ''}): explored "
            f"{self.explored} schedule(s), pruned "
            f"{self.pruned_independent} independent + "
            f"{self.pruned_bound} over-bound, reduction "
            f"{self.reduction_factor:.2f}x"
            f"{'' if self.exhausted else ' [frontier truncated]'}"
        ]
        if self.divergent:
            lines.append(f"  {self.divergent} run(s) diverged from their "
                         "schedule (program is not schedule-deterministic)")
        for cex in self.counterexamples:
            what = cex["error"] or "; ".join(
                f["message"] for f in cex["findings"]
                if f["severity"] == ERROR) or "findings"
            lines.append(f"  counterexample {cex['digest']}: {what}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the explorer
# ----------------------------------------------------------------------
def _is_failure(outcome: dict) -> bool:
    if outcome["error"] is not None and not outcome["error_injected"]:
        return True
    return any(f["severity"] == ERROR for f in outcome["findings"])


def verify(program: Program, *, mode: str = "dpor",
           bound: int = DEFAULT_BOUND,
           max_schedules: int = DEFAULT_MAX_SCHEDULES,
           explore_ties: bool = False, stop_on_first: bool = False,
           deadlocks: bool = True, races: bool = True, leaks: bool = True,
           jobs: int = 1, cache=None,
           out_dir: Optional[Path] = None) -> VerifyResult:
    """Explore the schedule space of ``program``.

    ``program`` is a zero-argument callable or a script path; script
    targets can run in parallel (``jobs > 1``) and through the result
    cache.  ``mode`` is ``"dpor"`` (default) or ``"naive"`` (explore
    every alternative — the baseline DPOR is measured against).
    """
    if mode not in ("dpor", "naive"):
        raise ReproError(f"unknown verify mode {mode!r}")
    detectors = dict(deadlocks=deadlocks, races=races, leaks=leaks)

    script: Optional[str] = None
    script_sha = ""
    if isinstance(program, (str, Path)):
        script = str(program)
        script_sha = sha256(Path(script).read_bytes()).hexdigest()
    elif jobs > 1:
        raise ReproError("verify(jobs>1) needs a script path target "
                         "(callables cannot cross process boundaries)")

    def run_wave(prefixes: list[tuple]) -> list[dict]:
        if script is None:
            return [_execute(program, prefix, explore_ties, detectors)
                    for prefix in prefixes]
        specs = [{"script": script, "script_sha": script_sha,
                  "prefix": [c.to_dict() for c in prefix],
                  "ties": explore_ties, "detectors": detectors}
                 for prefix in prefixes]
        outcomes = sweep(verify_point, specs, jobs=jobs, cache=cache,
                         kind="verify")
        for outcome in outcomes:
            if is_error_record(outcome):
                raise ReproError(
                    f"verifier worker crashed: {outcome['error']}")
        return outcomes

    result = VerifyResult(mode=mode, bound=bound,
                          max_schedules=max_schedules, ties=explore_ties)
    frontier: list[tuple] = [()]
    while frontier and result.explored < max_schedules:
        room = max_schedules - result.explored
        wave, frontier = frontier[:room], frontier[room:]
        outcomes = run_wave(wave)
        for prefix, outcome in zip(wave, outcomes):
            result.explored += 1
            if outcome["diverged"]:
                result.divergent += 1
                continue
            trace = tuple(Choice.from_dict(c) for c in outcome["trace"])
            if _is_failure(outcome):
                schedule = Schedule(choices=trace, ties=explore_ties)
                cex = {
                    "digest": schedule.digest,
                    "schedule": schedule.to_dict(),
                    "error": outcome["error"],
                    "findings": [f for f in outcome["findings"]
                                 if f["severity"] == ERROR],
                    "report": outcome["report"],
                }
                result.counterexamples.append(cex)
                result.ok = False
                if out_dir is not None:
                    schedule.save(out_dir)
                if stop_on_first:
                    result.exhausted = False
                    return result
                continue  # failing schedules are not expanded
            racy = set(outcome["racy_ranks"])
            for i in range(len(prefix), len(trace)):
                chosen = trace[i]
                for alt in range(len(chosen.options)):
                    if alt == chosen.index:
                        continue
                    if (mode == "dpor" and chosen.kind == "tie"
                            and _tie_independent(
                                chosen.options[chosen.index],
                                chosen.options[alt], racy)):
                        result.pruned_independent += 1
                        continue
                    weight = sum(1 for c in trace[:i] if c.index != 0) + 1
                    if weight > bound:
                        result.pruned_bound += 1
                        continue
                    frontier.append(trace[:i] + (Choice(
                        point=chosen.point, index=alt, kind=chosen.kind,
                        options=chosen.options),))
    if frontier:
        result.exhausted = False
    return result


def replay(program: Program, schedule: Schedule, *, deadlocks: bool = True,
           races: bool = True, leaks: bool = True) -> dict:
    """Re-execute ``program`` under a serialized schedule.

    Returns the raw outcome dict (trace, error, findings, report);
    replaying the same schedule twice yields byte-identical outcomes
    for a schedule-deterministic program.
    """
    if isinstance(program, (str, Path)):
        program = _script_program(str(program))
    return _execute(program, schedule.choices, schedule.ties,
                    dict(deadlocks=deadlocks, races=races, leaks=leaks))
