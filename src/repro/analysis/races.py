"""Data-race detection over buffer access intervals.

Every command that touches a :class:`~repro.ocl.buffer.Buffer` declares
its access at enqueue time — transfers intrinsically
(``read_buffer``/``write_buffer``/``copy_buffer`` and the clMPI
``enqueue_send_buffer``/``enqueue_recv_buffer`` know their byte ranges),
kernels via the opt-in :attr:`~repro.ocl.kernel.Kernel.arg_access`
declaration (kernels without one are not checked: the analysis cannot
know which bytes a kernel touches, and assuming "all of them" would
flag the paper's deliberate compute/halo-transfer overlap as racy).

Two accesses race when they touch overlapping byte ranges of the same
buffer, at least one writes, and neither command *happens-before* the
other — no chain of wait-list events, in-order queue positions, or host
synchronization points orders them.  The detector answers the
happens-before question with the recorder's graph (bitset reachability;
node order is topological).
"""

from __future__ import annotations

from repro.analysis.report import Finding

__all__ = ["detect_races"]

#: beyond this graph size the bitset pass is skipped (quadratic memory);
#: recorded in report stats so the omission is visible
MAX_NODES_FOR_RACES = 20_000

#: at most this many races are reported per buffer
_PER_BUFFER_CAP = 4


def _conflicts(a_mode: str, b_mode: str) -> bool:
    return "w" in a_mode or "w" in b_mode


def _overlaps(a_off: int, a_size: int, b_off: int, b_size: int) -> bool:
    return a_off < b_off + b_size and b_off < a_off + a_size


def detect_races(rec, stats: dict) -> list:
    """Pairwise-check all declared accesses; returns race findings."""
    per_buffer = rec.buffer_accesses()
    candidates = []
    for buf, accs in per_buffer:
        for i in range(len(accs)):
            nid_a, off_a, size_a, mode_a = accs[i]
            for j in range(i + 1, len(accs)):
                nid_b, off_b, size_b, mode_b = accs[j]
                if nid_a == nid_b:
                    continue  # one command, two args (e.g. copy src=dst)
                if not _conflicts(mode_a, mode_b):
                    continue
                if not _overlaps(off_a, size_a, off_b, size_b):
                    continue
                candidates.append((buf, accs[i], accs[j]))
    stats["race_candidates"] = len(candidates)
    if not candidates:
        return []
    if len(rec.graph) > MAX_NODES_FOR_RACES:  # pragma: no cover
        stats["races_skipped"] = f"graph too large ({len(rec.graph)} nodes)"
        return []

    bits = rec.graph.ancestor_bits()
    findings = []
    reported: dict[int, int] = {}
    for buf, (nid_a, off_a, size_a, mode_a), \
            (nid_b, off_b, size_b, mode_b) in candidates:
        if (rec.graph.happens_before(nid_a, nid_b, bits)
                or rec.graph.happens_before(nid_b, nid_a, bits)):
            continue
        count = reported.get(id(buf), 0)
        reported[id(buf)] = count + 1
        if count >= _PER_BUFFER_CAP:
            continue
        a, b = rec.node(nid_a), rec.node(nid_b)
        word = {True: "write", False: "read"}
        findings.append(Finding(
            "data-race",
            f"buffer {buf.name!r}: unordered accesses to overlapping "
            f"byte ranges (no happens-before edge in either direction)",
            witness=[
                f"{word['w' in mode_a]} of [{off_a}, {off_a + size_a}) "
                f"by {a.describe()}",
                f"{word['w' in mode_b]} of [{off_b}, {off_b + size_b}) "
                f"by {b.describe()}",
                "order them with an event wait list, an in-order queue, "
                "or a host-side wait",
            ]))
    for key, count in reported.items():
        if count > _PER_BUFFER_CAP:
            findings.append(Finding(
                "data-race",
                f"... and {count - _PER_BUFFER_CAP} more race pair(s) on "
                "the same buffer (suppressed)",
                severity="warning"))
    return findings
