"""Findings and reports produced by the sanitizer detectors."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding", "Report"]

#: severities
ERROR = "error"
WARNING = "warning"


@dataclass
class Finding:
    """One diagnosed hazard.

    ``kind`` is a stable machine-readable tag (``deadlock-cycle``,
    ``unmatched-recv``, ``data-race``, ``leaked-user-event``,
    ``callback-error``, ``misuse:...``, lint rule ids, ...).  ``witness``
    is the labeled chain of entities that substantiates the finding,
    outermost first.
    """

    kind: str
    message: str
    severity: str = ERROR
    witness: list = field(default_factory=list)
    #: optional source location for lint findings ("file:line:col")
    location: str = ""
    #: sort key fragment ``(sim-time, entity id)`` set by detectors so
    #: reports render byte-stable across runs (see ``analyze``)
    order: tuple = field(default_factory=tuple, repr=False)

    def render(self) -> str:
        head = f"[{self.severity}] {self.kind}: {self.message}"
        if self.location:
            head = f"{self.location}: {head}"
        lines = [head]
        lines.extend(f"    {step}" for step in self.witness)
        return "\n".join(lines)


@dataclass
class Report:
    """The aggregate result of one sanitized run."""

    findings: list = field(default_factory=list)
    #: run statistics (node/edge/access counts, detectors that ran)
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def kinds(self) -> list:
        return [f.kind for f in self.findings]

    def by_kind(self, kind: str) -> list:
        return [f for f in self.findings if f.kind == kind]

    def render(self) -> str:
        if not self.findings:
            return "sanitizer: no findings"
        errors = sum(1 for f in self.findings if f.severity == ERROR)
        warnings = len(self.findings) - errors
        lines = [f"sanitizer: {errors} error(s), {warnings} warning(s)"]
        for f in self.findings:
            lines.append(f.render())
        return "\n".join(lines)
