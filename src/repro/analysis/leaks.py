"""Leak checking at environment teardown.

Quieter than a deadlock — nothing hangs — but still wrong: resources
that reached the end of the run in a state the program never observed.

* **leaked user events**: created, never completed, with nobody waiting
  (an event someone *does* wait on is the deadlock detector's case);
* **never-waited requests**: nonblocking operations that completed but
  were never ``wait``/``test``-ed (bridged requests are exempt — the
  clMPI event took ownership, §IV.C);
* **pending requests**: operations still in flight at teardown;
* **queues with pending commands**: work enqueued and abandoned;
* **unreceived messages**: envelopes that arrived at an endpoint no one
  ever received (straight from the matching engine's ground truth).

Revoked communicators are exempt from the endpoint sweeps: traffic
stranded by a ULFM ``Comm.revoke()`` is the recovery path working as
designed, not a leak (see ``docs/faults.md``).
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.report import Finding

__all__ = ["detect_leaks"]

_CAP = 8  # per-kind listing cap inside one finding


def _clip(labels: list) -> str:
    shown = ", ".join(labels[:_CAP])
    if len(labels) > _CAP:
        shown += f", ... ({len(labels) - _CAP} more)"
    return shown


def detect_leaks(rec, deadlocked: bool) -> list:
    """Sweep the recorder's entity tables; returns leak findings.

    ``deadlocked`` suppresses the noisy secondary leaks (pending
    commands/requests) that are mere symptoms when the deadlock
    detector already reported the cause.
    """
    findings = []
    succs = rec.graph.successors()

    for nid, uev in rec.incomplete_user_events():
        if succs[nid]:
            continue  # something waits on it: deadlock territory
        if rec.node(nid).extra.get("bridge") is not None:
            continue  # completes with its request; counted below if stuck
        findings.append(Finding(
            "leaked-user-event",
            f"user event {uev.label!r} was created but never completed "
            "and nothing ever waited on it (clSetUserEventStatus "
            "missing, or the event is dead code)",
            severity="warning",
            witness=[rec.node(nid).describe()]))

    unconsumed = rec.unconsumed_requests()
    if unconsumed:
        findings.append(Finding(
            "never-waited-request",
            f"{len(unconsumed)} request(s) completed but were never "
            f"consumed by wait/test: "
            f"{_clip([r.label for r, _ in unconsumed])} (MPI requires "
            "every nonblocking operation to be completed by "
            "MPI_Wait/MPI_Test)",
            severity="warning"))

    if not deadlocked:
        in_flight = [rec.node(nid) for nid in rec.pending_ops()]
        if in_flight:
            findings.append(Finding(
                "pending-operation",
                f"{len(in_flight)} operation(s) still in flight at "
                f"teardown: {_clip([n.label for n in in_flight])}",
                severity="warning"))

    by_queue = defaultdict(list)
    for nid, cmd in rec.pending_commands():
        by_queue[rec.queue_of(nid)].append(cmd.label)
    for queue_name, labels in sorted(by_queue.items()):
        findings.append(Finding(
            "pending-queue-commands",
            f"queue {queue_name!r} torn down with {len(labels)} "
            f"command(s) never completed: {_clip(labels)}",
            severity="warning"))

    for comm_name, rank, envelopes, _posted in rec.endpoint_sweep():
        if not envelopes:
            continue
        labels = [f"from r{e.src} tag={e.tag} ({e.nbytes}B)"
                  for e in envelopes]
        findings.append(Finding(
            "unreceived-message",
            f"rank {rank} on {comm_name!r} holds {len(envelopes)} "
            f"arrived message(s) that were never received: "
            f"{_clip(labels)}",
            severity="warning"))
    return findings
