"""The execution graph: nodes for every command, event, and MPI operation.

The :class:`~repro.analysis.recorder.Recorder` builds one
:class:`ExecutionGraph` per run.  Nodes are created in program order, and
every **happens-before** edge points from an older node to a newer one
(wait-list events exist before the commands that wait on them; queue
predecessors are enqueued before their successors; host-sync nodes are
created before the commands enqueued after the sync).  Node-id order is
therefore a topological order, which makes ancestor computation a single
linear pass with bitsets.

Two relations live here:

* **happens-before** (``preds``): A completes before B starts.  Used by
  the race detector.
* **wait-for** edges are *not* stored here — the deadlock detector
  derives them from entity state at quiescence (see
  :mod:`repro.analysis.deadlock`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Node", "ExecutionGraph"]

#: node kinds
COMMAND = "command"
USER_EVENT = "user-event"
SYNC = "host-sync"
MPI_SEND = "mpi-send"
MPI_RECV = "mpi-recv"
CLMPI_TRANSFER = "clmpi-transfer"
PROCESS = "process"


@dataclass
class Node:
    """One vertex of the execution graph."""

    nid: int
    kind: str
    label: str
    detail: str = ""
    #: virtual time the entity was recorded (sorts findings/witnesses)
    t: float = 0.0
    #: lifecycle (maintained by the recorder)
    started: bool = False
    completed: bool = False
    failed: Optional[BaseException] = None
    #: enclosing command/transfer node (MPI ops posted by a command)
    parent: Optional[int] = None
    #: free-form per-kind state (entity refs, queue name, wait lists, ...)
    extra: dict = field(default_factory=dict)

    def describe(self) -> str:
        """Human-readable one-liner used in witness chains."""
        core = f"{self.kind} {self.label!r}"
        return f"{core} ({self.detail})" if self.detail else core


class ExecutionGraph:
    """Append-only DAG of run entities with happens-before edges."""

    def __init__(self) -> None:
        self.nodes: list[Node] = []
        #: happens-before predecessors, per node id
        self.preds: list[list[int]] = []

    def __len__(self) -> int:
        return len(self.nodes)

    def add_node(self, kind: str, label: str, detail: str = "",
                 t: float = 0.0) -> Node:
        node = Node(len(self.nodes), kind, label, detail, t=t)
        self.nodes.append(node)
        self.preds.append([])
        return node

    def add_hb(self, pred: Optional[int], succ: int) -> None:
        """Record "``pred`` completes before ``succ`` starts"."""
        if pred is None or pred == succ:
            return
        if pred > succ:  # pragma: no cover - recorder invariant
            raise ValueError(f"happens-before edge {pred}->{succ} is not "
                             "in creation order")
        self.preds[succ].append(pred)

    def successors(self) -> list[list[int]]:
        """Happens-before successor lists (inverse of ``preds``)."""
        succs: list[list[int]] = [[] for _ in self.nodes]
        for nid, plist in enumerate(self.preds):
            for p in plist:
                succs[p].append(nid)
        return succs

    def ancestor_bits(self) -> list[int]:
        """Bitset of transitive happens-before ancestors per node.

        ``bits[b] >> a & 1`` answers "does ``a`` happen before ``b``".
        Node-id order is topological (edges only point old → new), so one
        forward pass suffices.
        """
        bits = [0] * len(self.nodes)
        for nid, plist in enumerate(self.preds):
            acc = 0
            for p in plist:
                acc |= bits[p] | (1 << p)
            bits[nid] = acc
        return bits

    @staticmethod
    def happens_before(a: int, b: int, bits: list[int]) -> bool:
        return bool(bits[b] >> a & 1)
