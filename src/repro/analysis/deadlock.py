"""Deadlock detection over the wait-for graph at quiescence.

When the calendar drains with work still outstanding, something is stuck.
This module reconstructs *why*: it builds a *wait-for* graph over the
stuck entities (commands, user events, MPI operations, blocked
processes), finds cycles, and — for acyclic stalls — walks the chain of
waiters down to the root cause (an unmatched receive, a user event nobody
completes, ...).  Every finding carries a labeled witness chain naming
each entity along the way.

Wait-for edges (X → Y: "X cannot make progress until Y does"):

* a queued command → its incomplete wait-list events, and (in-order
  queues) → its queue predecessor (head-of-line blocking);
* a *running* command → its in-flight MPI operations;
* an incomplete user event → the MPI request it bridges, or the process
  that created it (the thread expected to complete it);
* a blocked process → whatever its suspended ``yield`` targets resolve
  to (command events, request completions, clMPI transfers).

Root causes have no outgoing edges: an unmatched receive (nothing was
sent), an unmatched rendezvous send (no receive was posted), a user
event whose creator is gone.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional

from repro.analysis import graph as G
from repro.analysis.report import Finding

__all__ = ["detect_deadlocks"]

#: witness chains are truncated beyond this many hops
_MAX_CHAIN = 16


def _resolve_wait_target(rec, target) -> list:
    """Map a process's suspended ``yield`` target to graph nodes."""
    events = getattr(target, "events", None)
    if events is not None:  # AllOf / AnyOf
        out = []
        for child in events:
            nid = rec.node_for_sim_event(child)
            if nid is not None:
                out.append(nid)
        return out
    nid = rec.node_for_sim_event(target)
    return [] if nid is None else [nid]


def _build_wait_graph(rec):
    """Returns ``(stuck, edges)``: the stuck node set and labeled
    wait-for edges ``{nid: [(target_nid, reason), ...]}``."""
    graph = rec.graph
    edges: dict[int, list] = defaultdict(list)
    stuck: set[int] = set()

    pending_cmds = dict(rec.pending_commands())
    pending_ops = sorted(set(rec.pending_ops()))
    ops_of_parent: dict[int, list] = defaultdict(list)
    for op in pending_ops:
        parent = graph.nodes[op].parent
        if parent is not None:
            ops_of_parent[parent].append(op)

    # -- commands -----------------------------------------------------
    for nid, cmd in pending_cmds.items():
        stuck.add(nid)
        node = graph.nodes[nid]
        if node.started:
            for op in ops_of_parent.get(nid, ()):
                edges[nid].append((op, "is executing a transfer that "
                                       "never completed"))
            continue
        for w in node.extra.get("wait", ()):
            if not graph.nodes[w].completed:
                edges[nid].append((w, "waits on its wait-list event"))
        pred = node.extra.get("queue_pred")
        if pred is not None and not graph.nodes[pred].completed:
            edges[nid].append((pred, "is queued behind (in-order "
                                     "head-of-line)"))

    # -- process nodes (created lazily, deduplicated by identity) -----
    proc_nodes: dict[int, int] = {}

    def process_node(proc, role: str) -> int:
        key = id(proc)
        if key not in proc_nodes:
            pnode = graph.add_node(
                G.PROCESS, getattr(proc, "name", "process"), role,
                t=rec.env.now)
            pnode.extra["proc"] = proc
            proc_nodes[key] = pnode.nid
            stuck.add(pnode.nid)
            target = proc._waiting_on
            if target is not None:
                for t in _resolve_wait_target(rec, target):
                    edges[pnode.nid].append((t, "is blocked waiting for"))
        return proc_nodes[key]

    for rank, proc in rec.rank_procs:
        if proc.is_alive:
            process_node(proc, f"rank {rank} main thread")

    # -- user events --------------------------------------------------
    for nid, uev in rec.incomplete_user_events():
        stuck.add(nid)
        node = rec.node(nid)
        bridge = node.extra.get("bridge")
        if bridge is not None:
            edges[nid].append((bridge, "completes when the MPI request "
                                       "completes"))
            continue
        creator = node.extra.get("creator")
        if creator is not None and creator.is_alive:
            edges[nid].append((process_node(creator, "creating thread"),
                               "must be completed by its creating thread"))

    # -- MPI / clMPI operations ---------------------------------------
    for op in pending_ops:
        stuck.add(op)
        node = graph.nodes[op]
        if node.kind == G.CLMPI_TRANSFER:
            for child in ops_of_parent.get(op, ()):
                edges[op].append((child, "is driving a transfer "
                                         "operation"))
    return stuck, edges


def _find_cycles(stuck, edges):
    """Simple-cycle enumeration via iterative DFS (each cycle once)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {nid: 0 for nid in stuck}
    cycles = []
    for start in sorted(stuck):
        if color[start] != WHITE:
            continue
        stack = [(start, iter(edges.get(start, ())))]
        path = [start]
        color[start] = GRAY
        while stack:
            nid, it = stack[-1]
            advanced = False
            for succ, _reason in it:
                if succ not in color:
                    continue
                if color[succ] == GRAY:
                    # canonical rotation (min node id first) so the
                    # same cycle renders identically whatever DFS
                    # order discovered it
                    body = path[path.index(succ):]
                    pivot = body.index(min(body))
                    body = body[pivot:] + body[:pivot]
                    cycles.append(body + [body[0]])
                elif color[succ] == WHITE:
                    color[succ] = GRAY
                    path.append(succ)
                    stack.append((succ, iter(edges.get(succ, ()))))
                    advanced = True
                    break
            if not advanced:
                color[nid] = BLACK
                path.pop()
                stack.pop()
    return cycles


def _edge_reason(edges, a, b) -> str:
    for succ, reason in edges.get(a, ()):
        if succ == b:
            return reason
    return "waits for"  # pragma: no cover


def _witness_chain(rec, edges, root: int) -> list:
    """Path from the furthest blocked waiter down to ``root``,
    preferring a process (a named rank thread) as the origin."""
    incoming = defaultdict(list)
    for a, targets in edges.items():
        for b, _reason in targets:
            incoming[b].append(a)
    # BFS upstream from the root; remember parents to rebuild the path
    seen = {root: None}
    frontier = [root]
    origin = root
    found_process = False
    while frontier and not found_process:
        nxt = []
        for nid in frontier:
            for waiter in incoming.get(nid, ()):
                if waiter in seen:
                    continue
                seen[waiter] = nid
                nxt.append(waiter)
                origin = waiter
                if rec.node(waiter).kind == G.PROCESS:
                    found_process = True
                    break
            if found_process:
                break
        frontier = nxt
    chain = []
    nid: Optional[int] = origin
    while nid is not None and len(chain) < _MAX_CHAIN:
        nxt = seen[nid]
        if nxt is None:
            chain.append(rec.node(nid).describe())
        else:
            chain.append(f"{rec.node(nid).describe()} "
                         f"{_edge_reason(edges, nid, nxt)} ->")
        nid = nxt
    return chain


def _root_cause_finding(rec, node, n_waiters: int) -> Finding:
    """Classify a stuck entity with no outgoing wait edges."""
    extra = node.extra
    if node.kind == G.MPI_RECV and not extra["posted"].matched:
        posted = extra["posted"]
        src = "any source" if posted.source < 0 else f"rank {posted.source}"
        tag = "any tag" if posted.tag < 0 else f"tag {posted.tag}"
        return Finding(
            "unmatched-recv",
            f"{node.label} on {extra['comm']!r} was never matched: no "
            f"message from {src} with {tag} ever reached rank "
            f"{extra['rank']}")
    if node.kind == G.MPI_SEND and not extra["envelope"].matched:
        return Finding(
            "unmatched-send",
            f"{node.label} on {extra['comm']!r} was never matched: rank "
            f"{extra['peer']} never posted a matching receive "
            f"({extra['envelope'].protocol} protocol holds the sender)")
    if node.kind == G.USER_EVENT:
        return Finding(
            "user-event-never-completed",
            f"user event {node.label!r} was never completed "
            f"(clSetUserEventStatus never called) and {n_waiters} "
            "entity(ies) wait on it")
    return Finding(
        f"stalled-{node.kind}",
        f"{node.describe()} never completed and nothing it waits on is "
        "tracked (stuck outside the modeled entities)")


def _comm_cycles(rec) -> list:
    """Rank-level communication cycles from the endpoint ground truth:
    an unmatched receive on rank r from rank s means r waits for s; an
    unmatched rendezvous send from s to d means s waits for d."""
    findings = []
    per_comm: dict[str, list] = defaultdict(list)
    for comm_name, rank, envelopes, posted in rec.endpoint_sweep():
        for p in posted:
            if p.source >= 0:
                per_comm[comm_name].append((rank, p.source,
                                            f"rank {rank} waits to receive "
                                            f"from rank {p.source} "
                                            f"(tag {p.tag})"))
        for e in envelopes:
            if e.protocol == "rndv" and not e.matched:
                per_comm[comm_name].append((e.src, e.dst,
                                            f"rank {e.src} waits for rank "
                                            f"{e.dst} to post a receive "
                                            f"(tag {e.tag}, rendezvous)"))
    for comm_name in sorted(per_comm):
        wants = per_comm[comm_name]
        adj = defaultdict(list)
        for a, b, why in wants:
            adj[a].append((b, why))
        seen_cycles = set()
        for start in sorted(adj):
            path, whys, cur = [start], [], start
            visited = {start}
            while True:
                nxts = adj.get(cur)
                if not nxts:
                    break
                nxt, why = nxts[0]
                whys.append(why)
                if nxt in visited:
                    cyc = tuple(sorted(set(path[path.index(nxt):])))
                    if cyc not in seen_cycles:
                        seen_cycles.add(cyc)
                        ranks = " -> ".join(
                            f"rank {r}" for r in path[path.index(nxt):]
                        ) + f" -> rank {nxt}"
                        findings.append(Finding(
                            "communication-deadlock",
                            f"rank-level wait cycle on {comm_name!r}: "
                            f"{ranks}",
                            witness=whys,
                            order=(0.0, min(cyc))))
                    break
                visited.add(nxt)
                path.append(nxt)
                cur = nxt
    return findings


def detect_deadlocks(rec) -> list:
    """Analyze quiescence state; returns deadlock findings."""
    stuck, edges = _build_wait_graph(rec)
    if not stuck:
        return []
    findings = []

    cycles = _find_cycles(stuck, edges)
    in_cycle = set()
    for cycle in cycles:
        in_cycle.update(cycle)
        witness = []
        for a, b in zip(cycle, cycle[1:]):
            witness.append(f"{rec.node(a).describe()} "
                           f"{_edge_reason(edges, a, b)} ->")
        witness.append(f"{rec.node(cycle[-1]).describe()}  "
                       "[cycle closes]")
        names = ", ".join(repr(rec.node(n).label) for n in cycle[:-1])
        findings.append(Finding(
            "deadlock-cycle",
            f"wait cycle of {len(cycle) - 1} entities: {names}",
            witness=witness,
            order=(min(rec.node(n).t for n in cycle), min(cycle))))

    # root causes: stuck entities that block others yet wait on nothing
    incoming_count = defaultdict(int)
    for a, targets in edges.items():
        for b, _reason in targets:
            incoming_count[b] += 1
    for nid in sorted(stuck):
        if nid in in_cycle or edges.get(nid):
            continue
        n_waiters = incoming_count[nid]
        if n_waiters == 0:
            continue  # nothing waits on it: the leak checker's business
        finding = _root_cause_finding(rec, rec.node(nid), n_waiters)
        finding.witness = _witness_chain(rec, edges, nid)
        finding.order = (rec.node(nid).t, nid)
        findings.append(finding)

    findings.extend(_comm_cycles(rec))
    return findings
