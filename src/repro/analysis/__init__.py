"""repro.analysis: a clMPI sanitizer.

Correctness tooling over the event/queue/request graph of a run:

* :class:`Sanitizer` / :func:`autosanitize` — record a run and detect
  deadlocks (with labeled witness chains), data races on buffers, API
  misuse, and leaks;
* :func:`lint_paths` — AST lint of host code for statically visible
  misuse (``python -m repro.analysis lint <paths>``);
* ``python -m repro.analysis run script.py`` — run a script with every
  environment sanitized.

See ``docs/sanitizer.md`` for the hazard taxonomy and report format.
"""

from repro.analysis.graph import ExecutionGraph, Node
from repro.analysis.lint import lint_paths, lint_source
from repro.analysis.recorder import Recorder
from repro.analysis.report import Finding, Report
from repro.analysis.sanitizer import Sanitizer, analyze, autosanitize

__all__ = [
    "ExecutionGraph", "Node",
    "Finding", "Report",
    "Recorder",
    "Sanitizer", "analyze", "autosanitize",
    "lint_paths", "lint_source",
]
