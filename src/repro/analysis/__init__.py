"""repro.analysis: a clMPI sanitizer.

Correctness tooling over the event/queue/request graph of a run:

* :class:`Sanitizer` / :func:`autosanitize` — record a run and detect
  deadlocks (with labeled witness chains), data races on buffers, API
  misuse, and leaks;
* :func:`lint_paths` — AST lint of host code for statically visible
  misuse (``python -m repro.analysis lint <paths>``);
* :func:`verify` / :func:`replay` — schedule-space model checking:
  explore wildcard match orders (and optionally event ties) with DPOR
  and delay bounding, sanitize every schedule, serialize failing
  schedules as replayable :class:`Schedule` artifacts;
* ``python -m repro.analysis run script.py`` — run a script with every
  environment sanitized, and ``... verify script.py`` — model-check it.

See ``docs/sanitizer.md`` for the hazard taxonomy and report format,
``docs/verifier.md`` for the schedule-space exploration.
"""

from repro.analysis.graph import ExecutionGraph, Node
from repro.analysis.lint import lint_paths, lint_source
from repro.analysis.recorder import Recorder
from repro.analysis.report import Finding, Report
from repro.analysis.sanitizer import Sanitizer, analyze, autosanitize
from repro.analysis.schedule import (Choice, RecordingPolicy, Schedule,
                                     SchedulePolicy, ScheduleDivergence)
from repro.analysis.verify import VerifyResult, replay, verify

__all__ = [
    "ExecutionGraph", "Node",
    "Finding", "Report",
    "Recorder",
    "Sanitizer", "analyze", "autosanitize",
    "lint_paths", "lint_source",
    "Choice", "Schedule", "SchedulePolicy", "RecordingPolicy",
    "ScheduleDivergence",
    "VerifyResult", "verify", "replay",
]
