"""Schedule artifacts: recorded choice sequences that replay byte-identically.

A *schedule* is the sequence of decisions made at the stack's explicit
choice points while one simulation ran:

* ``match:<comm>:r<rank>#<n>`` — which candidate envelope satisfied a
  (usually wildcard) receive when several senders were matchable at the
  same virtual instant (:meth:`repro.mpi.matching.Endpoint.resolve`);
* ``tie#<n>`` — which same-``(time, priority)`` event the simulator
  popped first (:meth:`repro.sim.core.Environment._run_scheduled`,
  only when ``explore_ties`` is on).

Index 0 always means "what the unpoliced simulator would have done",
so the empty schedule reproduces the default run.  Schedules serialize
to canonical JSON and are content-addressed by a short sha256 digest,
which makes counterexample artifacts cache-friendly and diffable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.errors import ReproError

__all__ = [
    "Choice",
    "Schedule",
    "SchedulePolicy",
    "RecordingPolicy",
    "ScheduleDivergence",
]

FORMAT = "repro-schedule/1"


class ScheduleDivergence(ReproError):
    """A replayed program reached a different choice point than recorded.

    This means the program is not a deterministic function of its
    schedule (e.g. it consults wall-clock time or an unseeded RNG), or
    the code under test changed since the schedule was captured.
    """


@dataclass(frozen=True)
class Choice:
    """One decision at one choice point."""

    #: stable choice-point id, e.g. ``match:WORLD:r0#1`` or ``tie#3``
    point: str
    #: index picked among the candidates offered at that point
    index: int
    #: ``"match"`` or ``"tie"``
    kind: str = ""
    #: human-readable candidate labels captured when the choice was made
    options: tuple = ()

    def to_dict(self) -> dict:
        out = {"point": self.point, "index": self.index}
        if self.kind:
            out["kind"] = self.kind
        if self.options:
            out["options"] = list(self.options)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Choice":
        return cls(point=str(data["point"]), index=int(data["index"]),
                   kind=str(data.get("kind", "")),
                   options=tuple(data.get("options", ())))


@dataclass(frozen=True)
class Schedule:
    """An immutable, JSON-able choice sequence."""

    choices: tuple = ()
    #: whether same-instant event ties were policy-controlled when the
    #: schedule was recorded (replay must re-enable them to line up)
    ties: bool = False

    @property
    def digest(self) -> str:
        """Short content hash of the canonical JSON encoding."""
        blob = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":")).encode()
        return hashlib.sha256(blob).hexdigest()[:12]

    def to_dict(self) -> dict:
        return {
            "format": FORMAT,
            "ties": self.ties,
            "choices": [c.to_dict() for c in self.choices],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "Schedule":
        if data.get("format") != FORMAT:
            raise ReproError(
                f"not a {FORMAT} artifact: format={data.get('format')!r}")
        return cls(choices=tuple(Choice.from_dict(c)
                                 for c in data.get("choices", ())),
                   ties=bool(data.get("ties", False)))

    def save(self, out_dir: Path | str) -> Path:
        """Write ``schedule-<digest>.json`` under ``out_dir``."""
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"schedule-{self.digest}.json"
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: Path | str) -> "Schedule":
        return cls.from_dict(json.loads(Path(path).read_text()))


class SchedulePolicy:
    """Base schedule policy: always pick index 0 (the default schedule).

    Attaching any policy to ``Environment.schedule_policy`` switches
    the stack into its policed regime (deferred MPI matching, optional
    tie exploration); the base class reproduces the unpoliced behavior
    choice-for-choice, which is what the detached-is-free benchmark
    guard and the replay machinery both rely on.
    """

    #: offer same-``(time, priority)`` event ties as choice points
    explore_ties = False
    #: max candidates surfaced per tie (bounds the branching factor)
    tie_cap = 4

    def choose(self, point: str, labels: Sequence[str], kind: str) -> int:
        return 0


class RecordingPolicy(SchedulePolicy):
    """Replay a choice prefix, default past it, and record everything.

    This is the verifier's workhorse: the explorer executes a program
    under ``RecordingPolicy(prefix)`` and reads back ``trace`` — the
    full choice sequence including the points *past* the prefix, which
    become the branch points for the next exploration wave.
    """

    def __init__(self, prefix: Iterable[Choice] = (),
                 explore_ties: bool = False, tie_cap: int = 4) -> None:
        self.prefix = tuple(prefix)
        self.explore_ties = explore_ties
        self.tie_cap = tie_cap
        self.trace: list[Choice] = []
        self._pos = 0

    def choose(self, point: str, labels: Sequence[str], kind: str) -> int:
        if self._pos < len(self.prefix):
            expected = self.prefix[self._pos]
            if expected.point != point:
                raise ScheduleDivergence(
                    f"choice point #{self._pos} diverged: schedule says "
                    f"{expected.point!r}, program reached {point!r}")
            if expected.index >= len(labels):
                raise ScheduleDivergence(
                    f"choice point {point!r} offers {len(labels)} "
                    f"candidates, schedule picked #{expected.index}")
            index = expected.index
        else:
            index = 0
        self._pos += 1
        self.trace.append(Choice(point=point, index=index, kind=kind,
                                 options=tuple(labels)))
        return index

    @property
    def followed_prefix(self) -> bool:
        """Did the run consume the whole prefix?"""
        return self._pos >= len(self.prefix)

    def schedule(self, ties: Optional[bool] = None) -> Schedule:
        return Schedule(choices=tuple(self.trace),
                        ties=self.explore_ties if ties is None else ties)
