"""The sanitizer front end: install a recorder, run, analyze.

Three entry points:

* :class:`Sanitizer` — a context manager bound to one environment (or
  anything carrying one: a :class:`~repro.launcher.ClusterApp`, an
  ``MpiWorld``)::

      app = ClusterApp(cichlid(), 2)
      with Sanitizer(app) as san:
          app.run(main)
      assert san.report.ok, san.report.render()

* :func:`autosanitize` — patches :class:`~repro.sim.Environment` so
  *every* environment created inside the ``with`` block is recorded;
  used to sanitize whole scripts that build their own worlds.

* ``python -m repro.analysis run script.py`` — the CLI wrapper around
  :func:`autosanitize` (see :mod:`repro.analysis.__main__`).

A deadlock aborts ``run()`` with a :class:`~repro.errors.ReproError`;
the Sanitizer still produces its report on the way out (the ``with``
block does not swallow the exception), so tests can assert on both.
"""

from __future__ import annotations

import contextlib
from typing import Optional

from repro.analysis.deadlock import detect_deadlocks
from repro.analysis.leaks import detect_leaks
from repro.analysis.races import detect_races
from repro.analysis.recorder import Recorder
from repro.analysis.report import Report
from repro.errors import ReproError
from repro.sim import Environment

__all__ = ["Sanitizer", "autosanitize", "analyze"]


#: severity rank for the canonical finding order
_SEVERITY_RANK = {"error": 0, "warning": 1}


def _finding_key(finding) -> tuple:
    return (_SEVERITY_RANK.get(finding.severity, 2), finding.kind,
            tuple(finding.order), finding.location, finding.message)


def analyze(recorder: Recorder, deadlocks: bool = True, races: bool = True,
            leaks: bool = True) -> Report:
    """Run the configured detectors over a finished recording.

    Findings are sorted by (severity, kind, (sim-time, entity id),
    location, message) so reports render byte-stable across runs and
    cache/diff cleanly.
    """
    report = Report(stats=recorder.stats())
    report.findings.extend(recorder.direct_findings)
    deadlock_findings: list = []
    if deadlocks:
        deadlock_findings = detect_deadlocks(recorder)
        report.findings.extend(deadlock_findings)
    if races:
        report.findings.extend(detect_races(recorder, report.stats))
    if leaks:
        report.findings.extend(
            detect_leaks(recorder, deadlocked=bool(deadlock_findings)))
    report.findings.sort(key=_finding_key)
    return report


def _env_of(target) -> Environment:
    if isinstance(target, Environment):
        return target
    env = getattr(target, "env", None)
    if isinstance(env, Environment):
        return env
    raise ReproError(
        f"Sanitizer needs an Environment (or an object with .env); "
        f"got {target!r}")


class Sanitizer:
    """Record one environment's run and analyze it on exit."""

    def __init__(self, target, deadlocks: bool = True, races: bool = True,
                 leaks: bool = True):
        self.env = _env_of(target)
        self._opts = dict(deadlocks=deadlocks, races=races, leaks=leaks)
        self.recorder: Optional[Recorder] = None
        self.report: Optional[Report] = None

    def __enter__(self) -> "Sanitizer":
        if self.env.monitor is not None:
            raise ReproError("environment already has a monitor attached")
        self.recorder = Recorder(self.env)
        self.env.monitor = self.recorder
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.env.monitor = None
        self.report = analyze(self.recorder, **self._opts)
        return False  # never swallow the run's exception

    # -- conveniences --------------------------------------------------
    @property
    def findings(self) -> list:
        return [] if self.report is None else self.report.findings

    def assert_clean(self) -> None:
        """Raise :class:`ReproError` with the rendered report if any
        finding survived."""
        if self.report is None:
            raise ReproError("Sanitizer has not exited yet: no report")
        if not self.report.ok:
            raise ReproError("sanitizer found hazards:\n"
                             + self.report.render())


class _AutoSession:
    """Handle yielded by :func:`autosanitize`."""

    def __init__(self, opts: dict):
        self._opts = opts
        self.recorders: list[Recorder] = []
        self.reports: list[Report] = []
        self.report = Report()

    def _finalize(self) -> None:
        merged = Report()
        for rec in self.recorders:
            rep = analyze(rec, **self._opts)
            self.reports.append(rep)
            merged.findings.extend(rep.findings)
            for key, value in rep.stats.items():
                if isinstance(value, int):
                    merged.stats[key] = merged.stats.get(key, 0) + value
        merged.stats["environments"] = len(self.recorders)
        self.report = merged

    @property
    def ok(self) -> bool:
        return self.report.ok


@contextlib.contextmanager
def autosanitize(deadlocks: bool = True, races: bool = True,
                 leaks: bool = True):
    """Record every :class:`Environment` created inside the block.

    Yields a session whose ``report`` (available after the block) merges
    the findings of all environments.  Environments that already carry a
    monitor are left alone.
    """
    session = _AutoSession(dict(deadlocks=deadlocks, races=races,
                                leaks=leaks))
    original = Environment.__init__

    def patched(self, *args, **kwargs):
        original(self, *args, **kwargs)
        recorder = Recorder(self)
        self.monitor = recorder
        session.recorders.append(recorder)

    Environment.__init__ = patched
    try:
        yield session
    finally:
        Environment.__init__ = original
        for rec in session.recorders:
            if rec.env.monitor is rec:
                rec.env.monitor = None
        session._finalize()
