"""Collective operations built from point-to-point messages.

The paper's extension deliberately leaves collectives to MPI (§IV.C):
"the function calls of MPI collective communications are blocking and no
OpenCL extension is required".  We provide the standard set with log-P
tree algorithms, plus MPI-3-style nonblocking variants (``ibarrier``,
``ibcast``, ``iallreduce``) that the paper's §VI names as future work —
they pair with :func:`repro.clmpi.event_from_mpi_request` so OpenCL
commands can depend on a collective's completion.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.errors import MpiError
from repro.mpi.request import Request

__all__ = ["barrier", "bcast", "reduce", "allreduce", "gather", "scatter",
           "allgather", "alltoall", "reduce_scatter", "nonblocking",
           "REDUCE_OPS", "ALLREDUCE_RING_THRESHOLD"]

#: Tag space reserved for collectives (application tags are < 2**30).
_COLL_TAG_BASE = 1 << 30

REDUCE_OPS = {
    "sum": np.add,
    "prod": np.multiply,
    "max": np.maximum,
    "min": np.minimum,
}


def _op(name: str):
    try:
        return REDUCE_OPS[name]
    except KeyError:
        raise MpiError(
            f"unknown reduction op {name!r}; choose from {sorted(REDUCE_OPS)}"
        ) from None


def barrier(comm) -> Generator[Any, Any, None]:
    """Dissemination barrier: ceil(log2(P)) sendrecv rounds."""
    tag = _COLL_TAG_BASE + comm._coll_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        yield comm.env.timeout(0.0)
        return
    token = np.zeros(1, dtype=np.uint8)
    sink = np.zeros(1, dtype=np.uint8)
    k = 1
    while k < size:
        dest = (rank + k) % size
        src = (rank - k) % size
        yield from comm.sendrecv(token, dest, tag, sink, src, tag)
        k *= 2


def _waitall(reqs) -> Generator[Any, Any, None]:
    """Wait every request; on error, free the sibling handles too (the
    escaping exception makes them unreachable, exactly as MPI frees all
    requests of the call that failed)."""
    try:
        for req in reqs:
            yield from req.wait()
    except BaseException:
        for req in reqs:
            req.consumed = True
        raise


def bcast(comm, buf: np.ndarray, root: int = 0) -> Generator[Any, Any, None]:
    """Binomial-tree broadcast of ``buf`` (updated in place off-root)."""
    tag = _COLL_TAG_BASE + comm._coll_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        yield comm.env.timeout(0.0)
        return
    vrank = (rank - root) % size
    # Receive phase: find my parent (clear lowest set bits progressively).
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = (vrank - mask + root) % size
            yield from comm.recv(buf, parent, tag)
            break
        mask <<= 1
    # Send phase: forward to children below my level.
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            child = (vrank + mask + root) % size
            yield from comm.send(buf, child, tag)
        mask >>= 1


def reduce(comm, sendbuf: np.ndarray, recvbuf: np.ndarray, op: str = "sum",
           root: int = 0) -> Generator[Any, Any, None]:
    """Binomial-tree reduction into ``recvbuf`` at ``root``."""
    ufunc = _op(op)
    tag = _COLL_TAG_BASE + comm._coll_tag()
    size, rank = comm.size, comm.rank
    accum = np.array(sendbuf, copy=True)
    if size > 1:
        vrank = (rank - root) % size
        tmp = np.empty_like(accum)
        mask = 1
        while mask < size:
            if vrank & mask:
                parent = (vrank - mask + root) % size
                yield from comm.send(accum, parent, tag)
                break
            if vrank + mask < size:
                child = (vrank + mask + root) % size
                yield from comm.recv(tmp, child, tag)
                ufunc(accum, tmp, out=accum)
            mask <<= 1
    else:
        yield comm.env.timeout(0.0)
    if rank == root:
        np.copyto(recvbuf, accum)


#: payloads at least this large use the bandwidth-optimal ring allreduce
ALLREDUCE_RING_THRESHOLD = 256 * 1024


def allreduce(comm, sendbuf: np.ndarray, recvbuf: np.ndarray,
              op: str = "sum") -> Generator[Any, Any, None]:
    """Global reduction to all ranks.

    Algorithm selection as in production MPIs: small payloads use
    reduce-to-root + broadcast (latency-optimal at these scales), large
    payloads the ring reduce-scatter/allgather (bandwidth-optimal,
    2·(P−1)/P · n bytes per link instead of ~2·n·log P).
    """
    if (sendbuf.nbytes >= ALLREDUCE_RING_THRESHOLD and comm.size > 2
            and sendbuf.size >= comm.size):
        yield from _allreduce_ring(comm, sendbuf, recvbuf, op)
    else:
        yield from reduce(comm, sendbuf, recvbuf, op, root=0)
        yield from bcast(comm, recvbuf, root=0)


def _allreduce_ring(comm, sendbuf: np.ndarray, recvbuf: np.ndarray,
                    op: str) -> Generator[Any, Any, None]:
    """Ring allreduce: reduce-scatter pass then allgather pass."""
    ufunc = _op(op)
    tag = _COLL_TAG_BASE + comm._coll_tag()
    size, rank = comm.size, comm.rank
    work = np.array(sendbuf.reshape(-1), copy=True)
    # contiguous chunk boundaries (slices give in-place views, unlike
    # fancy indexing, which silently copies)
    edges = np.linspace(0, work.size, size + 1).astype(int)

    def chunk(i: int) -> np.ndarray:
        return work[edges[i]:edges[i + 1]]

    right, left = (rank + 1) % size, (rank - 1) % size
    tmp = np.empty(int(np.max(np.diff(edges))), dtype=work.dtype)
    # reduce-scatter: after P-1 steps, chunk (rank+1) % P is complete here
    for step in range(size - 1):
        send_idx = (rank - step) % size
        recv_idx = (rank - step - 1) % size
        send_chunk = np.ascontiguousarray(chunk(send_idx))
        recv_view = tmp[:chunk(recv_idx).size]
        yield from comm.sendrecv(send_chunk, right, tag,
                                 recv_view, left, tag)
        dst = chunk(recv_idx)
        ufunc(dst, recv_view, out=dst)
    # allgather: circulate the completed chunks
    for step in range(size - 1):
        send_idx = (rank + 1 - step) % size
        recv_idx = (rank - step) % size
        send_chunk = np.ascontiguousarray(chunk(send_idx))
        recv_view = tmp[:chunk(recv_idx).size]
        yield from comm.sendrecv(send_chunk, right, tag,
                                 recv_view, left, tag)
        chunk(recv_idx)[:] = recv_view
    recvbuf.reshape(-1)[:] = work


def reduce_scatter(comm, sendbuf: np.ndarray, recvbuf: np.ndarray,
                   op: str = "sum") -> Generator[Any, Any, None]:
    """``MPI_Reduce_scatter_block``: elementwise reduction of P equal
    blocks; rank r receives block r.  ``sendbuf`` leading axis == P."""
    if sendbuf is None or len(sendbuf) != comm.size:
        raise MpiError("reduce_scatter sendbuf must have leading axis == size")
    full = np.empty_like(sendbuf)
    yield from allreduce(comm, sendbuf, full, op)
    np.copyto(recvbuf, full[comm.rank])


def alltoall(comm, sendbuf: np.ndarray,
             recvbuf: np.ndarray) -> Generator[Any, Any, None]:
    """``MPI_Alltoall``: block j of rank i goes to block i of rank j.

    Both buffers have leading axis == P; implemented as a pairwise
    exchange schedule (XOR ordering when P is a power of two, shifted
    ring otherwise).
    """
    tag = _COLL_TAG_BASE + comm._coll_tag()
    size, rank = comm.size, comm.rank
    if sendbuf is None or len(sendbuf) != size or len(recvbuf) != size:
        raise MpiError("alltoall buffers must have leading axis == size")
    np.copyto(recvbuf[rank], sendbuf[rank])
    for step in range(1, size):
        peer = (rank + step) % size
        from_peer = (rank - step) % size
        sreq = yield from comm.isend(
            np.ascontiguousarray(sendbuf[peer]), peer, tag)
        rreq = yield from comm.irecv(recvbuf[from_peer], from_peer, tag)
        try:
            yield from rreq.wait()
            yield from sreq.wait()
        except BaseException:
            sreq.consumed = rreq.consumed = True  # freed with the call
            raise


def gather(comm, sendbuf: np.ndarray, recvbuf: np.ndarray,
           root: int = 0) -> Generator[Any, Any, None]:
    """Gather equal-size blocks to ``root``.

    ``recvbuf`` at the root must have a leading axis of length P.
    """
    tag = _COLL_TAG_BASE + comm._coll_tag()
    size, rank = comm.size, comm.rank
    if rank == root:
        if recvbuf is None or len(recvbuf) != size:
            raise MpiError("gather recvbuf must have leading axis == size")
        reqs = []
        for src in range(size):
            if src == root:
                np.copyto(recvbuf[src], sendbuf)
            else:
                reqs.append((yield from comm.irecv(recvbuf[src], src, tag)))
        yield from _waitall(reqs)
    else:
        yield from comm.send(sendbuf, root, tag)


def scatter(comm, sendbuf: np.ndarray, recvbuf: np.ndarray,
            root: int = 0) -> Generator[Any, Any, None]:
    """Scatter equal-size blocks from ``root``."""
    tag = _COLL_TAG_BASE + comm._coll_tag()
    size, rank = comm.size, comm.rank
    if rank == root:
        if sendbuf is None or len(sendbuf) != size:
            raise MpiError("scatter sendbuf must have leading axis == size")
        reqs = []
        for dst in range(size):
            if dst == root:
                np.copyto(recvbuf, sendbuf[dst])
            else:
                reqs.append((yield from comm.isend(
                    np.ascontiguousarray(sendbuf[dst]), dst, tag)))
        yield from _waitall(reqs)
    else:
        yield from comm.recv(recvbuf, root, tag)


def allgather(comm, sendbuf: np.ndarray,
              recvbuf: np.ndarray) -> Generator[Any, Any, None]:
    """Ring allgather; ``recvbuf`` leading axis of length P."""
    tag = _COLL_TAG_BASE + comm._coll_tag()
    size, rank = comm.size, comm.rank
    if recvbuf is None or len(recvbuf) != size:
        raise MpiError("allgather recvbuf must have leading axis == size")
    np.copyto(recvbuf[rank], sendbuf)
    if size == 1:
        yield comm.env.timeout(0.0)
        return
    right = (rank + 1) % size
    left = (rank - 1) % size
    for step in range(size - 1):
        send_idx = (rank - step) % size
        recv_idx = (rank - step - 1) % size
        yield from comm.sendrecv(
            np.ascontiguousarray(recvbuf[send_idx]), right, tag,
            recvbuf[recv_idx], left, tag)


def nonblocking(comm, coroutine) -> Request:
    """Run a blocking collective as a background coroutine (§VI).

    Returns a :class:`Request`; combine with
    :func:`repro.clmpi.event_from_mpi_request` to make OpenCL commands
    depend on the collective.
    """
    proc = comm.env.process(coroutine, name=f"mpi.icoll r{comm.rank}")
    return Request(comm.env, proc, kind="icoll")
