"""Message-envelope matching: posted receives vs. arrived envelopes.

Matching follows the MPI rules: a receive posted with ``(source, tag)``
(either may be a wildcard) matches the *earliest* envelope in arrival
order whose ``(src, tag)`` fits; envelopes from the same sender on the
same communicator never overtake each other because senders register
their envelopes in program order and both queues are FIFO.

Two matching regimes share this module:

* **Immediate** (:meth:`Endpoint.deliver` / :meth:`Endpoint.post`) —
  the default.  Registration order *is* the DES program order, so the
  single schedule the simulator happens to produce fixes every match.
* **Deferred** (:meth:`Endpoint.defer_envelope` /
  :meth:`Endpoint.defer_recv` / :meth:`Endpoint.resolve`) — active
  while a schedule policy is attached to the environment (see
  :mod:`repro.analysis.verify`).  Registrations at one virtual instant
  are collected first and matched in a LOW-priority *flush round*, so a
  wildcard receive sees its complete candidate set (the earliest
  matchable envelope per source, preserving non-overtaking) and the
  policy picks which sender wins.  Choice index 0 reproduces the
  immediate regime's arrival-order match.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.mpi.status import ANY_SOURCE, ANY_TAG
from repro.sim import Event

__all__ = ["Envelope", "PostedRecv", "Endpoint", "match_arrays"]


def match_arrays(send_src: np.ndarray, send_tag: np.ndarray,
                 recv_src: np.ndarray, recv_tag: np.ndarray) -> np.ndarray:
    """Batch non-wildcard matching: position in the send batch of the
    envelope each posted receive matches.

    This is the array form of :meth:`Endpoint.post` for the regime the
    mesoscale (vectorized) engine replays: every receive names a
    concrete ``(source, tag)``, so matching degenerates to pairing
    within per-``(src, tag)`` streams and is *schedule-independent* —
    there is exactly one match no matter how the DES interleaves
    registrations (the order-free case of the deferred-matching
    verifier).  Wildcards would make the match depend on arrival order,
    which batched lanes cannot represent; they raise ``ValueError``, as
    do duplicate ``(src, tag)`` keys within one batch (stream position
    would then depend on program order the arrays do not carry — batch
    per round instead).

    Returns an index array ``ix`` with ``len(recv_src)`` entries such
    that receive ``i`` matches envelope ``ix[i]``.  Raises ``KeyError``
    if some receive has no matching envelope in the batch.
    """
    send_src = np.asarray(send_src)
    send_tag = np.broadcast_to(np.asarray(send_tag), send_src.shape)
    recv_src = np.asarray(recv_src)
    recv_tag = np.broadcast_to(np.asarray(recv_tag), recv_src.shape)
    for name, arr in (("source", recv_src), ("tag", recv_tag)):
        bad = ANY_SOURCE if name == "source" else ANY_TAG
        if np.any(arr == bad):
            raise ValueError(
                f"match_arrays is non-wildcard only: ANY_{name.upper()} "
                "matches depend on arrival order; use Endpoint matching")
    # one sortable key per envelope/receive; tags are < 2**31
    span = int(max(send_tag.max(initial=0), recv_tag.max(initial=0))) + 1
    skey = send_src.astype(np.int64) * span + send_tag
    rkey = recv_src.astype(np.int64) * span + recv_tag
    order = np.argsort(skey, kind="stable")
    sorted_keys = skey[order]
    if np.any(sorted_keys[1:] == sorted_keys[:-1]):
        raise ValueError(
            "duplicate (src, tag) in one batch: stream position depends "
            "on program order; match round-by-round instead")
    pos = np.searchsorted(sorted_keys, rkey)
    if np.any(pos >= sorted_keys.size) or np.any(
            sorted_keys[np.minimum(pos, sorted_keys.size - 1)] != rkey):
        raise KeyError("posted receive with no matching envelope in batch")
    return order[pos]


@dataclass
class Envelope:
    """Metadata of one in-flight message (one per send operation)."""

    src: int
    dst: int
    tag: int
    comm_id: int
    nbytes: int
    seq: int
    #: 'eager' (payload pushed immediately) or 'rndv' (handshake first)
    protocol: str
    #: True when the payload is a Python object rather than a byte buffer
    is_object: bool = False
    #: eager: staged payload copy; rndv: live reference to the send buffer
    payload: Any = None
    #: fires when the payload has physically arrived at the receiver
    arrived: Optional[Event] = None
    #: rndv only: receiver fires this once matched (clear-to-send)
    cts: Optional[Event] = None
    #: set once matched to a posted receive
    matched: bool = False
    #: retransmissions spent delivering the payload (fault injection)
    retries: int = 0
    #: fate of the last wire attempt ("ok" unless delivery gave up)
    last_fate: str = "ok"
    #: causal-chain id carried across the wire (0 = unlinked; see
    #: :class:`repro.sim.trace.TraceRecord`)
    flow: int = 0
    #: endpoint registration stamp (deferred matching only): envelopes
    #: stamped before the receive they match were "unexpected" arrivals
    order: int = 0

    def matches(self, source: int, tag: int) -> bool:
        """Does this envelope satisfy a receive for ``(source, tag)``?"""
        return ((source == ANY_SOURCE or source == self.src)
                and (tag == ANY_TAG or tag == self.tag))


@dataclass
class PostedRecv:
    """One posted (pending) receive."""

    source: int
    tag: int
    #: destination byte view, or None for object receives
    buf: Optional[np.ndarray]
    #: fires with the Status (or ``(obj, Status)`` for object receives)
    completion: Event = None  # type: ignore[assignment]
    matched: bool = False
    #: True when posted via the object API
    is_object: bool = False
    #: receiver-side streaming cap (bytes/s), piggybacked to the sender on
    #: the rendezvous clear-to-send (models e.g. a NIC writing into mapped
    #: device memory over PCIe)
    rate_limit: Optional[float] = None
    #: causal-chain id copied from the matched envelope, so receiver-side
    #: stages (e.g. the pipelined engine's h2d drain) can join the chain
    flow: int = 0
    #: endpoint registration stamp (deferred matching only)
    order: int = 0


class Endpoint:
    """Per-(communicator, rank) matching state.

    ``name`` labels the endpoint's choice points in serialized
    schedules (``match:<comm>:r<rank>#<n>``); it is only consulted when
    a schedule policy is attached.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._arrivals: deque[Envelope] = deque()
        self._posted: deque[PostedRecv] = deque()
        self._probers: list[tuple[int, int, Event]] = []
        # -- deferred-matching state (schedule policy attached) -----------
        #: True while a flush round is queued for this endpoint
        self.flush_pending = False
        self._stamp = 0
        self._match_no = 0

    # -- introspection (used by tests and repro.analysis) ------------------
    @property
    def unmatched_envelopes(self) -> int:
        return sum(1 for e in self._arrivals if not e.matched)

    @property
    def pending_recvs(self) -> int:
        return sum(1 for p in self._posted if not p.matched)

    def unmatched_envelope_list(self) -> list[Envelope]:
        """The arrived-but-unreceived envelopes (sanitizer ground truth)."""
        return [e for e in self._arrivals if not e.matched]

    def pending_recv_list(self) -> list[PostedRecv]:
        """The posted-but-unmatched receives (sanitizer ground truth)."""
        return [p for p in self._posted if not p.matched]

    # -- matching -----------------------------------------------------------
    def deliver(self, env: Envelope) -> Optional[PostedRecv]:
        """Register an envelope; return the posted recv it matches, if any."""
        self._gc()
        for posted in self._posted:
            if not posted.matched and env.matches(posted.source, posted.tag):
                posted.matched = True
                env.matched = True
                self._wake_probers(env)
                return posted
        self._arrivals.append(env)
        self._wake_probers(env)
        return None

    def post(self, recv: PostedRecv) -> Optional[Envelope]:
        """Register a receive; return the envelope it matches, if any."""
        self._gc()
        for env in self._arrivals:
            if not env.matched and env.matches(recv.source, recv.tag):
                env.matched = True
                recv.matched = True
                return env
        self._posted.append(recv)
        return None

    # -- deferred matching (schedule policy attached) -----------------------
    def defer_envelope(self, env: Envelope) -> None:
        """Register an envelope without matching it (flush rounds match).

        Probers are woken immediately: a message is *announced* the
        moment it is registered in both regimes.
        """
        self._stamp += 1
        env.order = self._stamp
        self._arrivals.append(env)
        self._wake_probers(env)

    def defer_recv(self, recv: PostedRecv) -> None:
        """Register a receive without matching it (flush rounds match)."""
        self._stamp += 1
        recv.order = self._stamp
        self._posted.append(recv)

    def _candidates(self, recv: PostedRecv) -> list[Envelope]:
        """Matchable envelopes for ``recv``, earliest per source.

        Non-overtaking: within one source only the earliest matchable
        envelope is eligible; an earlier envelope with a *different* tag
        does not block a later matching one (MPI matches per
        ``(src, tag)`` stream, not per link).
        """
        out: list[Envelope] = []
        taken: set[int] = set()
        for env in self._arrivals:
            if env.matched or env.src in taken:
                continue
            if env.matches(recv.source, recv.tag):
                out.append(env)
                taken.add(env.src)
        return out

    def resolve(self, policy) -> list[tuple[Envelope, PostedRecv, bool]]:
        """One deferred-matching round: match posted receives in posted
        order against the current arrival set.

        A receive with several matchable senders is a *choice point*:
        the policy picks the winning envelope (index 0 = arrival order,
        i.e. what :meth:`deliver`/:meth:`post` would have produced).
        Returns ``(envelope, posted, unexpected)`` triples for the comm
        layer to complete; ``unexpected`` is True when the envelope was
        registered before the receive (buffered eager data costs an
        extra copy).
        """
        out: list[tuple[Envelope, PostedRecv, bool]] = []
        while True:
            self._gc()
            pair = None
            for recv in self._posted:
                if recv.matched:
                    continue
                cands = self._candidates(recv)
                if not cands:
                    continue
                if len(cands) == 1 or policy is None:
                    chosen = cands[0]
                else:
                    self._match_no += 1
                    point = f"match:{self.name}#{self._match_no}"
                    labels = [f"r{e.src}->r{e.dst} tag={e.tag} "
                              f"seq={e.seq} {e.nbytes}B" for e in cands]
                    chosen = cands[policy.choose(point, labels, "match")]
                chosen.matched = True
                recv.matched = True
                pair = (chosen, recv, chosen.order < recv.order)
                break
            if pair is None:
                return out
            out.append(pair)

    # -- probe support ---------------------------------------------------------
    def find_envelope(self, source: int, tag: int) -> Optional[Envelope]:
        """First unmatched envelope matching ``(source, tag)``, if any."""
        for env in self._arrivals:
            if not env.matched and env.matches(source, tag):
                return env
        return None

    def add_prober(self, source: int, tag: int, event: Event) -> None:
        """Wake ``event`` when a matching envelope becomes visible."""
        self._probers.append((source, tag, event))

    def _wake_probers(self, env: Envelope) -> None:
        if not self._probers:
            return
        remaining = []
        for source, tag, event in self._probers:
            if not event.triggered and env.matches(source, tag):
                event.succeed(env)
            elif not event.triggered:
                remaining.append((source, tag, event))
        self._probers = remaining

    # -- housekeeping --------------------------------------------------------------
    def _gc(self) -> None:
        while self._arrivals and self._arrivals[0].matched:
            self._arrivals.popleft()
        while self._posted and self._posted[0].matched:
            self._posted.popleft()
