"""Receive status and matching wildcards."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Status", "ANY_SOURCE", "ANY_TAG"]

#: Wildcard source rank (``MPI_ANY_SOURCE``).
ANY_SOURCE = -1
#: Wildcard message tag (``MPI_ANY_TAG``).
ANY_TAG = -1


@dataclass(frozen=True)
class Status:
    """Completion record of a receive (``MPI_Status``).

    Attributes
    ----------
    source:
        Actual sender rank.
    tag:
        Actual message tag.
    count:
        Payload size in bytes.
    """

    source: int
    tag: int
    count: int
