"""Nonblocking-operation requests (``MPI_Request``)."""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional

from repro.sim import Environment, Event

__all__ = ["Request", "waitall", "waitany", "testall"]


class Request:
    """Handle for a nonblocking send/receive.

    Wraps a completion :class:`~repro.sim.Event`; for receives the event
    value is the :class:`~repro.mpi.status.Status`.

    Use inside a simulation coroutine::

        req = comm.irecv(buf, source=1, tag=0)
        ...                       # overlap other work here
        status = yield from req.wait()
    """

    #: receive requests carry their PostedRecv so callers can read
    #: matching results beyond the Status (e.g. the causal flow id)
    posted = None

    def __init__(self, env: Environment, completion: Event, kind: str = "op"):
        self.env = env
        self.completion = completion
        self.kind = kind
        self._label: Optional[str] = None
        #: True once the request has been consumed by a successful
        #: ``wait``/``test`` (the analogue of MPI freeing the request and
        #: replacing the handle with ``MPI_REQUEST_NULL``)
        self.consumed = False
        mon = env.monitor
        if mon is not None:
            mon.on_request_created(self)

    @property
    def label(self) -> str:
        """Human-readable handle name, materialized on first use."""
        if self._label is None:
            self._label = f"{self.kind}#{self.env.next_id(self.kind)}"
        return self._label

    @property
    def done(self) -> bool:
        """True once the operation has completed (non-consuming probe)."""
        return self.completion.triggered

    def wait(self) -> Generator[Any, Any, Any]:
        """Coroutine: block until completion; returns the Status (recv).

        A failed operation raises out of the wait, but the request still
        counts as consumed — MPI_Wait on an erroneous operation frees
        the handle all the same.
        """
        try:
            result = yield self.completion
        except BaseException:
            self.consumed = True
            raise
        self.consumed = True
        return result

    def test(self) -> tuple[bool, Optional[Any]]:
        """Nonblocking completion probe: ``(done, status-or-None)``."""
        if self.completion.triggered:
            self.consumed = True
            return True, self.completion.value
        return False, None


def waitall(env: Environment,
            requests: Iterable[Request]) -> Generator[Any, Any, list]:
    """Coroutine: wait for every request; returns their values in order."""
    requests = list(requests)
    values = yield env.all_of([r.completion for r in requests])
    for r in requests:
        r.consumed = True
    return values


def waitany(env: Environment,
            requests: list[Request]) -> Generator[Any, Any, tuple[int, Any]]:
    """Coroutine: wait for the first completion; returns ``(index, value)``."""
    event, value = yield env.any_of([r.completion for r in requests])
    for i, req in enumerate(requests):
        if req.completion is event:
            req.consumed = True
            return i, value
    raise RuntimeError("completed event not among requests")  # pragma: no cover


def testall(requests: Iterable[Request]) -> bool:
    """True if every request has completed (no time passes)."""
    return all(r.done for r in requests)
