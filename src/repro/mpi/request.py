"""Nonblocking-operation requests (``MPI_Request``)."""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional

from repro.sim import Environment, Event

__all__ = ["Request", "waitall", "waitany", "testall"]


class Request:
    """Handle for a nonblocking send/receive.

    Wraps a completion :class:`~repro.sim.Event`; for receives the event
    value is the :class:`~repro.mpi.status.Status`.

    Use inside a simulation coroutine::

        req = comm.irecv(buf, source=1, tag=0)
        ...                       # overlap other work here
        status = yield from req.wait()
    """

    def __init__(self, env: Environment, completion: Event, kind: str = "op"):
        self.env = env
        self.completion = completion
        self.kind = kind

    @property
    def done(self) -> bool:
        """True once the operation has completed."""
        return self.completion.triggered

    def wait(self) -> Generator[Any, Any, Any]:
        """Coroutine: block until completion; returns the Status (recv)."""
        result = yield self.completion
        return result

    def test(self) -> tuple[bool, Optional[Any]]:
        """Nonblocking completion probe: ``(done, status-or-None)``."""
        if self.completion.triggered:
            return True, self.completion.value
        return False, None


def waitall(env: Environment,
            requests: Iterable[Request]) -> Generator[Any, Any, list]:
    """Coroutine: wait for every request; returns their values in order."""
    values = yield env.all_of([r.completion for r in requests])
    return values


def waitany(env: Environment,
            requests: list[Request]) -> Generator[Any, Any, tuple[int, Any]]:
    """Coroutine: wait for the first completion; returns ``(index, value)``."""
    event, value = yield env.any_of([r.completion for r in requests])
    for i, req in enumerate(requests):
        if req.completion is event:
            return i, value
    raise RuntimeError("completed event not among requests")  # pragma: no cover


def testall(requests: Iterable[Request]) -> bool:
    """True if every request has completed (no time passes)."""
    return all(r.done for r in requests)
