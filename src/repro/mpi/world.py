"""MPI world construction and the rank launcher.

:class:`MpiWorld` binds a system preset (or explicit cluster spec) to a
fresh simulation environment, with one MPI rank per node — the paper's
process layout on both testbeds.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import MpiError
from repro.faults import as_injector
from repro.hardware.cluster import Cluster, ClusterSpec
from repro.mpi.comm import Communicator, MpiConfig, _CommState
from repro.sim import Environment, Process, Tracer

__all__ = ["MpiWorld"]


class MpiWorld:
    """A simulated MPI job: environment + cluster + COMM_WORLD.

    Parameters
    ----------
    system:
        A :class:`repro.systems.SystemPreset` or raw :class:`ClusterSpec`.
    num_nodes:
        Number of ranks/nodes to instantiate (defaults to the system max).
    trace:
        Attach a :class:`~repro.sim.Tracer` for timeline extraction.
    metrics:
        Attach a :class:`~repro.obs.MetricsRegistry` (``env.metrics``)
        so the layers count events, messages, bytes, and faults.

    Example
    -------
    >>> from repro.systems import cichlid
    >>> from repro.mpi import MpiWorld
    >>> world = MpiWorld(cichlid(), num_nodes=2)
    >>> def main(comm):
    ...     import numpy as np
    ...     buf = np.arange(4.0)
    ...     if comm.rank == 0:
    ...         yield from comm.send(buf, dest=1, tag=7)
    ...     else:
    ...         out = np.empty(4)
    ...         yield from comm.recv(out, source=0, tag=7)
    ...         return float(out.sum())
    >>> results = world.run(main)
    >>> results[1]
    6.0
    """

    def __init__(self, system, num_nodes: Optional[int] = None,
                 trace: bool = False,
                 config: Optional[MpiConfig] = None,
                 faults=None, metrics: bool = False):
        if hasattr(system, "cluster"):  # SystemPreset
            cluster_spec: ClusterSpec = system.cluster
            if config is None:
                config = MpiConfig(
                    eager_threshold=system.mpi_eager_threshold)
            self.preset = system
        else:
            cluster_spec = system
            self.preset = None
        self.config = config or MpiConfig()
        # The MPI layer dominates timeout churn; recycling is safe here
        # because no rank code holds Timeout references across yields.
        self.env = Environment(reuse_timeouts=True)
        if trace:
            self.env.tracer = Tracer()
        if metrics:
            from repro.obs import MetricsRegistry
            MetricsRegistry().attach(self.env)
        #: optional FaultInjector (plan dict / FaultPlan also accepted)
        self.faults = as_injector(faults)
        if self.faults is not None:
            self.faults.attach(self.env)
        self.cluster = Cluster(self.env, cluster_spec, num_nodes)
        self._state = _CommState(self.env, self.cluster, comm_id=0,
                                 config=self.config, name="WORLD")
        self._comms = [Communicator(self._state, r)
                       for r in range(len(self.cluster))]

    @property
    def size(self) -> int:
        """Number of ranks."""
        return len(self.cluster)

    @property
    def tracer(self):
        return self.env.tracer

    @property
    def metrics(self):
        return self.env.metrics

    @property
    def detector(self):
        """The run's :class:`~repro.mpi.ft.FailureDetector` (created on
        first use), or None when no fault injector is attached."""
        from repro.mpi.ft import detector_of
        return detector_of(self.env)

    def comm(self, rank: int) -> Communicator:
        """Rank ``rank``'s COMM_WORLD handle."""
        return self._comms[rank]

    def launch(self, main: Callable, *args, **kwargs) -> list[Process]:
        """Spawn ``main(comm, *args, **kwargs)`` as one process per rank."""
        procs = []
        for rank in range(self.size):
            gen = main(self._comms[rank], *args, **kwargs)
            procs.append(self.env.process(gen, name=f"rank{rank}.main"))
        return procs

    def run(self, main: Callable, *args,
            until: Optional[float] = None, **kwargs) -> list[Any]:
        """Launch ``main`` on every rank, run to completion, return values.

        Raises :class:`MpiError` if any rank is still blocked when the
        event calendar drains (a deadlock).
        """
        procs = self.launch(main, *args, **kwargs)
        self.env.run(until=until)
        stuck = [p.name for p in procs if p.is_alive]
        if stuck and until is None:
            raise MpiError(f"deadlock: ranks never terminated: {stuck}")
        return [p.value if p.triggered else None for p in procs]
