"""ULFM-style fault tolerance: the per-environment failure detector.

User-Level Failure Mitigation (the `revoke`/`shrink`/`agree` proposal
that grew out of exactly the kind of malleable-runtime prototyping
described in "Designing and Prototyping Extensions to MPI in MPICH")
rests on one primitive the transport cannot provide: *agreement on who
is dead*.  This module provides the simulated analogue — a
:class:`FailureDetector` shared by every communicator of an
environment, fed two ways, mirroring real implementations:

* **ack-timeout driven** — when a reliable send exhausts its
  retransmissions against a fail-stopped peer
  (``Envelope.last_fate == "dead"``), the communicator notifies the
  detector and raises :class:`~repro.errors.MpiRankFailed`.
* **heartbeat driven** — :meth:`FailureDetector.sweep` lazily probes
  the fault plan's crash schedule (``FaultInjector.node_dead``) the way
  a heartbeat thread would notice silence: no simulated traffic is
  charged, but a crash only becomes *known* when some rank looks.

The detector is created lazily on the attached
:class:`~repro.faults.FaultInjector` — a fault-free run has
``env.faults is None`` and pays nothing (the same zero-cost-detached
contract as ``env.tracer``/``env.monitor``/``env.metrics``).

Recovery metrics (when ``env.metrics`` is attached): ``ft.detections``
(first detection per node), ``ft.revokes``, ``ft.shrinks`` — these ride
into :class:`~repro.obs.report.RunReport` snapshots automatically.
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = ["FailureDetector", "detector_of"]


class FailureDetector:
    """Tracks which nodes are known to have fail-stopped.

    One instance per environment (held by the attached fault injector),
    so detections made by any communicator — WORLD, a dup, the clMPI
    runtime's internal comm — are visible to all of them, exactly like
    the process-global failure knowledge of a real MPI runtime.
    """

    def __init__(self, injector):
        self.injector = injector
        #: node ids known to have failed (monotonically growing)
        self.failed_nodes: set[int] = set()
        #: one record per first detection (time, node, rank, via)
        self.log: list[dict] = []

    def notice(self, node: int, env, rank: Optional[int] = None,
               comm: str = "", via: str = "ack-timeout") -> bool:
        """Record that ``node`` is dead; True on the *first* detection."""
        if node in self.failed_nodes:
            return False
        self.failed_nodes.add(node)
        rec = {"kind": "rank_failed", "time": env.now, "node": node,
               "rank": rank, "comm": comm, "via": via}
        self.log.append(rec)
        if env.metrics is not None:
            env.metrics.inc("ft.detections")
        mon = env.monitor
        if mon is not None:
            hook = getattr(mon, "on_fault", None)
            if hook is not None:
                hook(rec)
        return True

    def sweep(self, env, nodes: Iterable[int]) -> None:
        """Heartbeat pass: notice any node whose crash time has passed."""
        inj = self.injector
        now = env.now
        for node in nodes:
            if node not in self.failed_nodes and inj.node_dead(node, now):
                self.notice(node, env, via="heartbeat")


def detector_of(env) -> Optional[FailureDetector]:
    """The environment's failure detector, or None without an injector.

    Created on first use and cached on the injector, so all
    communicators of a run share one view of the fault set.  Returning
    None when ``env.faults is None`` keeps the fault-free hot path free
    of any detector cost.
    """
    inj = getattr(env, "faults", None)
    if inj is None:
        return None
    det = inj.detector
    if det is None:
        det = inj.detector = FailureDetector(inj)
    return det
