"""Simulated MPI runtime.

A faithful-in-semantics (not in wire protocol) MPI subset running on the
DES engine: each rank's ``main`` coroutine is a simulated host thread;
point-to-point messages are matched by ``(source, tag, communicator)``
with wildcard support and the non-overtaking rule; small messages go
eagerly, large ones through a rendezvous handshake (Open MPI-style); and
collectives use log-P tree algorithms.

The layer is "thread"-safe in the simulated sense required by the paper
(§V.A assumes ``MPI_THREAD_MULTIPLE``): any coroutine of a rank — the host
thread or the clMPI runtime's communication thread — may call into the
communicator concurrently.
"""

from repro.mpi.comm import Communicator, MpiConfig
from repro.mpi.datatypes import (
    BYTE,
    CL_MEM,
    FLOAT32,
    FLOAT64,
    INT32,
    INT64,
    Datatype,
    from_numpy_dtype,
)
from repro.mpi.ft import FailureDetector, detector_of
from repro.mpi.request import Request, testall, waitall, waitany
from repro.mpi.status import ANY_SOURCE, ANY_TAG, Status
from repro.mpi.world import MpiWorld

__all__ = [
    "Datatype",
    "BYTE",
    "INT32",
    "INT64",
    "FLOAT32",
    "FLOAT64",
    "CL_MEM",
    "from_numpy_dtype",
    "Status",
    "ANY_SOURCE",
    "ANY_TAG",
    "Request",
    "waitall",
    "waitany",
    "testall",
    "Communicator",
    "MpiConfig",
    "MpiWorld",
    "FailureDetector",
    "detector_of",
]
