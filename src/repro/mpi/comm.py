"""Communicators and point-to-point operations.

All public operations are *simulation coroutines*: call them with
``yield from`` inside a rank's coroutine.  Nonblocking operations return a
:class:`~repro.mpi.request.Request` whose ``wait()`` is itself a
coroutine.

Protocol model (Open MPI-like, §V.A):

* messages up to ``MpiConfig.eager_threshold`` are sent *eagerly*: the
  payload is staged and pushed to the receiver regardless of whether a
  receive is posted; the send completes locally.
* larger messages use *rendezvous*: the sender announces the envelope,
  waits for the receiver to match (clear-to-send), then streams the
  payload zero-copy into the posted buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

from repro.errors import MpiError, MpiRankFailed, MpiRevoked
from repro.hardware.cluster import Cluster
from repro.mpi import collectives as _coll
from repro.mpi.ft import detector_of
from repro.mpi.matching import Endpoint, Envelope, PostedRecv
from repro.mpi.request import Request
from repro.mpi.status import ANY_SOURCE, ANY_TAG, Status
from repro.sim import Environment, Event, LOW

__all__ = ["MpiConfig", "Communicator"]


@dataclass(frozen=True)
class MpiConfig:
    """MPI-layer tuning knobs."""

    #: eager/rendezvous switch-over in bytes
    eager_threshold: int = 64 * 1024
    #: modelled wire size of a pickled control object
    object_nbytes: int = 256
    #: fault tolerance (active only while a fault injector is attached):
    #: time waited for a delivery ack before the first retransmission
    ack_timeout: float = 1e-4
    #: retransmissions allowed before the send fails with MpiError
    max_retries: int = 8
    #: multiplicative backoff applied to ack_timeout per retransmission
    retry_backoff: float = 2.0


_UINT8 = np.dtype(np.uint8)


def _byte_view(arr: np.ndarray) -> np.ndarray:
    """Flat uint8 view of a contiguous array (no copy)."""
    if not isinstance(arr, np.ndarray):
        raise MpiError(f"buffer must be a numpy array, got {type(arr)!r}")
    if not arr.flags.c_contiguous:
        raise MpiError("message buffers must be C-contiguous")
    if arr.dtype is _UINT8 and arr.ndim == 1:
        return arr
    return arr.reshape(-1).view(np.uint8)


class _CommState:
    """State shared by all ranks' handles of one communicator.

    ``group`` maps communicator ranks to cluster node ids; COMM_WORLD's
    group is the identity, sub-communicators created by ``split`` carry a
    subset.
    """

    def __init__(self, env: Environment, cluster: Cluster, comm_id: int,
                 config: MpiConfig, name: str,
                 group: Optional[list[int]] = None):
        self.env = env
        self.cluster = cluster
        self.comm_id = comm_id
        self.config = config
        self.name = name
        self.group = list(group) if group is not None \
            else list(range(len(cluster)))
        self.size = len(self.group)
        self.endpoints = [Endpoint(name=f"{name}:r{r}")
                          for r in range(self.size)]
        self._seq = 0
        self._dups: list["_CommState"] = []
        self._next_dup = [0] * self.size
        self._coll_seq = [0] * self.size
        self._splits: dict[tuple, "_CommState"] = {}
        # -- ULFM-style fault tolerance state (see repro.mpi.ft) --
        self.revoked = False
        self.revoke_reason = ""
        self.revoke_injected = False
        #: node ids this communicator has learned are fail-stopped
        self.failed_nodes: set[int] = set()
        self._shrink_next = [0] * self.size
        self._shrink_rounds: dict[int, tuple] = {}
        self._shrink_states: dict[int, "_CommState"] = {}
        self._agree_next = [0] * self.size
        self._agree_rounds: dict[int, tuple] = {}

    def node_id(self, rank: int) -> int:
        """Cluster node id hosting communicator rank ``rank``."""
        return self.group[rank]

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def dup_for(self, rank: int) -> "_CommState":
        """Deterministic dup: the n-th dup() call of every rank returns
        the same shared state (ranks must dup in matching order, as the
        MPI standard requires of the collective ``MPI_Comm_dup``)."""
        n = self._next_dup[rank]
        self._next_dup[rank] += 1
        while len(self._dups) <= n:
            child = _CommState(self.env, self.cluster,
                               comm_id=self.comm_id * 1000 + len(self._dups) + 1,
                               config=self.config,
                               name=f"{self.name}.dup{len(self._dups)}",
                               group=self.group)
            self._dups.append(child)
        return self._dups[n]

    def split_state(self, seq: int, node_ids: tuple[int, ...],
                    label) -> "_CommState":
        """Shared child state for one split group (created once)."""
        key = (seq, node_ids)
        if key not in self._splits:
            self._splits[key] = _CommState(
                self.env, self.cluster,
                comm_id=self.comm_id * 1000 + 500 + seq,
                config=self.config,
                name=f"{self.name}.split{seq}[{label}]",
                group=list(node_ids))
        return self._splits[key]


class Communicator:
    """One rank's handle on a communicator (``MPI_Comm``)."""

    def __init__(self, state: _CommState, rank: int):
        if not (0 <= rank < state.size):
            raise MpiError(f"rank {rank} out of range 0..{state.size - 1}")
        self._state = state
        self._rank = rank
        # Hot-path caches: the home node and its fixed per-call host
        # costs (HostSpec is frozen, so these can never go stale).
        home = state.cluster[state.node_id(rank)]
        self._home = home
        self._call_overhead = home.host.spec.call_overhead
        self._sync_overhead = home.host.spec.sync_overhead
        self._memcpy_bw = home.host.spec.memcpy_bandwidth

    # -- identity -----------------------------------------------------------
    @property
    def rank(self) -> int:
        """This process's rank."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self._state.size

    @property
    def env(self) -> Environment:
        return self._state.env

    @property
    def name(self) -> str:
        return self._state.name

    @property
    def config(self) -> MpiConfig:
        return self._state.config

    def node(self, rank: Optional[int] = None):
        """The hardware node hosting ``rank`` (default: this rank)."""
        if rank is None or rank == self._rank:
            return self._home
        return self._state.cluster[self._state.node_id(rank)]

    def dup(self) -> "Communicator":
        """Duplicate the communicator (fresh matching space, same group)."""
        return Communicator(self._state.dup_for(self._rank), self._rank)

    def split(self, color: int,
              key: Optional[int] = None) -> Generator[Any, Any,
                                                      "Communicator"]:
        """``MPI_Comm_split``: collective; returns this rank's handle on
        the sub-communicator of its ``color`` group, ranked by
        ``(key, old rank)``."""
        key = self._rank if key is None else key
        infos = yield from self._allgather_obj((color, key))
        seq = self._coll_tag()  # aligns the split instance across ranks
        members = sorted(
            (k, old) for old, (c, k) in enumerate(infos) if c == color)
        old_ranks = [old for _k, old in members]
        node_ids = tuple(self._state.node_id(r) for r in old_ranks)
        child = self._state.split_state(seq, node_ids, color)
        return Communicator(child, old_ranks.index(self._rank))

    def _allgather_obj(self, obj: Any) -> Generator[Any, Any, list]:
        """Allgather small Python objects (gather to 0, broadcast back)."""
        tag = (1 << 29) + self._coll_tag()
        if self._rank == 0:
            infos = [None] * self.size
            infos[0] = obj
            for _ in range(self.size - 1):
                got, status = yield from self.recv_obj(ANY_SOURCE, tag)
                infos[status.source] = got
            for dst in range(1, self.size):
                yield from self.send_obj(infos, dst, tag)
            return infos
        yield from self.send_obj(obj, 0, tag)
        infos, _ = yield from self.recv_obj(0, tag)
        return infos

    def _check_peer(self, peer: int, what: str) -> None:
        if not (0 <= peer < self.size):
            raise MpiError(f"{what} rank {peer} out of range on {self.name}")

    # =====================================================================
    # point-to-point: typed buffers
    # =====================================================================
    def isend(self, buf: np.ndarray, dest: int, tag: int = 0,
              rate_limit: Optional[float] = None
              ) -> Generator[Any, Any, Request]:
        """Nonblocking send of a contiguous numpy buffer.

        ``rate_limit`` (bytes/s) caps the wire rate; the clMPI mapped
        engine uses it to model the NIC streaming from mapped device
        memory over PCIe.
        """
        self._check_peer(dest, "destination")
        if tag < 0:
            raise MpiError("application tags must be non-negative")
        return (yield from self._isend_impl(buf, dest, tag, rate_limit))

    def isend_bytes(self, view: Optional[np.ndarray], nbytes: int, dest: int,
                    tag: int = 0, rate_limit: Optional[float] = None,
                    flow: int = 0) -> Generator[Any, Any, Request]:
        """Nonblocking raw-byte send of ``nbytes``.

        ``view`` may be None for *timing-only* transfers: the wire time is
        modelled but no data moves (used by the clMPI engines when the
        OpenCL context runs with ``functional=False``).  ``flow`` links
        the message's trace records into an existing causal chain (the
        clMPI engines thread one through staging DMA + wire + drain DMA).
        """
        self._check_peer(dest, "destination")
        if nbytes < 0:
            raise MpiError("negative message size")
        if view is not None and _byte_view(view).nbytes != nbytes:
            raise MpiError("view size does not match nbytes")
        return (yield from self._isend_impl(view, dest, tag, rate_limit,
                                            nbytes_override=nbytes,
                                            flow=flow))

    def irecv_bytes(self, view: Optional[np.ndarray], nbytes: int,
                    source: int, tag: int,
                    rate_limit: Optional[float] = None
                    ) -> Generator[Any, Any, Request]:
        """Nonblocking raw-byte receive; ``view`` may be None (timing-only).

        ``rate_limit`` caps the wire rate from the receiver's side (sent
        back to the sender on the rendezvous clear-to-send).
        """
        self._check_peer(source, "source")
        posted_buf = None if view is None else _byte_view(view)
        if posted_buf is not None and posted_buf.nbytes < nbytes:
            raise MpiError("receive view smaller than nbytes")
        return (yield from self._irecv_impl(posted_buf, source, tag,
                                            is_object=False,
                                            rate_limit=rate_limit))

    def _isend_impl(self, buf, dest, tag, rate_limit=None,
                    is_object=False, nbytes_override=None,
                    flow=0) -> Generator[Any, Any, Request]:
        state, env = self._state, self.env
        if state.revoked:
            raise self._revoked_error("send")
        yield env.timeout(self._call_overhead)  # inlined host.api_call()

        if is_object:
            nbytes = state.config.object_nbytes
            payload = buf  # delivered by reference
        elif nbytes_override is not None:
            payload = None if buf is None else _byte_view(buf)
            nbytes = nbytes_override
        else:
            payload = _byte_view(buf)
            nbytes = payload.nbytes

        eager = nbytes <= state.config.eager_threshold or is_object
        if flow == 0 and env.tracer is not None:
            # Every traced message gets a causal chain, so send->recv
            # pairs stay linked even when no caller threaded a flow in.
            flow = env.tracer.new_flow()
        metrics = env.metrics
        if metrics is not None:
            metrics.inc("mpi.messages")
            metrics.observe("mpi.msg_bytes", nbytes)
            metrics.inc("mpi.eager" if eager else "mpi.rndv")
        envelope = Envelope(
            src=self._rank, dst=dest, tag=tag, comm_id=state.comm_id,
            nbytes=nbytes, seq=state.next_seq(),
            protocol="eager" if eager else "rndv",
            is_object=is_object,
            arrived=Event(env),
            flow=flow,
        )
        completion = Event(env)
        if eager:
            # Stage a private copy so the sender may reuse its buffer.
            if is_object or payload is None:
                envelope.payload = payload
            else:
                envelope.payload = payload.copy()
        else:
            envelope.payload = payload
            envelope.cts = Event(env)

        if env.schedule_policy is None:
            matched = state.endpoints[dest].deliver(envelope)
        else:
            # Deferred matching (schedule-space verifier attached): the
            # envelope is matched in a flush round at this instant, so
            # concurrent senders form one visible candidate set.
            matched = None
            state.endpoints[dest].defer_envelope(envelope)
            self._schedule_flush(dest)
        # The descriptive per-message name is only built when a monitor is
        # attached (the sanitizer's witness chains want it); detached runs
        # pay a constant string instead of two f-strings per message.
        if env.monitor is not None:
            env.monitor.on_mpi_send(self, envelope, completion, matched)
            name = f"mpi.send r{self._rank}->r{dest} t{tag}"
        else:
            name = "mpi.send"
        if matched is not None:
            self._start_recv_finish(envelope, matched, unexpected=False)
        env.process(self._send_proc(envelope, completion, rate_limit),
                    name=name)
        return Request(env, completion, kind="send")

    def _send_proc(self, envelope: Envelope, completion: Event,
                   rate_limit: Optional[float]):
        state, env = self._state, self.env
        fabric = state.cluster.fabric
        src_node = state.node_id(envelope.src)
        dst_node = state.node_id(envelope.dst)
        overhead = fabric.spec.nic.per_message_overhead
        traced = env.tracer is not None
        if envelope.protocol == "eager":
            if not envelope.is_object:
                # NIC initiation + staging copy into the eager buffer:
                # one fused delay (nothing observes the boundary).
                overhead += envelope.nbytes / self._memcpy_bw
            yield env.timeout(overhead)
            label = f"eager t{envelope.tag}" if traced else "eager"
            if env.faults is None:
                yield from fabric.send(src_node, dst_node, envelope.nbytes,
                                       label=label, rate_limit=rate_limit,
                                       flow=envelope.flow)
                envelope.arrived.succeed()
                completion.succeed()
                return
            delivered = yield from self._reliable_send(
                envelope, src_node, dst_node, label, rate_limit)
            if delivered:
                envelope.arrived.succeed()
                completion.succeed()
            else:
                self._fail_send(envelope, completion)
        else:
            try:
                yield envelope.cts  # clear-to-send from the receiver
            except MpiError as exc:
                # The handshake was poisoned (communicator revoked while
                # this sender was parked waiting for the receiver).
                self._abort_send(envelope, completion, exc)
                return
            yield from fabric.control_message(dst_node, src_node)
            recv_rate = envelope.recv_rate
            if recv_rate is not None:
                rate_limit = (recv_rate if rate_limit is None
                              else min(rate_limit, recv_rate))
            label = f"rndv t{envelope.tag}" if traced else "rndv"
            if env.faults is None:
                yield from fabric.send(src_node, dst_node, envelope.nbytes,
                                       label=label, rate_limit=rate_limit,
                                       flow=envelope.flow)
            else:
                delivered = yield from self._reliable_send(
                    envelope, src_node, dst_node, label, rate_limit)
                if not delivered:
                    self._fail_send(envelope, completion)
                    return
            # zero-copy deposit into the matched receive buffer
            dst_buf = envelope.recv_buf
            if dst_buf is not None and envelope.payload is not None:
                self._deposit(envelope.payload, dst_buf)
            envelope.arrived.succeed()
            completion.succeed()

    def _reliable_send(self, envelope: Envelope, src_node: int,
                       dst_node: int, label: str,
                       rate_limit: Optional[float]
                       ) -> Generator[Any, Any, bool]:
        """Ack/timeout/retransmit delivery loop (fault injection active).

        Each wire attempt's fate comes from the fault injector: dropped
        or corrupted frames cost their full wire time, a downed NIC
        costs only the local detection latency.  A successful frame is
        acknowledged by a control packet back from the receiver; a lost
        ack looks exactly like a lost frame.  After each failed attempt
        the sender backs off exponentially from ``ack_timeout``.

        Returns True once delivered, False when ``max_retries`` is
        exhausted (the caller turns that into an ``MpiError``).
        """
        env = self.env
        fabric = self._state.cluster.fabric
        cfg = self._state.config
        metrics = env.metrics
        delay = cfg.ack_timeout
        fate = "ok"
        for attempt in range(cfg.max_retries + 1):
            if attempt:
                if metrics is not None:
                    metrics.inc("mpi.backoffs")
                    metrics.inc("mpi.retransmits")
                yield env.timeout(delay)  # backoff before retransmitting
                delay *= cfg.retry_backoff
            _elapsed, fate = yield from fabric.send_checked(
                src_node, dst_node, envelope.nbytes,
                label=label, rate_limit=rate_limit, flow=envelope.flow)
            if fate != "ok":
                envelope.retries = attempt + 1
                if fate == "dead":
                    break  # fail-stop peer: retransmission cannot help
                continue
            fate = yield from fabric.control_message(dst_node, src_node)
            if fate == "ok":
                envelope.retries = attempt
                if metrics is not None:
                    metrics.inc("mpi.acks")
                return True
            envelope.retries = attempt + 1
            if fate == "dead":
                break  # the ack will never come; stop retransmitting
        envelope.last_fate = fate
        return False

    def _abort_send(self, envelope: Envelope, completion: Event,
                    exc: BaseException) -> None:
        """Fail both ends' events of an undeliverable message.

        Pre-defused: an application that never waits on the request must
        not have the failure escape ``Environment.run`` (same pattern as
        ``CLEvent._fail``).  Waiters still get the exception re-raised
        at their yield site.
        """
        if not envelope.arrived.triggered:
            envelope.arrived.fail(exc)
            envelope.arrived._defused = True
        if not completion.triggered:
            completion.fail(exc)
            completion._defused = True

    def _fail_send(self, envelope: Envelope, completion: Event) -> None:
        """Give up on a message: fail both ends' events.

        A permanent ``dead`` fate means a fail-stopped peer, which no
        amount of retransmission can mask — the failure detector is
        notified and the error is :class:`MpiRankFailed` naming the dead
        rank, so callers can tell an orphaned message (recover via
        ``revoke``/``shrink``) from an exhausted lossy link (plain
        :class:`MpiError`).
        """
        state, env = self._state, self.env
        dead_rank = dead_node = None
        if envelope.last_fate == "dead" and env.faults is not None:
            for peer in (envelope.dst, envelope.src):
                node = state.node_id(peer)
                if env.faults.node_dead(node):
                    dead_rank, dead_node = peer, node
                    break
        head = (f"{self.name}: message r{envelope.src}->r{envelope.dst} "
                f"tag {envelope.tag} ({envelope.nbytes} B) undeliverable")
        if dead_rank is not None:
            exc = MpiRankFailed(
                f"{head}: rank {dead_rank} (node {dead_node}) has "
                f"fail-stopped (gave up after {envelope.retries} "
                "transmission attempt(s))",
                rank=dead_rank, node=dead_node)
            state.failed_nodes.add(dead_node)
            det = detector_of(env)
            if det is not None:
                det.notice(dead_node, env, rank=dead_rank, comm=state.name)
        else:
            exc = MpiError(
                f"{head} after {state.config.max_retries} retransmissions "
                f"(last fate: {envelope.last_fate})")
        exc.injected = True
        exc.flow = envelope.flow  # locate the failure on the timeline
        self._abort_send(envelope, completion, exc)
        if env.monitor is not None:
            hook = getattr(env.monitor, "on_fault", None)
            if hook is not None:
                hook({"kind": "mpi_giveup", "time": env.now,
                      "src": envelope.src, "dst": envelope.dst,
                      "tag": envelope.tag, "nbytes": envelope.nbytes,
                      "last_fate": envelope.last_fate,
                      "rank_failed": dead_rank,
                      "flow": envelope.flow})

    @staticmethod
    def _deposit(src_bytes: np.ndarray, dst_bytes: np.ndarray) -> None:
        """Copy into a posted receive buffer (both already byte views)."""
        if src_bytes.nbytes > dst_bytes.nbytes:
            raise MpiError(
                f"message truncated: {src_bytes.nbytes} bytes into a "
                f"{dst_bytes.nbytes}-byte buffer")
        dst_bytes[:src_bytes.nbytes] = src_bytes

    def irecv(self, buf: Optional[np.ndarray], source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> Generator[Any, Any, Request]:
        """Nonblocking receive into a contiguous numpy buffer."""
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        if buf is None:
            raise MpiError("typed receives require a destination buffer")
        # Validates contiguity up front; the view is carried on the posted
        # receive so the deposit does not have to rebuild it.
        view = _byte_view(buf)
        return (yield from self._irecv_impl(view, source, tag,
                                            is_object=False))

    def _irecv_impl(self, buf, source, tag, is_object,
                    rate_limit=None) -> Generator[Any, Any, Request]:
        state, env = self._state, self.env
        if state.revoked:
            raise self._revoked_error("recv")
        yield env.timeout(self._call_overhead)  # inlined host.api_call()
        posted = PostedRecv(source=source, tag=tag,
                            buf=None if is_object else buf,
                            completion=Event(env), is_object=is_object,
                            rate_limit=rate_limit)
        if env.schedule_policy is None:
            envelope = state.endpoints[self._rank].post(posted)
        else:
            envelope = None
            state.endpoints[self._rank].defer_recv(posted)
            self._schedule_flush(self._rank)
        if env.monitor is not None:
            env.monitor.on_mpi_recv(self, posted, envelope)
        if envelope is not None:
            self._start_recv_finish(envelope, posted, unexpected=True)
        req = Request(env, posted.completion, kind="recv")
        req.posted = posted
        return req

    def _schedule_flush(self, rank: int) -> None:
        """Queue one LOW-priority matching round for ``rank``'s endpoint.

        Deferred matching only.  All registrations at the current
        virtual instant sort before the round (LOW fires after every
        NORMAL event at the same timestamp), so the round sees the
        complete same-instant candidate set and the attached policy
        picks the match order.  At most one round is queued per
        endpoint at a time.
        """
        endpoint = self._state.endpoints[rank]
        if endpoint.flush_pending:
            return
        endpoint.flush_pending = True
        flush = Event(self.env)
        flush.callbacks.append(lambda _evt: self._flush_endpoint(rank))
        flush.succeed(priority=LOW)

    def _flush_endpoint(self, rank: int) -> None:
        endpoint = self._state.endpoints[rank]
        endpoint.flush_pending = False
        policy = self.env.schedule_policy
        for envelope, posted, unexpected in endpoint.resolve(policy):
            self._start_recv_finish(envelope, posted, unexpected)

    def _start_recv_finish(self, envelope: Envelope, posted: PostedRecv,
                           unexpected: bool) -> None:
        """Spawn the completion coroutine for a matched pair.

        ``unexpected`` is True when the envelope arrived before the
        receive was posted (buffered eager data costs an extra copy).
        """
        if posted.is_object != envelope.is_object:
            raise MpiError(
                f"object/buffer API mismatch on tag {envelope.tag} "
                f"(src {envelope.src} -> dst {envelope.dst})")
        self.env.process(
            self._recv_finish(envelope, posted, unexpected),
            name=f"mpi.recv r{envelope.dst}<-r{envelope.src} t{envelope.tag}"
            if self.env.monitor is not None else "mpi.recv")

    def _fail_recv(self, posted: PostedRecv, exc: BaseException) -> None:
        """Propagate a sender-side delivery failure to the receive request."""
        posted.completion.fail(exc)
        posted.completion._defused = True

    def _recv_finish(self, envelope: Envelope, posted: PostedRecv,
                     unexpected: bool):
        env = self.env
        posted.flow = envelope.flow  # receiver-side stages join the chain
        if envelope.protocol == "eager":
            # Was the payload already buffered at the receiver when the
            # receive got matched?  Then draining it costs an extra copy.
            buffered = unexpected and envelope.arrived.triggered
            try:
                yield envelope.arrived
            except MpiError as exc:
                self._fail_recv(posted, exc)
                return
            if envelope.is_object:
                status = Status(envelope.src, envelope.tag, envelope.nbytes)
                self._trace_recv(envelope, env.now, env.now)
                posted.completion.succeed((envelope.payload, status))
                return
            drained = env.now
            if buffered:
                node = self._state.cluster[
                    self._state.node_id(envelope.dst)]
                yield env.timeout(
                    envelope.nbytes / node.host.spec.memcpy_bandwidth)
            if posted.buf is not None and envelope.payload is not None:
                self._deposit(envelope.payload, posted.buf)
            self._trace_recv(envelope, drained, env.now)
            posted.completion.succeed(
                Status(envelope.src, envelope.tag, envelope.nbytes))
        else:
            envelope.recv_buf = posted.buf
            envelope.recv_rate = posted.rate_limit
            envelope.cts.succeed()
            try:
                yield envelope.arrived
            except MpiError as exc:
                self._fail_recv(posted, exc)
                return
            self._trace_recv(envelope, env.now, env.now)
            posted.completion.succeed(
                Status(envelope.src, envelope.tag, envelope.nbytes))

    def _trace_recv(self, envelope: Envelope, start: float,
                    end: float) -> None:
        """Receiver-side delivery marker closing the message's flow chain
        (the wire record lives on the *sender's* NIC lane, so without
        this the chain would never reach the receiving node)."""
        tracer = self.env.tracer
        if tracer is not None and envelope.flow:
            tracer.record(
                f"node{self._state.node_id(envelope.dst)}.mpi",
                f"recv t{envelope.tag}", start, end, "host",
                flow=envelope.flow, src=envelope.src,
                nbytes=envelope.nbytes)

    # -- blocking wrappers ---------------------------------------------------
    def _blocking_wait(self, *requests) -> Generator[Any, Any, list]:
        """Wait for requests, charging the wake-up cost only if the host
        thread actually blocked."""
        blocked = any(not r.done for r in requests)
        values = []
        try:
            for r in requests:
                values.append((yield from r.wait()))
        except BaseException:
            # the escaping error abandons the sibling handles — free
            # them, as MPI frees every request of the combined call
            # (otherwise e.g. a revoked sendrecv leaks its send handle)
            for r in requests:
                r.consumed = True
            raise
        if blocked:
            yield from self.node().host.sync_wakeup()
        return values

    def send(self, buf: np.ndarray, dest: int,
             tag: int = 0) -> Generator[Any, Any, None]:
        """Blocking send (returns when the buffer is reusable)."""
        req = yield from self.isend(buf, dest, tag)
        # Single-request _blocking_wait, unrolled (hot path).
        completion = req.completion
        blocked = not completion.triggered
        yield completion
        req.consumed = True
        if blocked:
            yield self.env.timeout(self._sync_overhead)

    def recv(self, buf: Optional[np.ndarray], source: int = ANY_SOURCE,
             tag: int = ANY_TAG) -> Generator[Any, Any, Status]:
        """Blocking receive; returns the :class:`Status`."""
        req = yield from self.irecv(buf, source, tag)
        # Single-request _blocking_wait, unrolled (hot path).
        completion = req.completion
        blocked = not completion.triggered
        status = yield completion
        req.consumed = True
        if blocked:
            yield self.env.timeout(self._sync_overhead)
        return status

    def sendrecv(self, sendbuf: np.ndarray, dest: int, sendtag: int,
                 recvbuf: np.ndarray, source: int,
                 recvtag: int) -> Generator[Any, Any, Status]:
        """Combined send+receive (``MPI_Sendrecv``): no deadlock ordering."""
        sreq = yield from self.isend(sendbuf, dest, sendtag)
        rreq = yield from self.irecv(recvbuf, source, recvtag)
        status, _ = yield from self._blocking_wait(rreq, sreq)
        return status

    # =====================================================================
    # point-to-point: small Python objects (control metadata)
    # =====================================================================
    def isend_obj(self, obj: Any, dest: int,
                  tag: int = 0) -> Generator[Any, Any, Request]:
        """Nonblocking send of a small Python object (always eager)."""
        self._check_peer(dest, "destination")
        return (yield from self._isend_impl(obj, dest, tag, is_object=True))

    def irecv_obj(self, source: int = ANY_SOURCE,
                  tag: int = ANY_TAG) -> Generator[Any, Any, Request]:
        """Nonblocking object receive; request value is ``(obj, status)``."""
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        return (yield from self._irecv_impl(None, source, tag,
                                            is_object=True))

    def send_obj(self, obj: Any, dest: int,
                 tag: int = 0) -> Generator[Any, Any, None]:
        """Blocking object send."""
        req = yield from self.isend_obj(obj, dest, tag)
        yield from req.wait()

    def recv_obj(self, source: int = ANY_SOURCE,
                 tag: int = ANY_TAG) -> Generator[Any, Any, tuple]:
        """Blocking object receive; returns ``(obj, status)``."""
        req = yield from self.irecv_obj(source, tag)
        obj, status = yield from req.wait()
        return obj, status

    # =====================================================================
    # probing
    # =====================================================================
    def iprobe(self, source: int = ANY_SOURCE,
               tag: int = ANY_TAG) -> Optional[Status]:
        """Nonblocking probe: Status of a matchable message, or None."""
        env_ = self._state.endpoints[self._rank].find_envelope(source, tag)
        if env_ is None:
            return None
        return Status(env_.src, env_.tag, env_.nbytes)

    def probe(self, source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> Generator[Any, Any, Status]:
        """Blocking probe: waits until a matching message is announced."""
        status = self.iprobe(source, tag)
        if status is not None:
            return status
        waiter = Event(self.env)
        self._state.endpoints[self._rank].add_prober(source, tag, waiter)
        envlp = yield waiter
        return Status(envlp.src, envlp.tag, envlp.nbytes)

    # =====================================================================
    # fault tolerance (ULFM-style: revoke / shrink / agree)
    # =====================================================================
    @property
    def revoked(self) -> bool:
        """True once any rank has revoked this communicator."""
        return self._state.revoked

    def _revoked_error(self, what: str) -> MpiRevoked:
        exc = MpiRevoked(
            f"{self.name} is revoked "
            f"({self._state.revoke_reason}): {what} aborted")
        exc.injected = self._state.revoke_injected
        return exc

    def _known_failed_nodes(self) -> set:
        """The fault set as of now: ack-timeout detections made by any
        communicator plus a heartbeat sweep of the crash schedule."""
        state = self._state
        det = detector_of(self.env)
        if det is not None:
            det.sweep(self.env, state.group)
            for node in state.group:
                if node in det.failed_nodes:
                    state.failed_nodes.add(node)
        return set(state.failed_nodes)

    def failed_ranks(self) -> list[int]:
        """Ranks of this communicator known to have fail-stopped."""
        dead = self._known_failed_nodes()
        return [r for r, node in enumerate(self._state.group)
                if node in dead]

    def revoke(self, reason: str = "", injected: bool = False) -> None:
        """ULFM ``MPI_Comm_revoke``: poison the communicator for everyone.

        Propagation is modelled as an instantaneous reliable control
        broadcast: every rank blocked in a pending operation on this
        communicator wakes with :class:`MpiRevoked`, and every later
        point-to-point or collective call raises it immediately.
        ``shrink()`` and ``agree()`` keep working — reaching them is the
        entire point of revoking.  Idempotent; any rank may call it.
        """
        state, env = self._state, self.env
        if state.revoked:
            return
        state.revoked = True
        state.revoke_reason = reason or f"revoked by rank {self._rank}"
        state.revoke_injected = injected
        if env.metrics is not None:
            env.metrics.inc("ft.revokes")
        if env.monitor is not None:
            hook = getattr(env.monitor, "on_fault", None)
            if hook is not None:
                hook({"kind": "comm_revoked", "time": env.now,
                      "comm": state.name, "by": self._rank,
                      "reason": state.revoke_reason})
        for endpoint in state.endpoints:
            for posted in endpoint.pending_recv_list():
                # Marked matched so the matching tables drop the entry:
                # revocation consumed it, it is not a leak.
                posted.matched = True
                exc = self._revoked_error("pending recv")
                posted.completion.fail(exc)
                posted.completion._defused = True
            for envelope in endpoint.unmatched_envelope_list():
                cts = envelope.cts
                if cts is not None and not cts.triggered:
                    # Wake the rendezvous sender parked on clear-to-send;
                    # _send_proc turns this into a failed (defused)
                    # request on the sender's side.
                    cts.fail(self._revoked_error("rendezvous"))
                    cts._defused = True
                envelope.matched = True

    def _consensus_delay(self, participants: int
                         ) -> Generator[Any, Any, None]:
        """Latency model of an all-survivor agreement round: a
        dissemination pattern of reliable control packets —
        ceil(log2(P)) wire rounds — plus the blocked-host wake-up."""
        fabric = self._state.cluster.fabric
        rounds = max(1, (max(participants, 1) - 1).bit_length())
        per_round = fabric.spec.nic.latency + fabric.spec.switch_latency
        yield self.env.timeout(rounds * per_round + self._sync_overhead)

    def shrink(self) -> Generator[Any, Any, "Communicator"]:
        """ULFM ``MPI_Comm_shrink``: return a communicator of survivors.

        Collective (ranks must call in matching order, like ``dup``) and
        usable on a revoked communicator.  The fault set of each shrink
        round is frozen by the first rank entering it — the internal
        consensus real ULFM runs — so every participant derives the same
        survivor group.  A rank whose own node is in the fault set
        raises :class:`MpiRankFailed`; survivors get a live, un-revoked
        communicator with compacted ranks.
        """
        state, env = self._state, self.env
        n = state._shrink_next[self._rank]
        state._shrink_next[self._rank] += 1
        dead = state._shrink_rounds.get(n)
        if dead is None:
            dead = tuple(sorted(self._known_failed_nodes()))
            state._shrink_rounds[n] = dead
        survivors = [node for node in state.group if node not in dead]
        yield from self._consensus_delay(len(survivors))
        my_node = state.node_id(self._rank)
        if my_node in dead:
            raise MpiRankFailed(
                f"{self.name}: this rank (r{self._rank}, node {my_node}) "
                "is in the agreed fault set and cannot join the shrunken "
                "communicator", rank=self._rank, node=my_node)
        child = state._shrink_states.get(n)
        if child is None:
            child = _CommState(env, state.cluster,
                               comm_id=state.comm_id * 1000 + 900 + n,
                               config=state.config,
                               name=f"{state.name}.shrink{n}",
                               group=survivors)
            state._shrink_states[n] = child
            if env.metrics is not None:
                env.metrics.inc("ft.shrinks")
            if env.monitor is not None:
                hook = getattr(env.monitor, "on_fault", None)
                if hook is not None:
                    hook({"kind": "comm_shrunk", "time": env.now,
                          "comm": state.name, "survivors": list(survivors),
                          "failed_nodes": list(dead)})
        return Communicator(child, survivors.index(my_node))

    def agree(self) -> Generator[Any, Any, tuple]:
        """ULFM ``MPI_Comm_agree``: consensus on the fault set.

        Collective; works on revoked communicators.  Every rank of one
        agree round receives the identical frozen tuple of failed ranks,
        so survivors can base recovery decisions on shared knowledge
        rather than their private detector view.
        """
        state = self._state
        n = state._agree_next[self._rank]
        state._agree_next[self._rank] += 1
        dead = state._agree_rounds.get(n)
        if dead is None:
            dead = tuple(sorted(self._known_failed_nodes()))
            state._agree_rounds[n] = dead
        alive = sum(1 for node in state.group if node not in dead)
        yield from self._consensus_delay(alive)
        return tuple(r for r, node in enumerate(state.group)
                     if node in dead)

    def _collective(self, coro) -> Generator[Any, Any, Any]:
        """Run a collective body under ULFM error semantics.

        A fail-stop or injected delivery failure inside a collective
        poisons the *whole* round: the communicator is revoked, so every
        other participant — including third-party ranks blocked on a
        tree/ring neighbour that will never send — unblocks with
        :class:`MpiRevoked` instead of waiting forever.  Non-injected
        errors (argument validation and such) propagate unchanged.
        """
        state = self._state
        if state.revoked:
            raise self._revoked_error("collective")
        try:
            return (yield from coro)
        except MpiRevoked:
            raise
        except MpiError as exc:
            if isinstance(exc, MpiRankFailed) \
                    or getattr(exc, "injected", False):
                self.revoke(
                    reason=f"collective failed at r{self._rank}: {exc}",
                    injected=getattr(exc, "injected", False))
            raise

    # =====================================================================
    # collectives (delegating to repro.mpi.collectives)
    # =====================================================================
    def _coll_tag(self) -> int:
        """Per-rank collective sequence tag (ranks must call collectives
        in the same order, per the MPI standard)."""
        n = self._state._coll_seq[self._rank]
        self._state._coll_seq[self._rank] += 1
        return n

    def barrier(self):
        """Coroutine: dissemination barrier."""
        return self._collective(_coll.barrier(self))

    def bcast(self, buf, root: int = 0):
        """Coroutine: binomial-tree broadcast (in place in ``buf``)."""
        return self._collective(_coll.bcast(self, buf, root))

    def reduce(self, sendbuf, recvbuf, op: str = "sum", root: int = 0):
        """Coroutine: binomial-tree reduction to ``root``."""
        return self._collective(_coll.reduce(self, sendbuf, recvbuf, op,
                                             root))

    def allreduce(self, sendbuf, recvbuf, op: str = "sum"):
        """Coroutine: reduce + broadcast."""
        return self._collective(_coll.allreduce(self, sendbuf, recvbuf, op))

    def gather(self, sendbuf, recvbuf, root: int = 0):
        """Coroutine: gather equal-size blocks to ``root``."""
        return self._collective(_coll.gather(self, sendbuf, recvbuf, root))

    def scatter(self, sendbuf, recvbuf, root: int = 0):
        """Coroutine: scatter equal-size blocks from ``root``."""
        return self._collective(_coll.scatter(self, sendbuf, recvbuf, root))

    def allgather(self, sendbuf, recvbuf):
        """Coroutine: ring allgather."""
        return self._collective(_coll.allgather(self, sendbuf, recvbuf))

    def alltoall(self, sendbuf, recvbuf):
        """Coroutine: pairwise-exchange alltoall."""
        return self._collective(_coll.alltoall(self, sendbuf, recvbuf))

    def reduce_scatter(self, sendbuf, recvbuf, op: str = "sum"):
        """Coroutine: block reduce-scatter."""
        return self._collective(_coll.reduce_scatter(self, sendbuf, recvbuf,
                                                     op))

    def ibarrier(self):
        """Nonblocking barrier (MPI-3 style, §VI); returns a Request."""
        return _coll.nonblocking(self, self._collective(_coll.barrier(self)))

    def ibcast(self, buf, root: int = 0):
        """Nonblocking broadcast; returns a Request."""
        return _coll.nonblocking(
            self, self._collective(_coll.bcast(self, buf, root)))

    def iallreduce(self, sendbuf, recvbuf, op: str = "sum"):
        """Nonblocking allreduce; returns a Request."""
        return _coll.nonblocking(
            self, self._collective(_coll.allreduce(self, sendbuf, recvbuf,
                                                   op)))
