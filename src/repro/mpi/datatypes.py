"""MPI datatypes, including the clMPI extension's ``MPI_CL_MEM``.

``CL_MEM`` is the paper's special datatype (§IV.C): passing it to a
send/receive tells the runtime that the *peer* endpoint is a communicator
device and the payload lives in (or is destined for) device memory, so the
two sides should collaborate on an optimized host↔device transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["Datatype", "BYTE", "INT32", "INT64", "FLOAT32", "FLOAT64",
           "CL_MEM", "from_numpy_dtype"]


@dataclass(frozen=True)
class Datatype:
    """An element type for typed MPI buffers.

    Attributes
    ----------
    name:
        MPI-style name (``"MPI_FLOAT"``).
    itemsize:
        Bytes per element; 1 for :data:`CL_MEM` (treated as raw bytes).
    np_dtype:
        Equivalent NumPy dtype string, or None for :data:`CL_MEM`.
    """

    name: str
    itemsize: int
    np_dtype: Optional[str]

    @property
    def is_cl_mem(self) -> bool:
        """True for the clMPI device-memory marker datatype."""
        return self.np_dtype is None

    def count_of(self, array: np.ndarray) -> int:
        """Element count of ``array`` under this datatype."""
        if self.is_cl_mem:
            return array.nbytes
        return array.nbytes // self.itemsize


BYTE = Datatype("MPI_BYTE", 1, "u1")
INT32 = Datatype("MPI_INT", 4, "i4")
INT64 = Datatype("MPI_LONG_LONG", 8, "i8")
FLOAT32 = Datatype("MPI_FLOAT", 4, "f4")
FLOAT64 = Datatype("MPI_DOUBLE", 8, "f8")
#: The clMPI extension datatype (§IV.C): peer is a communicator device.
CL_MEM = Datatype("MPI_CL_MEM", 1, None)

_BY_NP = {
    np.dtype("u1"): BYTE,
    np.dtype("i4"): INT32,
    np.dtype("i8"): INT64,
    np.dtype("f4"): FLOAT32,
    np.dtype("f8"): FLOAT64,
}


def from_numpy_dtype(dtype) -> Datatype:
    """Map a NumPy dtype to the matching :class:`Datatype`.

    Unknown dtypes degrade to :data:`BYTE` (transferred as raw bytes),
    mirroring mpi4py's buffer-of-bytes fallback.
    """
    return _BY_NP.get(np.dtype(dtype), BYTE)
