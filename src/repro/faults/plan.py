"""Deterministic fault schedules (:class:`FaultPlan`).

A plan is a *value*: a seed plus a tuple of JSON-able event dicts, frozen
and canonically serializable.  That makes fault experiments first-class
citizens of the result cache — a plan embedded in a sweep spec changes
the content address exactly like any other parameter, so a cached point
is always the product of one specific fault schedule.

Fault classes (the ``kind`` field of each event):

``node_crash``
    ``{"kind": "node_crash", "node": N, "at": T}`` — node ``N``'s NIC
    goes dark permanently at time ``T`` (a fail-stop crash as seen from
    the network; the node's local coroutines keep simulating, exactly
    like a partitioned host that no one can reach).

``nic_flap``
    ``{"kind": "nic_flap", "node": N, "at": T, "duration": D}`` — the
    NIC drops every message touching it during ``[T, T+D)``.

``drop`` / ``corrupt``
    ``{"kind": "drop", "probability": P, "src": S?, "dst": D?}`` — each
    message on a matching link is lost (or delivered corrupted and
    discarded by the receiver's checksum) with probability ``P``, drawn
    from the plan's seeded RNG.  ``src``/``dst`` omitted or None match
    any endpoint.

``straggler``
    ``{"kind": "straggler", "node": N?, "resource": R, "factor": F,
    "from": T0?, "until": T1?}`` — derate resource ``R`` (one of
    ``cpu``, ``gpu``, ``pcie``, ``nic``) by slowdown factor ``F >= 1``
    during ``[T0, T1)`` (defaults: the whole run).

``gpu_fail``
    ``{"kind": "gpu_fail", "node": N?, "at": T, "code": C?}`` — the
    first GPU command running on node ``N`` at or after ``T`` fails
    with CL error ``C`` (default ``CL_OUT_OF_RESOURCES``); or
    ``{"kind": "gpu_fail", "probability": P, ...}`` for a seeded
    per-command failure rate.

Determinism guarantee: the DES engine consumes the plan's single RNG
stream in calendar order, so one ``(plan, workload)`` pair always yields
the same injected faults, the same retransmits, and the same virtual
makespan — across processes, machines, and cache round trips.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional

from repro.errors import ConfigurationError

__all__ = ["FaultPlan", "FAULT_KINDS", "STRAGGLER_RESOURCES"]

#: recognised event kinds
FAULT_KINDS = ("node_crash", "nic_flap", "drop", "corrupt", "straggler",
               "gpu_fail")

#: resources a straggler event may derate
STRAGGLER_RESOURCES = ("cpu", "gpu", "pcie", "nic")

#: default CL error code of an injected GPU command failure
DEFAULT_GPU_ERROR = "CL_OUT_OF_RESOURCES"


def _where(event: Mapping, index: Optional[int]) -> str:
    """Error-message location prefix naming the offending entry.

    ``events[i] (kind)`` pinpoints the entry inside a long generated
    plan (a chaos campaign easily produces ten-event plans) instead of
    making the user diff the repr of the whole dict against the schema.
    """
    kind = event.get("kind") if isinstance(event, Mapping) else None
    at = f"events[{index}]" if index is not None else "event"
    return (f"fault plan {at} ({kind})" if isinstance(kind, str)
            else f"fault plan {at}")


def _need_number(event: Mapping, key: str, minimum: float = 0.0,
                 maximum: Optional[float] = None,
                 where: str = "fault event") -> float:
    value = event.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigurationError(
            f"{where}: field {key!r} must be a number, got {value!r}")
    if value < minimum or (maximum is not None and value > maximum):
        hi = "inf" if maximum is None else maximum
        raise ConfigurationError(
            f"{where}: field {key!r}={value} outside [{minimum}, {hi}]")
    return float(value)


def _need_node(event: Mapping, key: str = "node",
               optional: bool = False,
               where: str = "fault event") -> Optional[int]:
    value = event.get(key)
    if value is None and optional:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ConfigurationError(
            f"{where}: field {key!r} must be a non-negative node id, "
            f"got {value!r}")
    return value


def _validate_event(event: Mapping, index: Optional[int] = None) -> dict:
    where = _where(event, index)
    if not isinstance(event, Mapping):
        raise ConfigurationError(
            f"{where} must be a dict, got {event!r}")
    kind = event.get("kind")
    if kind not in FAULT_KINDS:
        raise ConfigurationError(
            f"{where}: unknown fault kind {kind!r}; "
            f"expected one of {FAULT_KINDS}")
    out = dict(event)
    if kind == "node_crash":
        _need_node(event, where=where)
        _need_number(event, "at", where=where)
    elif kind == "nic_flap":
        _need_node(event, where=where)
        _need_number(event, "at", where=where)
        _need_number(event, "duration", where=where)
    elif kind in ("drop", "corrupt"):
        _need_number(event, "probability", 0.0, 1.0, where=where)
        _need_node(event, "src", optional=True, where=where)
        _need_node(event, "dst", optional=True, where=where)
    elif kind == "straggler":
        _need_node(event, optional=True, where=where)
        resource = event.get("resource")
        if resource not in STRAGGLER_RESOURCES:
            raise ConfigurationError(
                f"{where}: field 'resource' is {resource!r}, "
                f"must be one of {STRAGGLER_RESOURCES}")
        if _need_number(event, "factor", where=where) < 1.0:
            raise ConfigurationError(
                f"{where}: field 'factor' (slowdown) must be >= 1")
        if "from" in event and event["from"] is not None:
            _need_number(event, "from", where=where)
        if "until" in event and event["until"] is not None:
            _need_number(event, "until", where=where)
    elif kind == "gpu_fail":
        _need_node(event, optional=True, where=where)
        has_at = event.get("at") is not None
        has_prob = event.get("probability") is not None
        if has_at == has_prob:
            raise ConfigurationError(
                f"{where}: needs exactly one of 'at' (one-shot) or "
                "'probability' (seeded rate)")
        if has_at:
            _need_number(event, "at", where=where)
        else:
            _need_number(event, "probability", 0.0, 1.0, where=where)
        code = event.get("code", DEFAULT_GPU_ERROR)
        if not isinstance(code, str) or not code:
            raise ConfigurationError(
                f"{where}: field 'code' must be a CL error name, "
                f"got {code!r}")
        out["code"] = code
    return out


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered tuple of fault events (see module docs)."""

    seed: int = 0
    events: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigurationError(
                f"FaultPlan seed must be an int, got {self.seed!r}")
        validated = tuple(_validate_event(e, i)
                          for i, e in enumerate(self.events))
        object.__setattr__(self, "events", validated)

    # -- construction -------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Build (and validate) a plan from a JSON-able mapping."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(f"fault plan must be a dict, got {data!r}")
        unknown = set(data) - {"seed", "events"}
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan keys: {sorted(unknown)}")
        return cls(seed=data.get("seed", 0),
                   events=tuple(data.get("events", ())))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from a JSON document string."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(f"invalid fault plan JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def load(cls, path) -> "FaultPlan":
        """Read a plan from a ``plan.json`` file."""
        try:
            with open(path) as fh:
                text = fh.read()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read fault plan {path!r}: {exc}") from exc
        return cls.from_json(text)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able form; embeddable in sweep specs (cache-addressable)."""
        return {"seed": self.seed, "events": [dict(e) for e in self.events]}

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    # -- derivation ---------------------------------------------------------
    def with_seed(self, seed: int) -> "FaultPlan":
        """The same schedule under a different RNG seed."""
        return replace(self, seed=seed)

    def of_kind(self, kind: str) -> list[dict]:
        """The plan's events of one ``kind``, in plan order."""
        return [e for e in self.events if e["kind"] == kind]

    @classmethod
    def lossy(cls, probability: float = 0.01, seed: int = 0,
              corrupt_probability: float = 0.0) -> "FaultPlan":
        """Convenience: a uniformly lossy network (README's lossy GbE)."""
        events: list[dict] = [{"kind": "drop", "probability": probability}]
        if corrupt_probability:
            events.append({"kind": "corrupt",
                           "probability": corrupt_probability})
        return cls(seed=seed, events=tuple(events))
