"""Chaos campaigns: random fault plans, invariants, plan shrinking.

A *campaign* samples N seeded random :class:`~repro.faults.FaultPlan`s,
runs a workload under each, and checks the robustness invariants the
stack promises to keep even while being tortured:

* **no deadlock** — the sanitizer's error-severity findings (stranded
  receives, lost wake-ups) are violations; injected failures that
  surface cleanly are not;
* **survivors agree** — in fault-tolerant workloads every surviving
  rank must report the identical failed-rank set and a shrunken world
  of exactly ``size - len(failed)`` (ULFM's agreement guarantee);
* **totals conserved** — the fault tallies flowing through the metrics
  registry and the injector's own counters are two independent
  pipelines that must agree in every :class:`~repro.obs.RunReport`.

A failing plan is then *shrunk*: :func:`shrink_plan` delta-debugs the
event tuple down to a 1-minimal subset that still reproduces a
violation, and the minimized plan + its RunReport are written as
cache-addressable JSON artifacts (``--campaign-out``).  Everything —
sampling, the workloads, ddmin — is deterministic for a fixed seed,
and every case rides through the result cache like any sweep point.

CLI: ``python -m repro.faults chaos --campaign N --seed S --minimize``.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Any, Callable, Optional

from repro.errors import ConfigurationError
from repro.faults.injector import injected
from repro.faults.plan import FaultPlan

__all__ = ["WORKLOADS", "sample_plan", "chaos_case", "campaign_specs",
           "run_campaign", "shrink_plan", "verify_case"]

#: chaos workloads: name -> (nodes, fault-time horizon, ft-recovery?)
WORKLOADS: dict[str, dict] = {
    # 2-rank clMPI pingpong on the ULFM fault-tolerant rank coroutine:
    # exercises revoke/shrink/agree recovery under arbitrary faults.
    "pingpong": {"nodes": 2, "horizon": 1e-3, "ft": True},
    # 4-rank Himeno (XXS, 2 iterations) on the plain clMPI halo code:
    # chaos hunts for stranded ranks the recovery machinery would hide.
    "himeno": {"nodes": 4, "horizon": 3e-3, "ft": False},
}

#: sampled event kinds and their weights (crashes rare but present)
_KIND_WEIGHTS = (("drop", 30), ("corrupt", 15), ("nic_flap", 20),
                 ("straggler", 15), ("gpu_fail", 10), ("node_crash", 10))


def sample_plan(rng: random.Random, num_nodes: int, horizon: float,
                max_events: int = 6) -> FaultPlan:
    """One random (but valid) fault plan drawn from ``rng``.

    All times land inside ``[0, horizon)`` — the workload's natural
    makespan — so sampled faults actually intersect live traffic.
    """
    kinds = [k for k, _ in _KIND_WEIGHTS]
    weights = [w for _, w in _KIND_WEIGHTS]
    events: list[dict] = []
    for _ in range(rng.randint(1, max_events)):
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        node = rng.randrange(num_nodes)
        at = round(rng.uniform(0.0, horizon), 9)
        if kind == "node_crash":
            events.append({"kind": kind, "node": node, "at": at})
        elif kind == "nic_flap":
            events.append({"kind": kind, "node": node, "at": at,
                           "duration": round(rng.uniform(
                               0.0, horizon / 4), 9)})
        elif kind in ("drop", "corrupt"):
            events.append({"kind": kind,
                           "probability": round(rng.uniform(0.0, 0.3), 9)})
        elif kind == "straggler":
            events.append({"kind": kind, "node": node,
                           "resource": rng.choice(
                               ("cpu", "gpu", "pcie", "nic")),
                           "factor": round(rng.uniform(1.0, 4.0), 9),
                           "from": at})
        else:  # gpu_fail
            if rng.random() < 0.5:
                events.append({"kind": kind, "node": node, "at": at})
            else:
                events.append({"kind": kind, "probability":
                               round(rng.uniform(0.0, 0.05), 9)})
    return FaultPlan(seed=rng.randrange(1 << 16), events=tuple(events))


# ---------------------------------------------------------------------------
# running one case
# ---------------------------------------------------------------------------
def _short_error(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {str(exc)[:200]}"


def _evaluate(app, report_obj, error, outcomes, ft: bool) -> dict:
    """Apply the campaign invariants to one finished (or dead) run."""
    from repro.obs import build_report

    violations: list[str] = []
    findings = []
    if report_obj is not None:
        findings = [{"kind": f.kind, "severity": f.severity,
                     "message": f.message}
                    for f in report_obj.findings]
        for kind in sorted({f.kind for f in report_obj.findings
                            if f.severity == "error"}):
            violations.append(f"sanitizer:{kind}")
    if error is not None and not injected(error):
        violations.append(f"error:{type(error).__name__}")
    survivors: list[dict] = []
    if ft and error is None and outcomes:
        survivors = [o for o in outcomes
                     if isinstance(o, dict) and o.get("survivor")]
        failed_sets = {tuple(sorted(o.get("failed_ranks", ())))
                       for o in survivors}
        if len(failed_sets) > 1:
            violations.append("survivor-disagreement")
        for o in survivors:
            if o.get("world") != app.size - len(o.get("failed_ranks", ())):
                violations.append("world-size-mismatch")
                break
        crashed = {e["node"]
                   for e in app.faults.plan.of_kind("node_crash")} \
            if app.faults is not None else set()
        if not survivors and len(crashed) < app.size:
            violations.append("no-survivors")
    run_report = build_report(
        "chaos", {}, app.env,
        faults=(app.faults.summary()["by_kind"]
                if app.faults is not None else None)).to_dict()
    if app.faults is not None:
        counted = {k: v for k, v in
                   run_report["metrics"]["counters"].items()
                   if k.startswith("faults.")}
        expect = {f"faults.{k}": v
                  for k, v in app.faults.counts.items()}
        if counted != expect:
            violations.append("fault-tally-divergence")
    return {
        "ok": not violations,
        "violations": sorted(set(violations)),
        "error": None if error is None else _short_error(error),
        "error_injected": bool(error is not None and injected(error)),
        "survivors": [{"rank": o["rank"], "world": o["world"],
                       "failed_ranks": sorted(o.get("failed_ranks", ()))}
                      for o in survivors],
        "findings": findings,
        "makespan": app.env.now,
        "faults": (app.faults.summary() if app.faults is not None
                   else {"total": 0, "by_kind": {}}),
        "report": run_report,
    }


def chaos_case(spec: dict) -> dict:
    """Sweep worker: run one ``{"workload": W, "plan": P}`` chaos case.

    Module-level, dict-in/dict-out, picklable — the standard
    :mod:`repro.harness.parallel` worker contract, so campaigns fan out
    over the process pool and cache exactly like figure sweeps.
    """
    from repro.analysis.sanitizer import Sanitizer
    from repro.launcher import ClusterApp
    from repro.systems import cichlid

    workload = spec["workload"]
    try:
        wl = WORKLOADS[workload]
    except KeyError:
        raise ConfigurationError(
            f"unknown chaos workload {workload!r}; choose from "
            f"{sorted(WORKLOADS)}") from None
    plan = FaultPlan.from_dict(spec["plan"])
    app = ClusterApp(cichlid(), wl["nodes"], functional=False,
                     faults=plan, metrics=True)
    error: Optional[BaseException] = None
    outcomes: Any = None
    with Sanitizer(app) as san:
        try:
            if workload == "pingpong":
                from repro.apps.pingpong import _pingpong_ft_main
                outcomes = app.run(_pingpong_ft_main, 1 << 16, 3)
            else:
                from repro.apps.himeno import HimenoConfig
                from repro.apps.himeno.driver import IMPLEMENTATIONS
                cfg = HimenoConfig(size="XXS", iterations=2)
                outcomes = app.run(IMPLEMENTATIONS["clmpi"], cfg, False)
        except BaseException as exc:  # invariants judge *any* escape
            error = exc
    out = _evaluate(app, san.report, error, outcomes, wl["ft"])
    out["workload"] = workload
    out["plan"] = plan.to_dict()
    return out


# ---------------------------------------------------------------------------
# schedule-space verification of a case (PR 6 composition)
# ---------------------------------------------------------------------------
def verify_case(workload: str, plan: FaultPlan, bound: int = 1,
                max_schedules: int = 8) -> dict:
    """Model-check one (workload, fault plan) pair across matching
    orders (:mod:`repro.analysis.verify`).

    The verifier instruments every environment itself, so the workload
    runs bare (no explicit Sanitizer).  A counterexample here means the
    invariant violation depends on *which* send satisfied a wildcard
    receive — a strictly stronger claim than one chaos run can make.
    Injected faults surfacing cleanly are not failures, exactly as in
    :func:`chaos_case`.
    """
    from repro.analysis.verify import verify
    from repro.launcher import ClusterApp
    from repro.systems import cichlid

    wl = WORKLOADS[workload]
    plan_dict = plan.to_dict()

    def program() -> None:
        app = ClusterApp(cichlid(), wl["nodes"], functional=False,
                         faults=FaultPlan.from_dict(plan_dict),
                         metrics=True)
        if workload == "pingpong":
            from repro.apps.pingpong import _pingpong_ft_main
            app.run(_pingpong_ft_main, 1 << 16, 3)
        else:
            from repro.apps.himeno import HimenoConfig
            from repro.apps.himeno.driver import IMPLEMENTATIONS
            cfg = HimenoConfig(size="XXS", iterations=2)
            app.run(IMPLEMENTATIONS["clmpi"], cfg, False)

    result = verify(program, bound=bound, max_schedules=max_schedules)
    return {
        "ok": result.ok,
        "explored": result.explored,
        "exhausted": result.exhausted,
        "reduction": round(result.reduction_factor, 4),
        "counterexamples": [c["digest"] for c in result.counterexamples],
    }


# ---------------------------------------------------------------------------
# campaigns
# ---------------------------------------------------------------------------
def campaign_specs(workload: str, campaign: int, seed: int) -> list[dict]:
    """The campaign's case specs (deterministic for a fixed seed)."""
    if workload not in WORKLOADS:
        raise ConfigurationError(
            f"unknown chaos workload {workload!r}; choose from "
            f"{sorted(WORKLOADS)}")
    wl = WORKLOADS[workload]
    specs = []
    for i in range(campaign):
        rng = random.Random(seed * 1_000_003 + i + 1)
        plan = sample_plan(rng, wl["nodes"], wl["horizon"])
        specs.append({"workload": workload, "plan": plan.to_dict()})
    return specs


def _cached_case(workload: str, plan: FaultPlan, cache) -> dict:
    """Run (or fetch) one case through the same cache address the
    campaign sweep uses, so ddmin probes share entries with campaigns."""
    spec = {"workload": workload, "plan": plan.to_dict()}
    if cache is not None:
        hit = cache.get("chaos", spec)
        if hit is not None:
            return hit
    out = chaos_case(spec)
    if cache is not None:
        cache.put("chaos", spec, out)
    return out


def shrink_plan(plan: FaultPlan,
                failing: Callable[[FaultPlan], bool]) -> FaultPlan:
    """Delta-debug ``plan.events`` to a 1-minimal failing subset (ddmin).

    ``failing(candidate)`` must return True when the candidate plan
    still reproduces the violation.  Deterministic: the search order
    depends only on the event tuple, and every candidate keeps the
    original seed so the injector's RNG stream stays comparable.
    """
    def make(events) -> FaultPlan:
        return FaultPlan(seed=plan.seed, events=tuple(events))

    events = list(plan.events)
    if not events or not failing(make(events)):
        return make(events)
    granularity = 2
    while len(events) >= 2:
        size = (len(events) + granularity - 1) // granularity
        chunks = [events[i:i + size] for i in range(0, len(events), size)]
        reduced = False
        for chunk in chunks:
            if failing(make(chunk)):
                events, granularity, reduced = chunk, 2, True
                break
        if not reduced:
            for i in range(len(chunks)):
                rest = [e for j, c in enumerate(chunks) if j != i
                        for e in c]
                if rest and failing(make(rest)):
                    events = rest
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(events):
                break
            granularity = min(len(events), granularity * 2)
    return make(events)


def _artifact_key(plan: FaultPlan) -> str:
    """Content address of a minimized plan (stable file naming)."""
    return hashlib.sha256(plan.to_json().encode()).hexdigest()[:12]


def run_campaign(workload: str, campaign: int = 10, seed: int = 0,
                 minimize: bool = False, jobs: Optional[int] = 1,
                 cache=None, out_dir=None, verify_matching: int = 0,
                 verify_bound: int = 1, sweep_fn=None) -> dict:
    """Run one chaos campaign; returns the JSON-able summary.

    ``minimize`` delta-debugs every failing case's plan to a minimal
    reproducing fault set (probes run serially in the parent, through
    the same cache).  ``out_dir`` persists each minimized plan and its
    RunReport as a content-addressed JSON artifact, plus a campaign
    summary file.  ``verify_matching`` model-checks the first N cases
    across wildcard matching orders (delay bound ``verify_bound``) and
    tallies ``order_violations`` — cases whose invariant only breaks
    under some non-default matching order.

    ``sweep_fn`` swaps out how the case grid executes: it receives
    ``(worker, specs, jobs=..., cache=..., kind="chaos")`` and must
    return results in spec order, exactly like
    :func:`repro.harness.parallel.sweep` (the default).  The sweep
    service's client uses this to run campaigns as daemon jobs —
    artifact writing stays local, so ``--campaign-out`` files are
    byte-identical however the cases were computed.
    """
    from pathlib import Path

    from repro.harness.parallel import is_error_record, sweep

    if sweep_fn is None:
        sweep_fn = sweep
    specs = campaign_specs(workload, campaign, seed)
    raw = sweep_fn(chaos_case, specs, jobs=jobs, cache=cache,
                   kind="chaos")
    cases: list[dict] = []
    for i, (spec, out) in enumerate(zip(specs, raw)):
        if is_error_record(out):
            out = {"ok": False,
                   "violations":
                       [f"worker-crash:{out['sweep_error']['type']}"],
                   "error": out["sweep_error"]["message"][:200],
                   "workload": workload, "plan": spec["plan"]}
        out = dict(out)
        out["case"] = i
        cases.append(out)
    failures = [c for c in cases if not c["ok"]]

    minimized: list[dict] = []
    if minimize:
        for fail in failures:
            plan = FaultPlan.from_dict(fail["plan"])
            original = set(fail["violations"])

            def failing(candidate: FaultPlan,
                        _orig=original) -> bool:
                probe = _cached_case(workload, candidate, cache)
                return bool(set(probe["violations"]) & _orig)

            small = shrink_plan(plan, failing)
            probe = _cached_case(workload, small, cache)
            minimized.append({
                "workload": workload,
                "case": fail["case"],
                "key": _artifact_key(small),
                "violations": fail["violations"],
                "original_events": len(plan.events),
                "minimized_events": len(small.events),
                "plan": small.to_dict(),
                "outcome": probe,
            })

    order_violations = 0
    if verify_matching > 0:
        for case in cases[:verify_matching]:
            plan = FaultPlan.from_dict(case["plan"])
            case["verify"] = verify_case(workload, plan,
                                         bound=verify_bound)
            if not case["verify"]["ok"]:
                # order-dependent iff the default schedule (the chaos
                # run itself) was clean but some matching order fails
                if case["ok"]:
                    order_violations += 1

    summary = {
        "workload": workload,
        "campaign": campaign,
        "seed": seed,
        "ok": len(cases) - len(failures),
        "failures": len(failures),
        "cases": cases,
        "minimized": minimized,
        "order_violations": order_violations,
    }
    if out_dir is not None:
        root = Path(out_dir)
        root.mkdir(parents=True, exist_ok=True)
        for art in minimized:
            path = root / (f"chaos-{workload}-case{art['case']:03d}"
                           f"-{art['key']}.json")
            path.write_text(json.dumps(art, sort_keys=True, indent=2))
            art["artifact"] = str(path)
        summary_path = root / f"campaign-{workload}-seed{seed}.json"
        summary_path.write_text(
            json.dumps(summary, sort_keys=True, indent=2))
        summary["summary_file"] = str(summary_path)
    return summary
