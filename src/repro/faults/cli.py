"""``python -m repro.faults`` — chaos campaigns from the command line.

Examples::

    # 25 random fault plans against the fault-tolerant pingpong
    python -m repro.faults chaos --campaign 25 --seed 7

    # hunt + shrink failing plans, persisting minimized artifacts
    python -m repro.faults chaos --campaign 50 --seed 3 \\
        --workload himeno --minimize --campaign-out chaos-artifacts/

Exit status: 0 when every case satisfied the invariants (or every
failure was minimized to an artifact under ``--minimize``), 1 when
failures remain unminimized.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.faults.chaos import WORKLOADS, run_campaign
from repro.harness.cache import ResultCache


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Chaos campaigns over the simulated cluster")
    sub = p.add_subparsers(dest="command", required=True)
    c = sub.add_parser("chaos", help="run a seeded chaos campaign")
    c.add_argument("--campaign", type=int, default=10, metavar="N",
                   help="number of random fault plans (default 10)")
    c.add_argument("--seed", type=int, default=0,
                   help="campaign seed (default 0)")
    c.add_argument("--workload", default="pingpong",
                   choices=sorted(WORKLOADS),
                   help="workload to torture (default pingpong)")
    c.add_argument("--minimize", action="store_true",
                   help="delta-debug failing plans to minimal "
                        "reproducing fault sets")
    c.add_argument("-j", "--jobs", type=int, default=1,
                   help="worker processes (default 1)")
    c.add_argument("--no-cache", action="store_true",
                   help="bypass the result cache")
    c.add_argument("--campaign-out", metavar="DIR", default=None,
                   help="persist minimized plans + RunReports as "
                        "content-addressed JSON under DIR")
    c.add_argument("--verify-matching", type=int, default=0, metavar="N",
                   help="model-check the first N cases across wildcard "
                        "matching orders (repro.analysis.verify)")
    c.add_argument("--verify-bound", type=int, default=1,
                   help="delay bound for --verify-matching (default 1)")
    c.add_argument("--json", metavar="PATH", default=None,
                   help="write the full campaign summary as JSON")
    c.add_argument("--service", metavar="SOCKET", default=None,
                   help="run the cases as a sweep-service job on the "
                        "daemon at SOCKET (see docs/service.md); "
                        "minimization and artifact writing stay local, "
                        "so --campaign-out files are byte-identical")
    return p


def _print_summary(summary: dict) -> None:
    wl, n = summary["workload"], summary["campaign"]
    print(f"chaos campaign: {n} plans x {wl} (seed {summary['seed']})")
    for case in summary["cases"]:
        status = "ok" if case["ok"] else \
            "FAIL " + ", ".join(case["violations"])
        events = len(case["plan"]["events"])
        extra = ""
        if case.get("error"):
            tag = "injected" if case.get("error_injected") else "ESCAPED"
            extra = f" [{tag}: {case['error']}]"
        print(f"  case {case['case']:3d}: {events} event(s) "
              f"-> {status}{extra}")
    print(f"{summary['ok']}/{n} ok, {summary['failures']} failing")
    verified = [c for c in summary["cases"] if "verify" in c]
    if verified:
        print(f"matching-order verification of {len(verified)} case(s): "
              f"{summary['order_violations']} order-dependent "
              "violation(s)")
        for case in verified:
            v = case["verify"]
            status = "ok" if v["ok"] else \
                "FAIL " + ", ".join(v["counterexamples"])
            print(f"  case {case['case']:3d}: explored {v['explored']} "
                  f"order(s), reduction {v['reduction']:.2f}x "
                  f"-> {status}")
    for art in summary["minimized"]:
        where = f" -> {art['artifact']}" if "artifact" in art else ""
        print(f"  minimized case {art['case']}: "
              f"{art['original_events']} -> {art['minimized_events']} "
              f"event(s) [{art['key']}]{where}")
    if "summary_file" in summary:
        print(f"campaign summary -> {summary['summary_file']}")


def _service_sweep_fn(socket_path: str):
    """A ``sweep``-shaped callable that remotes the case grid to a
    running sweep-service daemon (the dedup/cache happens there)."""
    from repro.harness.service import ServiceClient

    client = ServiceClient(socket_path)

    def sweep_fn(worker, specs, jobs=None, cache=None, kind="chaos"):
        return client.sweep(kind, specs)

    return sweep_fn


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    cache = None if args.no_cache else ResultCache()
    sweep_fn = _service_sweep_fn(args.service) if args.service else None
    summary = run_campaign(
        args.workload, campaign=args.campaign, seed=args.seed,
        minimize=args.minimize, jobs=args.jobs, cache=cache,
        out_dir=args.campaign_out, verify_matching=args.verify_matching,
        verify_bound=args.verify_bound, sweep_fn=sweep_fn)
    _print_summary(summary)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, sort_keys=True, indent=2)
            fh.write("\n")
        print(f"JSON written to {args.json}")
    if summary["failures"] == 0:
        return 0
    if args.minimize and len(summary["minimized"]) == summary["failures"]:
        return 0  # every failure reproduced + shrunk to an artifact
    return 1


if __name__ == "__main__":
    sys.exit(main())
