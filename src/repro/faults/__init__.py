"""Deterministic fault injection for the simulated cluster.

``repro.faults`` turns the perfect simulated machines into the flaky
real ones of Table I: message drop and corruption, NIC flaps, fail-stop
node crashes, straggler derating, and GPU command failures — all driven
by a seeded, content-addressable :class:`FaultPlan` and injected through
the ``env.faults`` attachment hook (zero cost when detached).

Typical use::

    from repro.faults import FaultPlan, FaultInjector

    plan = FaultPlan.from_dict({
        "seed": 7,
        "events": [
            {"kind": "drop", "probability": 0.01},
            {"kind": "nic_flap", "node": 1, "at": 1e-3, "duration": 5e-4},
        ],
    })
    app = ClusterApp(system, num_nodes=2, faults=plan)

See ``docs/faults.md`` for the plan format, the determinism guarantees,
and the tolerance mechanisms (MPI retransmit, clMPI fallback ladder)
that the rest of the stack layers on top.
"""

from repro.faults.chaos import (WORKLOADS, run_campaign, sample_plan,
                                shrink_plan)
from repro.faults.injector import FaultInjector, as_injector, injected
from repro.faults.plan import FAULT_KINDS, STRAGGLER_RESOURCES, FaultPlan

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FAULT_KINDS",
    "STRAGGLER_RESOURCES",
    "WORKLOADS",
    "as_injector",
    "injected",
    "run_campaign",
    "sample_plan",
    "shrink_plan",
]
