"""``python -m repro.faults`` entry point."""

import sys

from repro.faults.cli import main

sys.exit(main())
