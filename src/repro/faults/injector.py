"""Runtime fault injection (:class:`FaultInjector`).

The injector is an *attachment*, exactly like ``env.tracer`` and
``env.monitor``: hardware and transport layers consult ``env.faults``
only when it is not ``None``, so a fault-free simulation pays nothing.

All randomness comes from one ``random.Random(plan.seed)`` stream.  The
DES calendar is deterministic, so the layers consult the injector in a
deterministic order, so the whole fault history — which frames drop,
which retransmits happen, which GPU command fails — is a pure function
of ``(plan, workload)``.

The injector never *acts* on its own (no processes, no timers): faults
are evaluated lazily against ``env.now`` at the moment a layer asks.
A NIC flap, for example, is just a time window that :meth:`link_fate`
checks when a message would touch that NIC.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import OclError
from repro.faults.plan import FaultPlan

__all__ = ["FaultInjector", "as_injector", "injected"]

#: hard cap on retained fault records (counters keep exact totals)
_LOG_MAX = 10_000


def injected(exc: BaseException) -> bool:
    """True when ``exc`` was raised by a :class:`FaultInjector`."""
    return getattr(exc, "injected", False)


def as_injector(faults) -> Optional["FaultInjector"]:
    """Coerce a plan dict / :class:`FaultPlan` / injector / None.

    The accepted spellings let every constructor up the stack (MpiWorld,
    ClusterApp, harness specs) take one ``faults=`` argument.
    """
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultPlan):
        return FaultInjector(faults)
    return FaultInjector(FaultPlan.from_dict(faults))


class FaultInjector:
    """A :class:`FaultPlan` bound to a simulation.

    Query API (all zero-cost when no matching event exists):

    * :meth:`link_fate` — fate of one data frame on a src→dst link:
      ``"ok"``, ``"drop"``, ``"corrupt"``, ``"down"`` (NIC flap window)
      or ``"dead"`` (endpoint crashed).
    * :meth:`control_fate` — same for a control packet; control traffic
      is reliable (no drop/corrupt) but cannot cross a downed NIC.
    * :meth:`slowdown` — multiplicative time derating for a node's
      ``cpu``/``gpu``/``pcie``/``nic`` resource at the current time.
    * :meth:`check_gpu` — raises an :class:`OclError` (marked with
      ``exc.injected = True``) when the plan fails a GPU command here.

    Every injected fault appends a record to :attr:`log` and notifies
    ``env.monitor.on_fault`` when a monitor with that hook is attached.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.env = None
        self.rng = random.Random(plan.seed)
        self.log: list[dict] = []
        self.counts: dict[str, int] = {}
        #: lazily-created :class:`repro.mpi.ft.FailureDetector` shared by
        #: every communicator of the run (see ``repro.mpi.ft.detector_of``)
        self.detector = None
        # Typed views of the plan, precomputed once.
        self._crash_at: dict[int, float] = {}
        for ev in plan.of_kind("node_crash"):
            at = float(ev["at"])
            prev = self._crash_at.get(ev["node"])
            if prev is None or at < prev:
                self._crash_at[ev["node"]] = at
        self._flaps = [(ev["node"], float(ev["at"]),
                        float(ev["at"]) + float(ev["duration"]))
                       for ev in plan.of_kind("nic_flap")]
        self._drops = [(float(ev["probability"]), ev.get("src"), ev.get("dst"))
                       for ev in plan.of_kind("drop")]
        self._corrupts = [(float(ev["probability"]), ev.get("src"),
                           ev.get("dst"))
                          for ev in plan.of_kind("corrupt")]
        self._stragglers = [(ev.get("node"), ev["resource"],
                             float(ev["factor"]),
                             float(ev.get("from") or 0.0),
                             float(ev["until"]) if ev.get("until") is not None
                             else float("inf"))
                            for ev in plan.of_kind("straggler")]
        self._gpu_shots = [{"node": ev.get("node"), "at": float(ev["at"]),
                            "code": ev["code"], "fired": False}
                           for ev in plan.of_kind("gpu_fail")
                           if ev.get("at") is not None]
        self._gpu_rates = [(ev.get("node"), float(ev["probability"]),
                            ev["code"])
                           for ev in plan.of_kind("gpu_fail")
                           if ev.get("probability") is not None]

    # -- lifecycle ----------------------------------------------------------
    def attach(self, env) -> "FaultInjector":
        """Bind to ``env`` and install as ``env.faults``."""
        self.env = env
        env.faults = self
        return self

    def detach(self) -> None:
        """Remove from the environment."""
        if self.env is not None and self.env.faults is self:
            self.env.faults = None
        self.env = None

    # -- recording ----------------------------------------------------------
    def _record(self, kind: str, **detail) -> dict:
        rec = {"kind": kind, "time": self.env.now if self.env else 0.0}
        rec.update(detail)
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if len(self.log) < _LOG_MAX:
            self.log.append(rec)
        env = self.env
        if env is not None and env.metrics is not None:
            env.metrics.inc(f"faults.{kind}")
        if env is not None and env.monitor is not None:
            hook = getattr(env.monitor, "on_fault", None)
            if hook is not None:
                hook(rec)
        return rec

    def summary(self) -> dict:
        """Counts of injected faults by kind (exact, even past the log cap)."""
        return {"total": sum(self.counts.values()), "by_kind": dict(self.counts)}

    # -- node / NIC state ---------------------------------------------------
    def node_dead(self, node: int, now: Optional[float] = None) -> bool:
        """True once ``node`` has fail-stopped."""
        at = self._crash_at.get(node)
        if at is None:
            return False
        if now is None:
            now = self.env.now
        return now >= at

    def nic_down(self, node: int, now: Optional[float] = None) -> bool:
        """True while ``node``'s NIC is inside a flap window."""
        if not self._flaps:
            return False
        if now is None:
            now = self.env.now
        for n, t0, t1 in self._flaps:
            if n == node and t0 <= now < t1:
                return True
        return False

    # -- network fates ------------------------------------------------------
    def link_fate(self, src: int, dst: int, nbytes: int = 0,
                  label: str = "msg", flow: int = 0) -> str:
        """Fate of one data frame from ``src`` to ``dst`` right now.

        ``flow`` tags the fault record with the message's causal-chain
        id so a warning can be located on the exported timeline.
        """
        now = self.env.now
        for node in (src, dst):
            if self.node_dead(node, now):
                self._record("dead", src=src, dst=dst, node=node,
                             nbytes=nbytes, label=label, flow=flow)
                return "dead"
        if self.nic_down(src, now) or self.nic_down(dst, now):
            self._record("down", src=src, dst=dst, nbytes=nbytes, label=label,
                         flow=flow)
            return "down"
        rng = self.rng
        for prob, s, d in self._drops:
            if (s is None or s == src) and (d is None or d == dst):
                if rng.random() < prob:
                    self._record("drop", src=src, dst=dst, nbytes=nbytes,
                                 label=label, flow=flow)
                    return "drop"
        for prob, s, d in self._corrupts:
            if (s is None or s == src) and (d is None or d == dst):
                if rng.random() < prob:
                    self._record("corrupt", src=src, dst=dst, nbytes=nbytes,
                                 label=label, flow=flow)
                    return "corrupt"
        return "ok"

    def control_fate(self, src: int, dst: int, label: str = "ctrl") -> str:
        """Fate of a control packet: ``"ok"``, ``"down"``, or ``"dead"``."""
        now = self.env.now
        for node in (src, dst):
            if self.node_dead(node, now):
                self._record("dead", src=src, dst=dst, node=node,
                             nbytes=0, label=label)
                return "dead"
        if self.nic_down(src, now) or self.nic_down(dst, now):
            self._record("down", src=src, dst=dst, nbytes=0, label=label)
            return "down"
        return "ok"

    # -- derating -----------------------------------------------------------
    def slowdown(self, resource: str, node: int) -> float:
        """Combined straggler derate (>= 1.0) for ``resource`` on ``node``."""
        if not self._stragglers:
            return 1.0
        now = self.env.now
        factor = 1.0
        for n, res, f, t0, t1 in self._stragglers:
            if res == resource and (n is None or n == node) \
                    and t0 <= now < t1:
                factor *= f
        return factor

    # -- GPU command faults -------------------------------------------------
    def check_gpu(self, node: int, label: str = "") -> None:
        """Raise a marked :class:`OclError` if a GPU fault fires here."""
        now = self.env.now
        for shot in self._gpu_shots:
            if shot["fired"]:
                continue
            if (shot["node"] is None or shot["node"] == node) \
                    and now >= shot["at"]:
                shot["fired"] = True
                self._raise_gpu(node, shot["code"], label)
        rng = self.rng
        for n, prob, code in self._gpu_rates:
            if (n is None or n == node) and rng.random() < prob:
                self._raise_gpu(node, code, label)

    def _raise_gpu(self, node: int, code: str, label: str) -> None:
        self._record("gpu_fail", node=node, code=code, label=label)
        exc = OclError(code, f"injected GPU fault on node {node}"
                             + (f" ({label})" if label else ""))
        exc.injected = True
        raise exc
