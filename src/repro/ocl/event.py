"""OpenCL event objects.

A :class:`CLEvent` tracks a command through the queued → submitted →
running → complete lifecycle, records profiling timestamps at each
transition (``CL_PROFILING_COMMAND_*``), runs status callbacks
(``clSetEventCallback``), and exposes a simulation event that waiters
block on.

:class:`UserEvent` is ``clCreateUserEvent``: the application (or the clMPI
runtime, exactly as §V.A describes) completes it explicitly.  Our user
events mimic command events fully — status, profiling, callbacks — which
is the property the paper's implementation had to build by hand on top of
NVIDIA's runtime.

When an :class:`~repro.analysis.Sanitizer` is active, every lifecycle
transition is reported to ``env.monitor`` so the analysis layer can build
its happens-before graph (see :mod:`repro.analysis`).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.errors import OclError
from repro.ocl.enums import CommandStatus, CommandType, error_code
from repro.sim import Environment, Event

__all__ = ["CLEvent", "UserEvent"]


class CLEvent:
    """Event bound to one enqueued command."""

    def __init__(self, env: Environment,
                 command_type: CommandType = CommandType.USER,
                 label: str = ""):
        self.env = env
        self.command_type = command_type
        self.label = label or command_type.value
        self._status = CommandStatus.QUEUED
        #: profiling timestamps, keyed by CommandStatus
        self.profile: dict[CommandStatus, float] = {
            CommandStatus.QUEUED: env.now,
        }
        #: simulation event fired on completion (value: the CLEvent)
        self.completion = Event(env)
        self._callbacks: list[tuple[CommandStatus,
                                    Callable[["CLEvent", CommandStatus], None]]] = []
        #: failure exception, if the command failed (or a callback raised)
        self.error: Optional[BaseException] = None
        mon = env.monitor
        if mon is not None:
            mon.on_event_created(self)

    # -- status -----------------------------------------------------------
    @property
    def status(self) -> CommandStatus:
        """Current execution status."""
        return self._status

    @property
    def is_complete(self) -> bool:
        return self._status == CommandStatus.COMPLETE

    @property
    def execution_status(self) -> int:
        """``CL_EVENT_COMMAND_EXECUTION_STATUS`` as a ``cl_int``.

        Non-negative while the command progresses normally (QUEUED=3 …
        COMPLETE=0); a *negative* error code once the command terminated
        abnormally — exactly the spec's encoding, which is what the clMPI
        runtime inspects to decide whether a transfer must degrade.
        """
        if self.error is not None:
            return error_code(getattr(self.error, "code",
                                      "CL_INVALID_OPERATION"))
        return int(self._status)

    def _advance(self, status: CommandStatus) -> None:
        if status.value >= self._status.value and status != self._status:
            raise OclError("CL_INVALID_OPERATION",
                           f"event {self.label!r}: status cannot go "
                           f"{self._status.name} -> {status.name}")
        self._status = status
        self.profile[status] = self.env.now
        metrics = self.env.metrics
        if metrics is not None:
            metrics.inc(f"ocl.event.{status.name.lower()}")
        mon = self.env.monitor
        if mon is not None:
            mon.on_event_status(self, status)
        for trigger, fn in list(self._callbacks):
            if trigger == status:
                self._dispatch_callback(fn, status)
        if status == CommandStatus.COMPLETE:
            self.completion.succeed(self)

    def _fail(self, exc: BaseException) -> None:
        self.error = exc
        self._status = CommandStatus.COMPLETE
        self.profile[CommandStatus.COMPLETE] = self.env.now
        if self.env.metrics is not None:
            self.env.metrics.inc("ocl.event.failed")
        mon = self.env.monitor
        if mon is not None:
            mon.on_event_failed(self, exc)
        for trigger, fn in list(self._callbacks):
            if trigger == CommandStatus.COMPLETE:
                self._dispatch_callback(fn, CommandStatus.COMPLETE)
        self.completion.fail(exc)
        # OpenCL semantics: a command failure is event *status*, observed
        # by whoever waits on the event (possibly later, possibly never) —
        # it must not crash the world when unobserved at fire time.
        self.completion._defused = True

    def _dispatch_callback(self, fn: Callable[["CLEvent", CommandStatus], None],
                           status: CommandStatus) -> None:
        """Run one ``clSetEventCallback`` callback.

        A raising callback must not unwind the simulator (the real driver
        runs callbacks on an internal thread the application cannot
        crash): the exception is captured on :attr:`error` and surfaced
        through the sanitizer's report instead.
        """
        try:
            fn(self, status)
        except Exception as exc:
            if self.error is None:
                self.error = exc
            mon = self.env.monitor
            if mon is not None:
                mon.on_callback_error(self, exc)

    def _misuse(self, kind: str, message: str) -> None:
        """Report an API-misuse to the monitor, then raise it."""
        mon = self.env.monitor
        if mon is not None:
            mon.on_misuse(kind, message, entity=self)
        raise OclError("CL_INVALID_OPERATION", message)

    # -- public API --------------------------------------------------------
    def set_callback(self, fn: Callable[["CLEvent", CommandStatus], None],
                     status: CommandStatus = CommandStatus.COMPLETE) -> None:
        """Register ``fn(event, status)`` for a status transition
        (``clSetEventCallback``).  Fires immediately if already reached."""
        if self._status.value <= status.value:
            self._dispatch_callback(fn, status)
        else:
            self._callbacks.append((status, fn))

    def wait(self) -> Generator[Any, Any, "CLEvent"]:
        """Coroutine: suspend until complete (``clWaitForEvents`` on one)."""
        yield self.completion
        mon = self.env.monitor
        if mon is not None:
            mon.on_host_sync([self])
        return self

    def duration(self) -> float:
        """RUNNING→COMPLETE profiling delta (``CL_PROFILING_*`` math)."""
        try:
            return (self.profile[CommandStatus.COMPLETE]
                    - self.profile[CommandStatus.RUNNING])
        except KeyError:
            raise OclError("CL_PROFILING_INFO_NOT_AVAILABLE",
                           f"event {self.label!r} has not run") from None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CLEvent {self.label!r} {self._status.name}>"


class UserEvent(CLEvent):
    """``clCreateUserEvent``: completed explicitly by the application."""

    def __init__(self, env: Environment, label: str = "user-event"):
        super().__init__(env, CommandType.USER, label)
        self._status = CommandStatus.SUBMITTED
        self.profile[CommandStatus.SUBMITTED] = env.now

    def set_complete(self) -> None:
        """Mark the user event complete (``clSetUserEventStatus(CL_COMPLETE)``)."""
        if self.is_complete:
            self._misuse(
                "double-complete",
                f"user event {self.label!r} has already completed; "
                "clSetUserEventStatus may be called at most once")
        self._advance(CommandStatus.RUNNING)
        self._advance(CommandStatus.COMPLETE)

    def set_failed(self, exc: BaseException) -> None:
        """Mark the user event failed (negative status in the C API)."""
        if self.is_complete:
            self._misuse(
                "double-complete",
                f"user event {self.label!r} has already completed; "
                "it cannot be failed afterwards")
        self._fail(exc)
