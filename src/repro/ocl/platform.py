"""Platforms (``cl_platform_id``).

The top of the OpenCL object hierarchy: a platform represents one
vendor's runtime on one host and enumerates its devices
(``clGetDeviceIDs``).  One platform exists per simulated node; with
multi-GPU nodes it lists every GPU.
"""

from __future__ import annotations

from repro.errors import OclError
from repro.hardware.node import Node
from repro.ocl.context import Context
from repro.ocl.device import Device

__all__ = ["Platform"]


class Platform:
    """The simulated vendor runtime of one node."""

    NAME = "repro OpenCL (simulated)"
    VERSION = "OpenCL 1.1"
    VENDOR = "clMPI reproduction"

    def __init__(self, node: Node):
        self.node = node
        self._devices = [Device(node, i) for i in range(len(node.gpus))]

    @property
    def name(self) -> str:
        """``CL_PLATFORM_NAME``."""
        return self.NAME

    @property
    def version(self) -> str:
        """``CL_PLATFORM_VERSION``."""
        return self.VERSION

    def get_devices(self) -> list[Device]:
        """``clGetDeviceIDs(..., CL_DEVICE_TYPE_GPU, ...)``."""
        return list(self._devices)

    def create_context(self, device: Device | None = None,
                       functional: bool = True) -> Context:
        """``clCreateContext`` for one of this platform's devices."""
        device = device or self._devices[0]
        if device not in self._devices:
            raise OclError("CL_INVALID_DEVICE",
                           "device does not belong to this platform")
        return Context(device, functional=functional)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Platform {self.NAME!r} node {self.node.node_id}: "
                f"{len(self._devices)} device(s)>")
