"""Compute devices (``cl_device_id``): one GPU of one cluster node.

A node may carry several GPUs (``NodeSpec.num_gpus``); ``Device(node, i)``
selects the i-th, each with its own compute engine and PCIe slot — the
paper's "multiple communicator devices" per MPI process (§IV.A).
"""

from __future__ import annotations

from repro.errors import OclError
from repro.hardware.node import Node

__all__ = ["Device"]


class Device:
    """One GPU of a node, as seen by the OpenCL layer.

    Thin facade over the node's hardware models; it also carries the
    handles the clMPI runtime needs (PCIe path, NIC via the node).
    """

    def __init__(self, node: Node, index: int = 0):
        if not (0 <= index < len(node.gpus)):
            raise OclError("CL_DEVICE_NOT_FOUND",
                           f"node {node.node_id} has {len(node.gpus)} "
                           f"GPU(s); no device {index}")
        self.node = node
        self.index = index
        self.env = node.env
        self.gpu = node.gpus[index]
        self.pcie = node.pcies[index]
        self.spec = node.spec.gpu

    @property
    def name(self) -> str:
        """Device marketing name (``CL_DEVICE_NAME``)."""
        return self.spec.name

    @property
    def node_id(self) -> int:
        return self.node.node_id

    @property
    def global_mem_size(self) -> int:
        """``CL_DEVICE_GLOBAL_MEM_SIZE``."""
        return self.spec.memory_bytes

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Device {self.name}#{self.index} "
                f"on node {self.node_id}>")
