"""Simulated OpenCL 1.1-style runtime.

Implements the objects and semantics the clMPI extension builds on
(§II, §V.A of the paper): contexts, devices, **in-order and out-of-order
command queues**, NumPy-backed memory objects, kernels (a functional NumPy
body plus an analytic cost model), and the full event machinery — wait
lists, status lifecycle (queued → submitted → running → complete),
profiling timestamps, callbacks, and user events.

Naming maps 1:1 to the C API (``clEnqueueReadBuffer`` →
:meth:`CommandQueue.enqueue_read_buffer` and so on).  Every potentially
blocking call is a simulation coroutine: use ``yield from``.
"""

from repro.ocl.api import wait_for_events
from repro.ocl.buffer import Buffer
from repro.ocl.context import Context
from repro.ocl.device import Device
from repro.ocl.enums import CommandStatus, CommandType
from repro.ocl.event import CLEvent, UserEvent
from repro.ocl.kernel import Kernel
from repro.ocl.platform import Platform
from repro.ocl.queue import Command, CommandQueue

__all__ = [
    "CommandStatus",
    "CommandType",
    "CLEvent",
    "UserEvent",
    "Buffer",
    "Kernel",
    "Device",
    "Platform",
    "Context",
    "CommandQueue",
    "Command",
    "wait_for_events",
]
