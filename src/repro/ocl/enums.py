"""Status and command-type enumerations (mirroring ``cl_int`` constants)."""

from __future__ import annotations

from enum import Enum, IntEnum

__all__ = ["CommandStatus", "CommandType"]


class CommandStatus(IntEnum):
    """Execution status of a command's event (``CL_QUEUED`` ...).

    Ordered so that *later* lifecycle stages compare smaller, exactly like
    the OpenCL constants (``CL_COMPLETE == 0`` < ``CL_RUNNING`` < ...).
    """

    COMPLETE = 0
    RUNNING = 1
    SUBMITTED = 2
    QUEUED = 3


class CommandType(Enum):
    """What kind of work a command performs."""

    NDRANGE_KERNEL = "ndrange_kernel"
    READ_BUFFER = "read_buffer"
    WRITE_BUFFER = "write_buffer"
    COPY_BUFFER = "copy_buffer"
    MAP_BUFFER = "map_buffer"
    UNMAP_MEM_OBJECT = "unmap_mem_object"
    MARKER = "marker"
    BARRIER = "barrier"
    USER = "user"
    #: clMPI extension commands (§IV.A)
    SEND_BUFFER = "send_buffer"
    RECV_BUFFER = "recv_buffer"
    #: file-I/O extension commands (§VI future work)
    READ_FILE = "read_file"
    WRITE_FILE = "write_file"
