"""Status and command-type enumerations (mirroring ``cl_int`` constants)."""

from __future__ import annotations

from enum import Enum, IntEnum

__all__ = ["CommandStatus", "CommandType", "ERROR_CODES", "error_code"]


class CommandStatus(IntEnum):
    """Execution status of a command's event (``CL_QUEUED`` ...).

    Ordered so that *later* lifecycle stages compare smaller, exactly like
    the OpenCL constants (``CL_COMPLETE == 0`` < ``CL_RUNNING`` < ...).
    """

    COMPLETE = 0
    RUNNING = 1
    SUBMITTED = 2
    QUEUED = 3


#: Numeric ``cl_int`` values of the symbolic error names used in this
#: reproduction.  A failed command's event reports one of these as its
#: (negative) execution status, per the OpenCL 1.1 spec §5.9.
ERROR_CODES = {
    "CL_DEVICE_NOT_AVAILABLE": -2,
    "CL_MEM_OBJECT_ALLOCATION_FAILURE": -4,
    "CL_OUT_OF_RESOURCES": -5,
    "CL_OUT_OF_HOST_MEMORY": -6,
    "CL_PROFILING_INFO_NOT_AVAILABLE": -7,
    "CL_MAP_FAILURE": -12,
    "CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST": -14,
    "CL_INVALID_VALUE": -30,
    "CL_INVALID_CONTEXT": -34,
    "CL_INVALID_COMMAND_QUEUE": -36,
    "CL_INVALID_MEM_OBJECT": -38,
    "CL_INVALID_KERNEL": -48,
    "CL_INVALID_EVENT_WAIT_LIST": -57,
    "CL_INVALID_EVENT": -58,
    "CL_INVALID_OPERATION": -59,
}

#: fallback for error names without a standard cl_int value (e.g. faults
#: injected with a made-up code); still negative, as the spec requires
_UNKNOWN_ERROR_CODE = -9999


def error_code(name: str) -> int:
    """The (negative) ``cl_int`` value of a symbolic CL error name."""
    return ERROR_CODES.get(name, _UNKNOWN_ERROR_CODE)


class CommandType(Enum):
    """What kind of work a command performs."""

    NDRANGE_KERNEL = "ndrange_kernel"
    READ_BUFFER = "read_buffer"
    WRITE_BUFFER = "write_buffer"
    COPY_BUFFER = "copy_buffer"
    MAP_BUFFER = "map_buffer"
    UNMAP_MEM_OBJECT = "unmap_mem_object"
    MARKER = "marker"
    BARRIER = "barrier"
    USER = "user"
    #: clMPI extension commands (§IV.A)
    SEND_BUFFER = "send_buffer"
    RECV_BUFFER = "recv_buffer"
    #: file-I/O extension commands (§VI future work)
    READ_FILE = "read_file"
    WRITE_FILE = "write_file"
