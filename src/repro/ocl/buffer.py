"""Memory objects (``cl_mem``).

A :class:`Buffer` owns a NumPy byte array standing in for device memory.
The *functional* content is always host-visible to the simulator (we are
one address space), but the *timing* of every access is charged through
the PCIe / GPU models by the commands that touch it.  Allocation is
accounted against the owning device's memory capacity.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import OclError

__all__ = ["Buffer"]


class Buffer:
    """A device memory object of ``size`` bytes."""

    def __init__(self, context, size: int,
                 hostbuf: Optional[np.ndarray] = None, name: str = ""):
        if size <= 0:
            raise OclError("CL_INVALID_BUFFER_SIZE",
                           f"buffer size must be positive, got {size}")
        self.context = context
        self.size = int(size)
        self.name = name or f"buf{context.env.next_id('buf')}"
        self.device = context.device
        self.device.gpu.allocate(self.size)
        # Backing storage is lazy: timing-only runs never touch it, so a
        # 40-rank paper-scale sweep does not allocate 40 × 42 MB of NumPy.
        self._data: Optional[np.ndarray] = None
        if hostbuf is not None:
            src = _as_bytes(hostbuf)
            if src.nbytes > self.size:
                raise OclError("CL_INVALID_HOST_PTR",
                               "hostbuf larger than the buffer")
            self._storage()[:src.nbytes] = src  # CL_MEM_COPY_HOST_PTR
        self._mapped = 0
        self._released = False

    def _storage(self) -> np.ndarray:
        if self._data is None:
            self._data = np.zeros(self.size, dtype=np.uint8)
        return self._data

    # -- lifetime ----------------------------------------------------------
    def release(self) -> None:
        """Free the device allocation (``clReleaseMemObject``)."""
        if not self._released:
            self._released = True
            self.device.gpu.free(self.size)

    def _check_alive(self) -> None:
        if self._released:
            raise OclError("CL_INVALID_MEM_OBJECT",
                           f"{self.name} has been released")

    # -- raw access (simulator-internal and kernel bodies) -------------------
    def check_range(self, offset: int, size: Optional[int] = None) -> int:
        """Validate ``[offset, offset+size)``; returns the resolved size.

        Does not materialize backing storage (timing-only safe).
        """
        self._check_alive()
        size = self.size - offset if size is None else size
        if offset < 0 or size < 0 or offset + size > self.size:
            raise OclError("CL_INVALID_VALUE",
                           f"range [{offset}, {offset + size}) outside "
                           f"{self.name} of {self.size} bytes")
        return size

    def bytes_view(self, offset: int = 0,
                   size: Optional[int] = None) -> np.ndarray:
        """uint8 view of ``[offset, offset+size)`` (bounds-checked)."""
        size = self.check_range(offset, size)
        return self._storage()[offset:offset + size]

    def view(self, dtype, shape=None, offset: int = 0) -> np.ndarray:
        """Typed ndarray view over the buffer (used by kernel bodies)."""
        self._check_alive()
        dt = np.dtype(dtype)
        if shape is None:
            count = (self.size - offset) // dt.itemsize
            shape = (count,)
        nbytes = int(np.prod(shape)) * dt.itemsize
        return self.bytes_view(offset, nbytes).view(dt).reshape(shape)

    # -- mapping state (timing handled by the queue's map commands) -----------
    @property
    def is_mapped(self) -> bool:
        return self._mapped > 0

    def _map(self) -> None:
        self._check_alive()
        self._mapped += 1

    def _unmap(self) -> None:
        if self._mapped == 0:
            raise OclError("CL_INVALID_OPERATION",
                           f"{self.name} is not mapped")
        self._mapped -= 1

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Buffer {self.name} {self.size}B on {self.device.name}>"


def _as_bytes(arr: np.ndarray) -> np.ndarray:
    if not isinstance(arr, np.ndarray):
        raise OclError("CL_INVALID_HOST_PTR",
                       f"host buffer must be a numpy array, got {type(arr)!r}")
    if not arr.flags.c_contiguous:
        raise OclError("CL_INVALID_HOST_PTR",
                       "host buffers must be C-contiguous")
    return arr.reshape(-1).view(np.uint8)
