"""Kernels: a functional NumPy body plus an analytic cost model.

The real system compiles OpenCL C; our substitute registers a Python
callable that performs the same array math on the buffers' NumPy views
(so results are checkable), together with a cost model that prices the
kernel on a given :class:`~repro.hardware.gpu.GpuSpec` (so timing is
realistic).  Either half can be omitted: cost-only kernels support
timing-only experiments, body-only kernels default to a roofline cost
from declared ``flops``/``mem_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import OclError
from repro.hardware.gpu import GpuSpec

__all__ = ["Kernel"]


@dataclass
class Kernel:
    """A compiled kernel object (``cl_kernel``).

    Attributes
    ----------
    name:
        Kernel function name.
    body:
        ``body(*args)`` performing the computation; buffer arguments are
        passed through unchanged (bodies call ``buf.view(...)``), scalars
        as-is.  May be None for timing-only kernels.
    cost:
        ``cost(gpu: GpuSpec, *args) -> seconds``.  If None, the roofline
        ``gpu.kernel_time(flops(*args), mem_bytes(*args))`` is used.
    flops, mem_bytes:
        Optional per-launch totals (numbers or callables of the kernel
        args) feeding the default roofline cost.
    arg_access:
        Optional per-argument memory-access declaration used by the
        sanitizer's data-race detector (:mod:`repro.analysis`): one entry
        per kernel argument, ``'r'`` / ``'w'`` / ``'rw'`` for buffer
        arguments and ``None`` for scalars.  Kernels without a
        declaration are *not* race-checked (their access pattern is
        unknown — e.g. the Himeno kernels touch row subranges selected
        by scalar arguments).
    """

    name: str
    body: Optional[Callable[..., Any]] = None
    cost: Optional[Callable[..., float]] = None
    flops: Any = 0.0
    mem_bytes: Any = 0.0
    arg_access: Optional[tuple] = None

    def duration(self, gpu: GpuSpec, *args) -> float:
        """Modelled execution time on ``gpu``."""
        if self.cost is not None:
            t = float(self.cost(gpu, *args))
        else:
            t = gpu.kernel_time(self._eval(self.flops, args),
                                self._eval(self.mem_bytes, args))
        if t < 0:
            raise OclError("CL_INVALID_KERNEL",
                           f"kernel {self.name!r} produced a negative cost")
        return t

    def run(self, *args, functional: bool = True) -> None:
        """Execute the functional body (no-op if absent or disabled)."""
        if functional and self.body is not None:
            self.body(*args)

    @staticmethod
    def _eval(spec: Any, args) -> float:
        return float(spec(*args)) if callable(spec) else float(spec)
