"""Command queues (``cl_command_queue``).

An **in-order** queue executes its commands strictly one after another (a
command starts only when its predecessor completed *and* its wait list is
satisfied) — this is the serialization the Himeno code of Fig 2/6 relies
on.  An **out-of-order** queue starts each command as soon as its wait
list allows, so ordering comes only from events.

All ``enqueue_*`` methods are simulation coroutines (they charge the
calling host thread the API-call overhead and may block when
``blocking=True``); they return the command's :class:`CLEvent` —
``evt = yield from queue.enqueue_read_buffer(...)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional, Sequence

import numpy as np

from repro.errors import OclError
from repro.ocl.buffer import Buffer, _as_bytes
from repro.ocl.enums import CommandStatus, CommandType
from repro.ocl.event import CLEvent
from repro.ocl.kernel import Kernel
from repro.sim import Store

__all__ = ["Command", "CommandQueue"]


@dataclass
class Command:
    """One unit of queued work."""

    type: CommandType
    label: str
    event: CLEvent
    wait_events: tuple[CLEvent, ...]
    #: zero-arg factory returning the execution coroutine
    execute: Callable[[], Any]
    meta: dict = field(default_factory=dict)


class CommandQueue:
    """A command queue bound to one context/device."""

    def __init__(self, context, in_order: bool = True, name: str = ""):
        self.context = context
        self.device = context.device
        self.env = context.env
        self.in_order = in_order
        self.name = name or f"queue{self.env.next_id('queue')}"
        self._pending: set[CLEvent] = set()
        self._all_enqueued: list[CLEvent] = []
        #: out-of-order queues: event of the latest barrier, which gates
        #: every subsequently enqueued command
        self._ooo_barrier: Optional[CLEvent] = None
        if in_order:
            self._fifo: Store = Store(self.env, name=f"{self.name}.fifo")
            self.env.process(self._dispatch_in_order(),
                             name=f"{self.name}.dispatcher")

    # ------------------------------------------------------------------
    # dispatch machinery
    # ------------------------------------------------------------------
    def _submit(self, cmd: Command) -> None:
        self._pending.add(cmd.event)
        self._all_enqueued.append(cmd.event)
        cmd.event.completion.callbacks.append(
            lambda _e: self._pending.discard(cmd.event))
        if not self.in_order:
            if (self._ooo_barrier is not None
                    and cmd.type != CommandType.BARRIER
                    and not self._ooo_barrier.is_complete):
                cmd.wait_events = cmd.wait_events + (self._ooo_barrier,)
        metrics = self.env.metrics
        if metrics is not None:
            metrics.inc(f"ocl.cmd.{cmd.type.value}")
        mon = self.env.monitor
        if mon is not None:
            mon.on_command_enqueued(self, cmd)
        if self.in_order:
            self._fifo.put(cmd)
        else:
            self.env.process(self._run_one(cmd),
                             name=f"{self.name}.{cmd.label}")

    def _dispatch_in_order(self):
        while True:
            cmd = yield self._fifo.get()
            yield from self._run_one(cmd)

    def _run_one(self, cmd: Command):
        # Wait-list first (commands may depend on other queues' events).
        if cmd.wait_events:
            try:
                yield self.env.all_of([e.completion for e in cmd.wait_events])
            except BaseException as exc:
                failed = ", ".join(repr(e.label) for e in cmd.wait_events
                                   if e.error is not None) or repr(str(exc))
                cmd.event._fail(OclError(
                    "CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST",
                    f"{cmd.label!r} on queue {self.name!r}: wait-list "
                    f"event(s) {failed} failed: {exc}"))
                return
        cmd.event._advance(CommandStatus.SUBMITTED)
        cmd.event._advance(CommandStatus.RUNNING)
        mon = self.env.monitor
        if mon is not None:
            mon.on_command_running(cmd)
        try:
            yield from cmd.execute()
        except BaseException as exc:
            cmd.event._fail(exc)
            return
        cmd.event._advance(CommandStatus.COMPLETE)

    def _new_command(self, ctype: CommandType, label: str,
                     wait_for: Optional[Sequence[CLEvent]],
                     execute: Callable[[], Any], **meta) -> Command:
        wait = tuple(wait_for or ())
        for ev in wait:
            if not isinstance(ev, CLEvent):
                raise OclError("CL_INVALID_EVENT_WAIT_LIST",
                               f"wait list entry {ev!r} is not an event")
        event = CLEvent(self.env, ctype, label)
        return Command(ctype, label, event, wait, execute, dict(meta))

    def _enqueue(self, cmd: Command,
                 blocking: bool = False) -> Generator[Any, Any, CLEvent]:
        yield from self.context.host.api_call()
        self._submit(cmd)
        if blocking:
            yield cmd.event.completion
            mon = self.env.monitor
            if mon is not None:
                mon.on_host_sync([cmd.event])
            yield from self.context.host.sync_wakeup()
        return cmd.event

    # ------------------------------------------------------------------
    # kernel execution
    # ------------------------------------------------------------------
    def enqueue_nd_range_kernel(self, kernel: Kernel, args: Sequence[Any] = (),
                                wait_for: Sequence[CLEvent] = (),
                                label: str = ""
                                ) -> Generator[Any, Any, CLEvent]:
        """``clEnqueueNDRangeKernel``: run ``kernel`` with ``args``.

        Buffer arguments must belong to this queue's context; the kernel's
        functional body receives them as-is.
        """
        if not isinstance(kernel, Kernel):
            raise OclError("CL_INVALID_KERNEL", f"not a kernel: {kernel!r}")
        for a in args:
            if isinstance(a, Buffer):
                self.context._check_buffer(a, f"kernel arg of {kernel.name}")
        label = label or kernel.name
        args = tuple(args)

        def execute():
            duration = kernel.duration(self.device.spec, *args)
            yield from self.device.gpu.run_kernel(duration, label)
            kernel.run(*args, functional=self.context.functional)

        accesses = []
        if kernel.arg_access is not None:
            for a, mode in zip(args, kernel.arg_access):
                if isinstance(a, Buffer) and mode:
                    accesses.append((a, 0, a.size, mode))
        cmd = self._new_command(CommandType.NDRANGE_KERNEL, label, wait_for,
                                execute, kernel=kernel.name,
                                accesses=accesses)
        return (yield from self._enqueue(cmd))

    # ------------------------------------------------------------------
    # host <-> device transfers
    # ------------------------------------------------------------------
    def enqueue_read_buffer(self, buf: Buffer, blocking: bool, offset: int,
                            size: int, host_array: np.ndarray,
                            wait_for: Sequence[CLEvent] = (),
                            pinned: bool = True
                            ) -> Generator[Any, Any, CLEvent]:
        """``clEnqueueReadBuffer``: device → host copy.

        ``pinned`` says whether ``host_array`` models a page-locked
        allocation (§III footnote: vendors provide pinning via mapped
        host buffers; we model it as a flag).
        """
        self.context._check_buffer(buf)
        buf.check_range(offset, size)
        dst = None
        if host_array is not None:
            dst = _as_bytes(host_array)
            if dst.nbytes < size:
                raise OclError("CL_INVALID_VALUE",
                               f"host array of {dst.nbytes}B cannot hold "
                               f"{size}B")
        elif self.context.functional:
            raise OclError("CL_INVALID_HOST_PTR",
                           "host_array may only be None in timing-only mode")

        def execute():
            yield from self.device.pcie.d2h(size, pinned=pinned,
                                            label=f"read {buf.name}")
            if self.context.functional and dst is not None:
                dst[:size] = buf.bytes_view(offset, size)

        cmd = self._new_command(CommandType.READ_BUFFER, f"read:{buf.name}",
                                wait_for, execute, nbytes=size,
                                accesses=[(buf, offset, size, "r")])
        return (yield from self._enqueue(cmd, blocking))

    def enqueue_write_buffer(self, buf: Buffer, blocking: bool, offset: int,
                             size: int, host_array: np.ndarray,
                             wait_for: Sequence[CLEvent] = (),
                             pinned: bool = True
                             ) -> Generator[Any, Any, CLEvent]:
        """``clEnqueueWriteBuffer``: host → device copy."""
        self.context._check_buffer(buf)
        buf.check_range(offset, size)
        src = None
        if host_array is not None:
            src = _as_bytes(host_array)
            if src.nbytes < size:
                raise OclError("CL_INVALID_VALUE",
                               f"host array of {src.nbytes}B is smaller "
                               f"than the {size}B write")
        elif self.context.functional:
            raise OclError("CL_INVALID_HOST_PTR",
                           "host_array may only be None in timing-only mode")

        def execute():
            yield from self.device.pcie.h2d(size, pinned=pinned,
                                            label=f"write {buf.name}")
            if self.context.functional and src is not None:
                buf.bytes_view(offset, size)[:] = src[:size]

        cmd = self._new_command(CommandType.WRITE_BUFFER, f"write:{buf.name}",
                                wait_for, execute, nbytes=size,
                                accesses=[(buf, offset, size, "w")])
        return (yield from self._enqueue(cmd, blocking))

    def enqueue_copy_buffer(self, src: Buffer, dst: Buffer, src_offset: int,
                            dst_offset: int, size: int,
                            wait_for: Sequence[CLEvent] = ()
                            ) -> Generator[Any, Any, CLEvent]:
        """``clEnqueueCopyBuffer``: on-device copy (device memory b/w)."""
        self.context._check_buffer(src, "source")
        self.context._check_buffer(dst, "destination")
        src.check_range(src_offset, size)
        dst.check_range(dst_offset, size)

        def execute():
            # read + write of device memory
            duration = 2 * size / self.device.spec.mem_bandwidth
            yield from self.device.gpu.run_kernel(duration,
                                                  f"copy:{src.name}")
            if self.context.functional:
                dst.bytes_view(dst_offset, size)[:] = \
                    src.bytes_view(src_offset, size)

        cmd = self._new_command(CommandType.COPY_BUFFER,
                                f"copy:{src.name}->{dst.name}", wait_for,
                                execute, nbytes=size,
                                accesses=[(src, src_offset, size, "r"),
                                          (dst, dst_offset, size, "w")])
        return (yield from self._enqueue(cmd))

    # ------------------------------------------------------------------
    # mapping
    # ------------------------------------------------------------------
    def enqueue_map_buffer(self, buf: Buffer, blocking: bool = True,
                           offset: int = 0, size: Optional[int] = None,
                           wait_for: Sequence[CLEvent] = ()
                           ) -> Generator[Any, Any, tuple[CLEvent, np.ndarray]]:
        """``clEnqueueMapBuffer``; returns ``(event, mapped_view)``.

        The view is valid once the event completes.  Access *timing*
        through a mapping is the accessor's business (the clMPI mapped
        engine charges PCIe mapped bandwidth for its streaming).
        """
        self.context._check_buffer(buf)
        view = buf.bytes_view(offset, size)

        def execute():
            yield from self.device.pcie.map_buffer()
            buf._map()

        cmd = self._new_command(CommandType.MAP_BUFFER, f"map:{buf.name}",
                                wait_for, execute)
        event = yield from self._enqueue(cmd, blocking)
        return event, view

    def enqueue_unmap_mem_object(self, buf: Buffer,
                                 wait_for: Sequence[CLEvent] = ()
                                 ) -> Generator[Any, Any, CLEvent]:
        """``clEnqueueUnmapMemObject``."""
        self.context._check_buffer(buf)

        def execute():
            yield from self.device.pcie.map_buffer()
            buf._unmap()

        cmd = self._new_command(CommandType.UNMAP_MEM_OBJECT,
                                f"unmap:{buf.name}", wait_for, execute)
        return (yield from self._enqueue(cmd))

    # ------------------------------------------------------------------
    # ordering primitives
    # ------------------------------------------------------------------
    def enqueue_marker(self, wait_for: Sequence[CLEvent] = ()
                       ) -> Generator[Any, Any, CLEvent]:
        """``clEnqueueMarkerWithWaitList``: completes after ``wait_for``
        (and, in order, after all predecessors in this queue)."""

        def execute():
            yield self.env.timeout(0.0)

        cmd = self._new_command(CommandType.MARKER, "marker", wait_for,
                                execute)
        return (yield from self._enqueue(cmd))

    def enqueue_barrier(self) -> Generator[Any, Any, CLEvent]:
        """``clEnqueueBarrier``: all previously enqueued commands must
        complete before any later one starts (meaningful out-of-order)."""
        prior = tuple(ev for ev in self._all_enqueued
                      if not ev.is_complete)

        def execute():
            yield self.env.timeout(0.0)

        cmd = self._new_command(CommandType.BARRIER, "barrier", prior,
                                execute)
        if not self.in_order:
            self._ooo_barrier = cmd.event
        return (yield from self._enqueue(cmd))

    # ------------------------------------------------------------------
    # generic extension commands (used by clMPI and file I/O)
    # ------------------------------------------------------------------
    def enqueue_custom(self, ctype: CommandType, label: str,
                       execute: Callable[[], Any],
                       wait_for: Sequence[CLEvent] = (),
                       blocking: bool = False,
                       **meta) -> Generator[Any, Any, CLEvent]:
        """Enqueue an extension command with a caller-supplied coroutine.

        This is the hook the clMPI layer uses: its inter-node transfer
        commands run *in the queue*, under exactly the same dispatch and
        event rules as built-in commands (§IV: "executed in the same
        manner as the other OpenCL commands").
        """
        cmd = self._new_command(ctype, label, wait_for, execute, **meta)
        return (yield from self._enqueue(cmd, blocking))

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """``clFlush``: a no-op here (commands are always submitted)."""

    def finish(self) -> Generator[Any, Any, None]:
        """``clFinish``: block the calling host thread until the queue
        drains.  Free when the queue is already empty (no wait, no
        wake-up — as with the real call)."""
        blocked = False
        drained: list[CLEvent] = []
        while self._pending:
            blocked = True
            waited = tuple(self._pending)
            drained.extend(waited)
            try:
                yield self.env.all_of([e.completion for e in waited])
            except GeneratorExit:
                raise  # host coroutine torn down (abandoned at env end)
            except BaseException:
                # a command failed; its error lives on its event
                # (clFinish itself still just waits for the drain)
                pass
        if blocked:
            mon = self.env.monitor
            if mon is not None:
                mon.on_host_sync(drained)
            yield from self.context.host.sync_wakeup()
        else:
            yield from self.context.host.api_call()
