"""Free-standing OpenCL API helpers."""

from __future__ import annotations

from typing import Any, Generator, Iterable

from repro.errors import OclError
from repro.ocl.event import CLEvent

__all__ = ["wait_for_events"]


def wait_for_events(events: Iterable[CLEvent],
                    host=None) -> Generator[Any, Any, None]:
    """``clWaitForEvents``: block the calling host thread.

    ``host`` (a :class:`~repro.hardware.host.HostModel`) adds the blocking
    wake-up overhead; pass the caller's host model when modelling host
    threads, or None inside runtime-internal coroutines.
    """
    events = list(events)
    if not events:
        raise OclError("CL_INVALID_VALUE", "empty event wait list")
    env = events[0].env
    if all(e.is_complete for e in events):
        # No blocking happened: the call returns immediately.
        _check_failed(events)
        if env.monitor is not None:
            env.monitor.on_host_sync(events)
        if host is not None:
            yield from host.api_call()
        else:
            yield env.timeout(0.0)
        return
    # Wait for every event individually: clWaitForEvents returns only
    # once ALL listed events are complete, even when some fail — and a
    # failure must surface as the CL wait-list error below, not as the
    # command's raw internal exception.
    for e in events:
        try:
            yield e.completion
        except GeneratorExit:
            raise  # host coroutine torn down (abandoned at env end)
        except BaseException:
            pass  # converted to OclError by _check_failed
    _check_failed(events)
    if env.monitor is not None:
        env.monitor.on_host_sync(events)
    if host is not None:
        yield from host.sync_wakeup()


def _check_failed(events: list[CLEvent]) -> None:
    """clWaitForEvents errors when any waited event failed; name them."""
    failed = [e for e in events if e.error is not None]
    if failed:
        names = ", ".join(repr(e.label) for e in failed)
        raise OclError(
            "CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST",
            f"waited event(s) {names} failed: {failed[0].error}")
