"""Contexts (``cl_context``).

A context groups a device with the resources created against it (buffers,
user events, queues).  As in the paper's setting we use one context per
MPI process managing that node's single GPU; multi-device shared contexts
(the alternative §II dismisses for its memory-footprint cost) are
deliberately out of scope.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import OclError
from repro.ocl.buffer import Buffer
from repro.ocl.device import Device
from repro.ocl.event import UserEvent

__all__ = ["Context"]


class Context:
    """One device's resource container."""

    def __init__(self, device: Device, host=None, functional: bool = True):
        self.device = device
        self.env = device.env
        #: HostModel charging API-call overheads; defaults to the node's
        self.host = host or device.node.host
        #: False → timing-only mode: kernel bodies and payload copies are
        #: skipped; the virtual clock is still exact.  Used to run
        #: paper-scale problem sizes quickly (see DESIGN.md §7).
        self.functional = functional
        self.buffers: list[Buffer] = []
        self.queues: list = []
        #: extension slot: set by :class:`repro.clmpi.ClmpiRuntime`
        self.clmpi_runtime = None

    def create_buffer(self, size: int, hostbuf: Optional[np.ndarray] = None,
                      name: str = "") -> Buffer:
        """``clCreateBuffer``; ``hostbuf`` gives COPY_HOST_PTR semantics."""
        buf = Buffer(self, size, hostbuf, name)
        self.buffers.append(buf)
        return buf

    def create_user_event(self, label: str = "user-event") -> UserEvent:
        """``clCreateUserEvent``."""
        return UserEvent(self.env, label)

    def create_queue(self, in_order: bool = True, name: str = ""):
        """``clCreateCommandQueue`` (out-of-order via ``in_order=False``)."""
        from repro.ocl.queue import CommandQueue
        q = CommandQueue(self, in_order=in_order, name=name)
        self.queues.append(q)
        return q

    def release(self) -> None:
        """Release all buffers created against this context."""
        for buf in self.buffers:
            buf.release()
        self.buffers.clear()

    def _check_buffer(self, buf: Buffer, what: str = "buffer") -> None:
        if not isinstance(buf, Buffer) or buf.context is not self:
            raise OclError("CL_INVALID_MEM_OBJECT",
                           f"{what} does not belong to this context")
