"""Full-stack launcher: one OpenCL context + clMPI runtime per MPI rank.

This is the top of the substrate stack: it builds a simulated cluster
from a system preset, gives every rank a :class:`RankContext` bundling
its MPI communicator, OpenCL device/context and clMPI runtime, and runs
rank ``main`` coroutines to completion.

Example
-------
>>> from repro import launch
>>> from repro.systems import cichlid
>>> import numpy as np
>>> def main(ctx):
...     yield from ctx.comm.barrier()
...     return ctx.comm.rank
>>> launch(cichlid(), 2, main)
[0, 1]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.clmpi.runtime import ClmpiRuntime
from repro.clmpi.selector import TransferSelector
from repro.errors import ReproError
from repro.mpi.comm import Communicator
from repro.mpi.world import MpiWorld
from repro.ocl.context import Context
from repro.ocl.device import Device
from repro.ocl.queue import CommandQueue
from repro.systems.presets import SystemPreset

__all__ = ["RankContext", "ClusterApp", "launch"]


@dataclass
class RankContext:
    """Everything one rank's ``main`` coroutine needs."""

    comm: Communicator
    device: Device
    ocl: Context
    runtime: ClmpiRuntime

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def env(self):
        return self.comm.env

    @property
    def node(self):
        return self.device.node

    def queue(self, in_order: bool = True, name: str = "") -> CommandQueue:
        """Create a command queue on this rank's device."""
        return self.ocl.create_queue(in_order=in_order, name=name)


class ClusterApp:
    """A configured simulated cluster ready to run rank coroutines.

    Parameters
    ----------
    system:
        A :class:`~repro.systems.SystemPreset`.
    num_nodes:
        Ranks/nodes to instantiate.
    functional:
        False switches the OpenCL contexts to timing-only mode (kernel
        bodies and payload copies skipped; the virtual clock is exact) —
        used to run paper-scale problems quickly.
    force_mode / force_block:
        Transfer-engine overrides passed to every rank's selector
        (Fig 8's per-engine sweeps).
    trace:
        Attach a tracer for Fig 4-style timelines.
    faults:
        A :class:`~repro.faults.FaultPlan` (or plan dict / prebuilt
        :class:`~repro.faults.FaultInjector`) to inject into the run.
    metrics:
        Attach a :class:`~repro.obs.MetricsRegistry` (``env.metrics``).
    """

    def __init__(self, system: SystemPreset, num_nodes: int,
                 functional: bool = True,
                 force_mode: Optional[str] = None,
                 force_block: Optional[int] = None,
                 trace: bool = False,
                 faults=None, metrics: bool = False):
        if not isinstance(system, SystemPreset):
            raise ReproError("ClusterApp needs a SystemPreset")
        self.system = system
        self.world = MpiWorld(system, num_nodes=num_nodes, trace=trace,
                              faults=faults, metrics=metrics)
        self.env = self.world.env
        self.faults = self.world.faults
        self.contexts: list[RankContext] = []
        for rank in range(self.world.size):
            comm = self.world.comm(rank)
            device = Device(self.world.cluster[rank])
            ocl = Context(device, functional=functional)
            selector = TransferSelector(system.policy,
                                        force_mode=force_mode,
                                        force_block=force_block)
            runtime = ClmpiRuntime(ocl, comm, selector=selector)
            self.contexts.append(RankContext(comm, device, ocl, runtime))

    @property
    def size(self) -> int:
        return self.world.size

    @property
    def tracer(self):
        return self.env.tracer

    @property
    def metrics(self):
        return self.env.metrics

    def run(self, main: Callable, *args,
            until: Optional[float] = None, **kwargs) -> list[Any]:
        """Run ``main(rank_ctx, *args, **kwargs)`` on every rank.

        Returns the per-rank return values; the virtual makespan is
        ``self.env.now`` afterwards.
        """
        procs = []
        for ctx in self.contexts:
            proc = self.env.process(main(ctx, *args, **kwargs),
                                    name=f"rank{ctx.rank}.main")
            if self.env.monitor is not None:
                self.env.monitor.on_rank_process(ctx.rank, proc)
            procs.append(proc)
        self.env.run(until=until)
        stuck = [p.name for p in procs if p.is_alive]
        if stuck and until is None:
            raise ReproError(
                f"deadlock: ranks never terminated: {stuck} (run under "
                "repro.analysis.Sanitizer for a witness chain)")
        return [p.value if p.triggered else None for p in procs]


def launch(system: SystemPreset, num_nodes: int, main: Callable, *args,
           **kwargs) -> list[Any]:
    """One-shot convenience: build a :class:`ClusterApp` and run ``main``."""
    app = ClusterApp(system, num_nodes)
    return app.run(main, *args, **kwargs)
