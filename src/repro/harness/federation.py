"""Federation worker agents for the sweep service.

``python -m repro.harness agent --socket /tmp/clmpi.sock`` attaches a
worker-agent process to a running coordinator (a ``serve`` daemon —
possibly on another host, reached over ``--tcp host:port``).  N agents
drain the coordinator's one journaled queue under **time-bounded
leases**:

* the agent registers (a stable, client-chosen id), then loops:
  claim up to ``--slots`` leases → compute each point through the same
  :func:`repro.harness.parallel.compute_point` the daemon's local
  executor runs → report completions;
* a heartbeat thread renews every held lease on an interval the
  coordinator suggests (ttl/3); if the agent dies or is partitioned
  away, the unrenewed leases expire and the coordinator re-queues the
  points — nothing is lost, and a late completion from the revenant
  agent is harmless (first write wins, the loser records
  ``duplicate_result``);
* every request runs through :class:`ServiceClient`'s transparent
  retry (exponential backoff + jitter), so a coordinator restart or a
  transient partition looks like latency, not failure.  An agent never
  exits on a connection error — it keeps backing off and re-registers
  when the coordinator answers again, resuming ownership of any of its
  leases that survived in the journal.

Agents hold **no durable state**: the queue journal and the shared
store belong to the coordinator.  That is what makes agent death free —
the acceptance bar (fig8 output byte-identical to a serial sweep under
any combination of agent kills, partitions, and coordinator restarts)
holds because results are deterministic, completion is arbitrated
first-write-wins, and every lease transition is journaled on exactly
one side.
"""

from __future__ import annotations

import os
import socket as socket_mod
import threading
import time
from typing import Any, Optional

from repro.harness.parallel import RetryPolicy, compute_point
from repro.harness.service import ServiceClient, resolve_worker

__all__ = ["FederationAgent", "run_agent"]


class FederationAgent:
    """One worker-agent process (see module doc).

    ``once=True`` turns the infinite drain loop into "work until the
    coordinator has nothing pending, then exit" — what the smoke tests
    and benchmarks use.  The long-running form stops only on
    ``stop_event`` (or SIGTERM via the CLI wrapper).
    """

    def __init__(self, socket_path: Optional[str] = None,
                 tcp: Optional[tuple[str, int]] = None,
                 name: Optional[str] = None, slots: int = 1,
                 poll_s: float = 0.05, once: bool = False,
                 stop_event: Optional[threading.Event] = None,
                 verbose: bool = False):
        self.client = ServiceClient(socket_path, tcp=tcp, retries=6,
                                    backoff_s=0.1, backoff_cap_s=2.0)
        self.name = name
        self.slots = max(1, int(slots))
        self.poll_s = poll_s
        self.once = once
        self.verbose = verbose
        self.stop = stop_event or threading.Event()
        self.agent_id: Optional[str] = None
        self.lease_ttl = 30.0
        self.heartbeat_s = 10.0
        self._draining = False
        self._lock = threading.Lock()
        #: lease id -> lease grant payload, while computing
        self._held: dict[str, dict] = {}
        self._summary = {"points": 0, "duplicates": 0,
                         "reconnects": 0}

    # -- coordinator conversation -------------------------------------------
    def _register(self) -> bool:
        """Introduce ourselves; retried forever by the caller's loop."""
        try:
            reply = self.client._call({
                "op": "agent.register", "name": self.name,
                "host": socket_mod.gethostname(), "pid": os.getpid(),
                "slots": self.slots})
        except (OSError, RuntimeError):
            return False
        self.agent_id = reply["agent"]
        self.lease_ttl = float(reply.get("lease_ttl", 30.0))
        self.heartbeat_s = float(reply.get("heartbeat",
                                           self.lease_ttl / 3.0))
        if self.name is None:
            self.name = self.agent_id  # keep the id across reconnects
        if self.verbose:
            print(f"agent {self.agent_id}: registered "
                  f"(ttl {self.lease_ttl}s)")
        return True

    def _heartbeat_loop(self) -> None:
        """Renew held leases until stopped; on a dead coordinator, keep
        trying — the main loop handles re-registration."""
        while not self.stop.wait(self.heartbeat_s):
            with self._lock:
                held = list(self._held)
            try:
                reply = self.client._call({
                    "op": "agent.heartbeat", "agent": self.agent_id,
                    "leases": held})
            except (OSError, RuntimeError):
                continue  # partitioned; leases may expire, that's fine
            self._draining = bool(reply.get("draining"))
            if not reply.get("known", True):
                # coordinator restarted and forgot us: re-register
                # under the same id so journaled leases stay ours
                self._summary["reconnects"] += 1
                self._register()

    def _complete(self, grant: dict, result: Any,
                  attempts: int) -> None:
        """Report one finished point; never give up on a partition —
        the result is already computed, so we block (with backoff)
        until the coordinator takes it or declares it a duplicate."""
        request = {"op": "agent.complete", "agent": self.agent_id,
                   "lease": grant["lease"], "job": grant["job"],
                   "index": grant["index"], "result": result,
                   "attempts": attempts}
        while not self.stop.is_set():
            try:
                reply = self.client._call(request)
            except (OSError, RuntimeError):
                self._summary["reconnects"] += 1
                time.sleep(min(2.0, self.heartbeat_s))
                continue
            if reply.get("disposition") == "duplicate_result":
                self._summary["duplicates"] += 1
            else:
                self._summary["points"] += 1
            return

    # -- the work itself ----------------------------------------------------
    def _run_lease(self, grant: dict) -> None:
        policy_dict = grant.get("policy") or {}
        policy = RetryPolicy(
            timeout_s=policy_dict.get("timeout_s"),
            retries=int(policy_dict.get("retries", 0)),
            backoff_s=float(policy_dict.get("backoff_s", 0.1)),
            backoff_cap_s=float(policy_dict.get("backoff_cap_s", 5.0)))
        try:
            worker = resolve_worker(grant["worker"])
            # store=None: agents are stateless — the coordinator
            # arbitrates storage on completion (put_if_absent)
            result, attempts = compute_point(
                worker, grant["spec"], policy,
                measure=grant.get("measure"), store=None,
                kind=grant.get("kind", "sweep"))
        except Exception as exc:  # defensive: never lose a lease
            result = {"sweep_error": {"type": type(exc).__name__,
                                      "message": str(exc),
                                      "spec": grant["spec"]}}
            attempts = 1
        with self._lock:
            self._held.pop(grant["lease"], None)
        # Always report, even if our lease looks expired from here: the
        # coordinator arbitrates (first write wins) and a losing submit
        # deterministically lands in its duplicate_results counter —
        # which is exactly the accounting the failure matrix promises.
        self._complete(grant, result, attempts)

    def _claim_and_run(self) -> int:
        """One claim round; returns how many leases were granted."""
        try:
            reply = self.client._call({
                "op": "agent.claim", "agent": self.agent_id,
                "max": self.slots})
        except (OSError, RuntimeError):
            self._summary["reconnects"] += 1
            if not self._register():
                time.sleep(min(2.0, self.heartbeat_s))
            return 0
        if not reply.get("known", True):
            self._register()
            return 0
        self._draining = bool(reply.get("draining"))
        grants = reply.get("leases", [])
        if not grants:
            return 0
        with self._lock:
            for grant in grants:
                self._held[grant["lease"]] = grant
        threads = [threading.Thread(
            target=self._run_lease, args=(grant,),
            name=f"agent-lease-{grant['lease']}", daemon=True)
            for grant in grants]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return len(grants)

    def _open_points(self) -> Optional[int]:
        try:
            stats = self.client.stats()
        except (OSError, RuntimeError):
            return None
        return int(stats.get("queue_depth", 0))

    def run(self) -> dict:
        """The agent main loop; returns a summary dict on exit."""
        backoff = 0.1
        while not self.stop.is_set() and not self._register():
            if self.once:
                raise ConnectionError("no coordinator answered")
            time.sleep(backoff)
            backoff = min(2.0, backoff * 2)
        hb = threading.Thread(target=self._heartbeat_loop,
                              name="agent-heartbeat", daemon=True)
        hb.start()
        idle_rounds = 0
        try:
            while not self.stop.is_set():
                granted = self._claim_and_run()
                if granted:
                    idle_rounds = 0
                    continue
                idle_rounds += 1
                if self.once and idle_rounds >= 2:
                    depth = self._open_points()
                    if depth == 0:
                        break
                # drain or empty queue: keep polling — the coordinator
                # may restart, un-drain, or receive new jobs
                time.sleep(self.poll_s)
        finally:
            self.stop.set()
            hb.join(timeout=2.0)
            if self.agent_id is not None:
                try:
                    self.client._call({"op": "agent.deregister",
                                       "agent": self.agent_id})
                except (OSError, RuntimeError):
                    pass  # coordinator gone; our leases will expire
        if self.verbose:
            print(f"agent {self.agent_id}: {self._summary}")
        return dict(self._summary)


def run_agent(socket_path: Optional[str] = None,
              tcp: Optional[tuple[str, int]] = None,
              name: Optional[str] = None, slots: int = 1,
              poll_s: float = 0.05, once: bool = False,
              stop_event: Optional[threading.Event] = None,
              verbose: bool = False) -> dict:
    """Run one federation agent to completion (the CLI entry point and
    the in-process form tests/benchmarks embed)."""
    agent = FederationAgent(socket_path=socket_path, tcp=tcp,
                            name=name, slots=slots, poll_s=poll_s,
                            once=once, stop_event=stop_event,
                            verbose=verbose)
    return agent.run()
