"""Fig 4 — execution timelines of the overlap behaviours.

The paper's Figure 4 illustrates (a) the hand-optimized implementation
with communication fully hidden, (b) the same implementation when
communication exceeds computation and the blocked host delays the second-
stage communication, and (c) the clMPI implementation releasing commands
without host involvement.  This runner regenerates the three panels as
ASCII Gantt charts from real simulation traces, plus quantitative overlap
statistics used by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.himeno import HimenoConfig, run_himeno
from repro.sim.trace import Tracer
from repro.systems import get_system

__all__ = ["run_fig4", "TimelinePanel"]


@dataclass
class TimelinePanel:
    """One Fig 4 panel: a rendered chart plus overlap metrics."""

    label: str
    implementation: str
    nodes: int
    chart: str
    #: seconds during which GPU compute and network are both active
    overlap: float
    #: total network busy time
    net_time: float
    #: total GPU compute time
    compute_time: float

    @property
    def overlap_fraction(self) -> float:
        """Fraction of network time hidden behind computation."""
        return self.overlap / self.net_time if self.net_time > 0 else 0.0


def _panel(label: str, system: str, nodes: int, impl: str,
           iterations: int) -> TimelinePanel:
    preset = get_system(system)
    cfg = HimenoConfig(size="M", iterations=iterations)
    res = run_himeno(preset, nodes, impl, cfg, functional=False, trace=True)
    tracer: Tracer = res.tracer
    lanes = [ln for ln in tracer.lanes() if ln.startswith("node0")
             or ln.startswith("node1.nic")]
    chart = tracer.render_gantt(width=72, lanes=lanes)
    return TimelinePanel(
        label=label, implementation=impl, nodes=nodes, chart=chart,
        overlap=tracer.overlap_time("compute", "net"),
        net_time=sum(tracer.busy_time(ln) for ln in tracer.lanes()
                     if ln.endswith(".nic.tx")),
        compute_time=tracer.busy_time("node0.gpu"),
    )


def run_fig4(system: str = "cichlid", iterations: int = 2,
             verbose: bool = True) -> list[TimelinePanel]:
    """Regenerate the three Fig 4 panels."""
    panels = [
        _panel("(a) hand-optimized, communication hidden (2 nodes)",
               system, 2, "hand-optimized", iterations),
        _panel("(b) hand-optimized, communication exposed (4 nodes)",
               system, 4, "hand-optimized", iterations),
        _panel("(c) clMPI (4 nodes)", system, 4, "clmpi", iterations),
    ]
    if verbose:
        for p in panels:
            print(f"\nFig 4{p.label}")
            print(p.chart)
            print(f"  net busy {p.net_time * 1e3:.2f} ms, GPU busy "
                  f"{p.compute_time * 1e3:.2f} ms, overlap "
                  f"{p.overlap * 1e3:.2f} ms "
                  f"({p.overlap_fraction * 100:.0f}% of net hidden)")
    return panels
