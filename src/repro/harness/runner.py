"""Command-line entry point: ``python -m repro.harness`` / ``clmpi-harness``."""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.harness.cache import ResultCache
from repro.harness.fig10 import run_fig10
from repro.harness.fig8 import run_fig8
from repro.harness.fig9 import run_fig9
from repro.harness.table1 import run_table1
from repro.harness.timeline import run_fig4

__all__ = ["main"]


def _nodes_list(text: str) -> list[int]:
    return [int(x) for x in text.split(",") if x]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="clmpi-harness",
        description="Regenerate the paper's evaluation tables and figures "
                    "on the simulated clusters.")
    p.add_argument("--cache-stats", action="store_true",
                   help="print result-cache hit/miss counters and exit "
                        "(usable without an experiment)")
    sub = p.add_subparsers(dest="experiment", required=True)

    # Sweep-wide options shared by every experiment subcommand.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("-j", "--jobs", type=int, default=1,
                        help="sweep worker processes (0 = one per CPU; "
                             "default 1 = serial)")
    common.add_argument("--no-cache", action="store_true",
                        help="recompute every point, bypassing "
                             ".repro_cache/")
    common.add_argument("--json", metavar="PATH", default=None,
                        help="also write the table as canonical JSON")
    common.add_argument("--faults", metavar="PATH", default=None,
                        help="JSON fault plan injected into every sweep "
                             "point (see docs/faults.md); supported by "
                             "fig8 and fig9")
    common.add_argument("--fault-seed", type=int, default=None,
                        help="override the plan's RNG seed (distinct "
                             "seeds give distinct fault histories)")
    common.add_argument("--report", metavar="PATH", default=None,
                        help="write the run's merged RunReport (metrics "
                             "snapshot, critical path, fault tallies — "
                             "see docs/observability.md) as JSON; "
                             "supported by fig8 and fig9")
    common.add_argument("--metrics", action="store_true",
                        help="print the merged metrics snapshot after "
                             "the run; supported by fig8 and fig9")
    common.add_argument("--trace-out", metavar="PATH", default=None,
                        help="export a Chrome-tracing JSON with causal "
                             "flow arrows (chrome://tracing / Perfetto); "
                             "supported by fig4")
    common.add_argument("--engine", default="coroutine",
                        choices=["coroutine", "vectorized"],
                        help="simulation engine for timing-only points: "
                             "'vectorized' batches all ranks into NumPy "
                             "lanes (byte-identical results, seconds at "
                             "1k+ ranks); supported by fig8 and fig9")
    common.add_argument("--reps", type=int, default=None, metavar="MAX",
                        help="adaptive repetitions per point, up to MAX "
                             "(Hunold & Carpen-Amarie); table footers "
                             "and --report gain mean ± ci stats; "
                             "supported by fig8 and fig9")
    common.add_argument("--telemetry", metavar="PATH", default=None,
                        help="append lifecycle spans for every sweep "
                             "point to this JSONL log (same format as "
                             "the service's telemetry.jsonl — see "
                             "docs/observability.md); supported by "
                             "fig8 and fig9")

    sub.add_parser("table1", parents=[common],
                   help="Table I: system specifications")

    f8 = sub.add_parser("fig8", parents=[common],
                        help="Fig 8: pt2pt sustained bandwidth")
    f8.add_argument("--system", default="cichlid",
                    choices=["cichlid", "ricc"])
    f8.add_argument("--repeats", type=int, default=4)
    f8.add_argument("--ranks", type=int, default=2,
                    help="simulated ranks: even counts > 2 run P/2 "
                         "concurrent pairs (mesoscale sweeps; pair with "
                         "--engine vectorized for 1k-10k ranks)")

    f9 = sub.add_parser("fig9", parents=[common],
                        help="Fig 9: Himeno benchmark")
    f9.add_argument("--system", default="cichlid",
                    choices=["cichlid", "ricc"])
    f9.add_argument("--nodes", type=_nodes_list, default=None)
    f9.add_argument("--size", default="M")
    f9.add_argument("--dims", type=_nodes_list, default=None,
                    metavar="MI,MJ,MK",
                    help="explicit grid dims (overrides --size; mesoscale "
                         "node counts need mi >= 2*nodes + 2)")
    f9.add_argument("--iterations", type=int, default=4)
    f9.add_argument("--functional", action="store_true",
                    help="run the NumPy kernels for real (slower)")

    f10 = sub.add_parser("fig10", parents=[common],
                         help="Fig 10: nanopowder simulation")
    f10.add_argument("--nodes", type=_nodes_list, default=None)
    f10.add_argument("--steps", type=int, default=2)
    f10.add_argument("--functional", action="store_true")

    f4 = sub.add_parser("fig4", parents=[common],
                        help="Fig 4: overlap timelines")
    f4.add_argument("--system", default="cichlid",
                    choices=["cichlid", "ricc"])
    f4.add_argument("--chrome-trace", metavar="PATH", default=None,
                    help="also export panel (c)'s trace as a Chrome-"
                         "tracing JSON (chrome://tracing / Perfetto)")

    tn = sub.add_parser("tune", parents=[common],
                        help="empirically auto-tune the transfer "
                             "policy (§V.B extension)")
    tn.add_argument("--system", default="ricc",
                    choices=["cichlid", "ricc"])

    sub.add_parser("all", parents=[common],
                   help="run every experiment at default settings")

    # -- sweep service (docs/service.md) ------------------------------------
    sv = sub.add_parser("serve",
                        help="run the persistent sweep-service daemon "
                             "(journaled queue, shared store, reaped "
                             "workers — see docs/service.md)")
    sv.add_argument("--root", default=".repro_service",
                    help="service state dir (journal + shared store); "
                         "default .repro_service")
    sv.add_argument("--socket", default=None,
                    help="unix socket path (default ROOT/service.sock)")
    sv.add_argument("--port", type=int, default=None,
                    help="also listen on 127.0.0.1:PORT (minimal HTTP "
                         "and JSON-lines; 0 = pick a free port)")
    sv.add_argument("-j", "--jobs", type=int, default=2,
                    help="concurrent point-worker slots (default 2; "
                         "0 = pure coordinator, computes nothing "
                         "itself and only leases points to federation "
                         "agents)")
    sv.add_argument("--point-timeout", type=float, default=300.0,
                    metavar="SECONDS",
                    help="wall-clock budget per point attempt before the "
                         "worker is reaped (default 300; 0 = no limit)")
    sv.add_argument("--retries", type=int, default=2,
                    help="extra attempts after a timeout/killed worker "
                         "(default 2)")
    sv.add_argument("--backoff", type=float, default=0.1,
                    metavar="SECONDS",
                    help="initial retry backoff, doubling per retry "
                         "(default 0.1)")
    sv.add_argument("--store-budget", type=int, default=None,
                    metavar="BYTES",
                    help="LRU-evict the shared store beyond this size "
                         "(default: unbounded)")
    sv.add_argument("--lease-ttl", type=float, default=30.0,
                    metavar="SECONDS",
                    help="federation lease time-to-live: an agent that "
                         "does not renew within this window loses the "
                         "point back to the queue (default 30)")
    sv.add_argument("--drain-grace", type=float, default=30.0,
                    metavar="SECONDS",
                    help="on SIGTERM, wait up to this long for in-"
                         "flight points and live leases before "
                         "journaling and exiting 0 (default 30)")

    ag = sub.add_parser("agent",
                        help="run a federation worker agent against a "
                             "coordinator daemon (docs/service.md, "
                             "'Federation')")
    ag.add_argument("--socket", default=None,
                    help="the coordinator's unix socket")
    ag.add_argument("--tcp", default=None, metavar="HOST:PORT",
                    help="the coordinator's TCP address (for agents on "
                         "other hosts)")
    ag.add_argument("--name", default=None,
                    help="stable agent id (default: host+pid); reusing "
                         "the name across restarts lets the agent "
                         "reclaim its journaled leases")
    ag.add_argument("--slots", type=int, default=1,
                    help="points computed concurrently (default 1)")
    ag.add_argument("--poll", type=float, default=0.05,
                    metavar="SECONDS",
                    help="idle poll interval when the queue is empty "
                         "(default 0.05)")
    ag.add_argument("--once", action="store_true",
                    help="exit when the coordinator's queue is fully "
                         "drained instead of polling forever")

    sm = sub.add_parser("submit",
                        help="submit a sweep to a running service daemon")
    sm.add_argument("kind", help="job kind (bandwidth, himeno, "
                                 "nanopowder, chaos) or any kind with "
                                 "--worker")
    sm.add_argument("--socket", required=True,
                    help="the daemon's unix socket")
    sm.add_argument("--specs", required=True, metavar="PATH",
                    help="JSON file holding the list of spec dicts")
    sm.add_argument("--worker", default=None, metavar="MOD:FN",
                    help="explicit worker dotted path (overrides the "
                         "kind's built-in worker)")
    sm.add_argument("--reps", type=int, default=None, metavar="MAX",
                    help="adaptive repetitions per point, up to MAX "
                         "(Hunold & Carpen-Amarie; results/report gain "
                         "stats.* fields)")
    sm.add_argument("--timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="per-point timeout override for this job")
    sm.add_argument("--wait", action="store_true",
                    help="block until the job finishes and print its "
                         "results as JSON")

    st = sub.add_parser("status",
                        help="show a service daemon's jobs (or one job)")
    st.add_argument("--socket", required=True,
                    help="the daemon's unix socket")
    st.add_argument("job", nargs="?", default=None,
                    help="job id (default: list all jobs + stats)")

    tp = sub.add_parser("top",
                        help="live one-screen view of a service daemon "
                             "(progress bars, ETAs, last errors)")
    tp.add_argument("--socket", required=True,
                    help="the daemon's unix socket")
    tp.add_argument("--interval", type=float, default=1.0,
                    metavar="SECONDS",
                    help="refresh period (default 1.0)")
    tp.add_argument("--once", action="store_true",
                    help="render a single frame and exit (no ANSI "
                         "screen clearing; for scripts and tests)")
    return p


def _print_cache_stats() -> None:
    cache = ResultCache()
    stats = cache.read_stats()
    print(f"cache dir: {cache.root}")
    print(f"entries:   {cache.entry_count()}")
    print(f"hits:      {stats['hits']}")
    print(f"misses:    {stats['misses']}")
    print(f"corrupt:   {stats['corrupt_deleted']} (deleted on read), "
          f"{stats['corrupt_replaced']} (healed by a concurrent writer)")
    print(f"evicted:   {stats['evicted']} (LRU, shared-store budget)")
    breakdown = cache.engine_breakdown()
    if breakdown:
        per = ", ".join(f"{eng}: {n}"
                        for eng, n in sorted(breakdown.items()))
        print(f"by engine: {per}")
    _print_telemetry_stats()


def _print_telemetry_stats() -> None:
    """Lifetime span-log counters from the service root's sidecar
    (``$REPRO_SERVICE_ROOT``, default ``.repro_service``)."""
    import os
    from pathlib import Path

    from repro.obs.telemetry import (TELEMETRY_STATS_NAME,
                                     read_telemetry_stats)

    root = Path(os.environ.get("REPRO_SERVICE_ROOT", ".repro_service"))
    sidecar = root / TELEMETRY_STATS_NAME
    if not sidecar.exists():
        return
    t = read_telemetry_stats(sidecar)
    print(f"telemetry: {t['spans_written']} span(s) written, "
          f"{t['rotations']} log rotation(s) ({sidecar})")


def _load_faults(args) -> Optional[dict]:
    """Resolve --faults/--fault-seed into a JSON-able plan dict."""
    path = getattr(args, "faults", None)
    seed = getattr(args, "fault_seed", None)
    if path is None:
        if seed is not None:
            raise SystemExit("--fault-seed requires --faults PATH")
        return None
    from repro.faults import FaultPlan

    plan = FaultPlan.load(path)
    if seed is not None:
        plan = plan.with_seed(seed)
    return plan.to_dict()


def _write_json(table, path: Optional[str]) -> None:
    if path:
        with open(path, "w") as fh:
            fh.write(table.to_json() + "\n")
        print(f"JSON written to {path}")


def _service_main(args) -> int:
    """The serve/submit/status subcommands (see docs/service.md)."""
    import json

    from repro.harness.service import ServiceClient, serve

    if args.experiment == "serve":
        import signal

        timeout = args.point_timeout if args.point_timeout > 0 else None
        service = serve(args.root, socket_path=args.socket,
                        tcp_port=args.port, jobs=args.jobs,
                        point_timeout_s=timeout, retries=args.retries,
                        backoff_s=args.backoff,
                        store_budget_bytes=args.store_budget,
                        lease_ttl_s=args.lease_ttl)

        def _graceful(signum, frame):
            # SIGTERM = graceful drain: stop issuing work, wait
            # bounded, journal, exit 0 (docs/service.md, "Federation")
            def _drain_and_stop():
                service.drain(grace_s=args.drain_grace)
                service.stop()
            import threading
            threading.Thread(target=_drain_and_stop,
                             daemon=True).start()

        signal.signal(signal.SIGTERM, _graceful)
        service.run_forever()
        return 0

    if args.experiment == "agent":
        import signal
        import threading

        from repro.harness.federation import run_agent

        if not args.socket and not args.tcp:
            raise SystemExit("agent needs --socket or --tcp HOST:PORT")
        tcp = None
        if args.tcp:
            host, _, port = args.tcp.rpartition(":")
            if not host or not port.isdigit():
                raise SystemExit(f"bad --tcp address {args.tcp!r}; "
                                 "expected HOST:PORT")
            tcp = (host, int(port))
        stop = threading.Event()
        signal.signal(signal.SIGTERM, lambda s, f: stop.set())
        summary = run_agent(socket_path=args.socket, tcp=tcp,
                            name=args.name, slots=args.slots,
                            poll_s=args.poll, once=args.once,
                            stop_event=stop, verbose=True)
        return 0 if summary is not None else 1

    if args.experiment == "top":
        from repro.harness.top import run_top
        return run_top(args.socket, interval_s=args.interval,
                       once=args.once)

    client = ServiceClient(args.socket)
    if args.experiment == "submit":
        with open(args.specs) as fh:
            specs = json.load(fh)
        if not isinstance(specs, list):
            raise SystemExit(f"{args.specs} must hold a JSON list of "
                             "spec objects")
        options: dict = {}
        if args.worker:
            options["worker"] = args.worker
        if args.reps is not None:
            options["measure"] = {"max_reps": args.reps}
        if args.timeout is not None:
            options["timeout_s"] = args.timeout
        job = client.submit(args.kind, specs, options)
        print(f"submitted {job['job']}: {job['total']} point(s)")
        if args.wait:
            outcome = client.wait(job["job"])
            print(json.dumps(outcome["results"], sort_keys=True,
                             indent=2))
            return 1 if outcome["errors"] else 0
        return 0

    # status
    if args.job:
        job = client.status(args.job)
        print(json.dumps(job, sort_keys=True, indent=2))
        return 0
    for job in client.jobs():
        print(f"{job['job']}  {job['status']:8s} "
              f"{job['completed']}/{job['total']} done, "
              f"{job['errors']} error(s), "
              f"{job['retried_points']} retried")
    stats = client.stats()
    print(f"workers: {stats['workers']}, inflight: "
          f"{stats['inflight_points']}, deduped: "
          f"{stats['deduped_points']}, store entries: "
          f"{stats['store']['entries']}")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # ``--cache-stats`` works standalone (no experiment required), so it
    # is handled before argparse enforces the subcommand.
    if "--cache-stats" in argv:
        _print_cache_stats()
        return 0
    args = build_parser().parse_args(argv)
    if args.experiment in ("serve", "agent", "submit", "status", "top"):
        return _service_main(args)
    jobs = getattr(args, "jobs", 1)
    cache = None if getattr(args, "no_cache", False) else ResultCache()
    json_path = getattr(args, "json", None)
    faults = _load_faults(args)
    if faults is not None and args.experiment not in ("fig8", "fig9"):
        print(f"warning: {args.experiment} does not support fault "
              "injection; --faults ignored", file=sys.stderr)
        faults = None
    report = getattr(args, "report", None)
    show_metrics = getattr(args, "metrics", False)
    if (report or show_metrics) and args.experiment not in ("fig8", "fig9"):
        print(f"warning: {args.experiment} does not support "
              "--report/--metrics; ignored", file=sys.stderr)
        report, show_metrics = None, False
    trace_out = getattr(args, "trace_out", None)
    if trace_out and args.experiment != "fig4":
        print(f"warning: {args.experiment} does not support --trace-out; "
              "ignored", file=sys.stderr)
        trace_out = None
    engine = getattr(args, "engine", "coroutine")
    if engine != "coroutine" and args.experiment not in ("fig8", "fig9"):
        print(f"warning: {args.experiment} has no vectorized model; "
              "--engine ignored", file=sys.stderr)
        engine = "coroutine"
    measure = None
    if getattr(args, "reps", None) is not None:
        if args.experiment in ("fig8", "fig9"):
            measure = {"max_reps": args.reps}
        else:
            print(f"warning: {args.experiment} does not support --reps; "
                  "ignored", file=sys.stderr)
    telemetry = None
    telemetry_path = getattr(args, "telemetry", None)
    if telemetry_path:
        if args.experiment in ("fig8", "fig9"):
            from repro.obs.telemetry import Telemetry
            telemetry = Telemetry(telemetry_path)
        else:
            print(f"warning: {args.experiment} does not support "
                  "--telemetry; ignored", file=sys.stderr)
    if args.experiment == "table1":
        _write_json(run_table1(), json_path)
    elif args.experiment == "fig8":
        _write_json(run_fig8(system=args.system, repeats=args.repeats,
                             jobs=jobs, cache=cache, faults=faults,
                             report=report, show_metrics=show_metrics,
                             ranks=args.ranks, engine=engine,
                             measure=measure, telemetry=telemetry),
                    json_path)
    elif args.experiment == "fig9":
        dims = tuple(args.dims) if args.dims else None
        if dims is not None and len(dims) != 3:
            raise SystemExit("--dims needs exactly three values: MI,MJ,MK")
        _write_json(run_fig9(system=args.system, nodes=args.nodes,
                             size=args.size, dims=dims,
                             iterations=args.iterations,
                             functional=args.functional,
                             jobs=jobs, cache=cache, faults=faults,
                             report=report, show_metrics=show_metrics,
                             engine=engine, measure=measure,
                             telemetry=telemetry),
                    json_path)
    elif args.experiment == "fig10":
        _write_json(run_fig10(nodes=args.nodes, steps=args.steps,
                              functional=args.functional,
                              jobs=jobs, cache=cache), json_path)
    elif args.experiment == "fig4":
        run_fig4(system=args.system)
        trace_path = trace_out or args.chrome_trace
        if trace_path:
            from repro.apps.himeno import HimenoConfig, run_himeno
            from repro.systems import get_system
            res = run_himeno(get_system(args.system), 4, "clmpi",
                             HimenoConfig(size="M", iterations=2),
                             functional=False, trace=True)
            res.tracer.save_chrome_trace(trace_path)
            print(f"\nChrome trace written to {trace_path}")
    elif args.experiment == "tune":
        from repro.clmpi.autotune import tune_policy
        from repro.harness.report import Table
        from repro.systems import get_system
        report = tune_policy(get_system(args.system), jobs=jobs,
                             cache=cache)
        table = Table(f"Auto-tuned transfer policy for {report.system}",
                      ["message size", "winner", "block", "MB/s"])
        for nbytes, (mode, blk, bw) in sorted(report.winners.items()):
            table.add(f"{nbytes // 1024} KiB", mode,
                      "-" if blk is None else f"{blk // 1024} KiB",
                      round(bw / 1e6, 1))
        print(table.render())
        print(f"small-message engine: {report.policy.small_mode}; "
              f"pipeline threshold: "
              f"{report.policy.pipeline_threshold / 2**20:.2f} MiB")
        _write_json(table, json_path)
    elif args.experiment == "all":
        run_table1()
        run_fig8(system="cichlid", jobs=jobs, cache=cache)
        run_fig8(system="ricc", jobs=jobs, cache=cache)
        run_fig9(system="cichlid", jobs=jobs, cache=cache)
        run_fig9(system="ricc", jobs=jobs, cache=cache)
        run_fig10(jobs=jobs, cache=cache)
        run_fig4()
    if telemetry is not None:
        telemetry.close()
        print(f"telemetry spans written to {telemetry_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
