"""Command-line entry point: ``python -m repro.harness`` / ``clmpi-harness``."""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.harness.fig10 import run_fig10
from repro.harness.fig8 import run_fig8
from repro.harness.fig9 import run_fig9
from repro.harness.table1 import run_table1
from repro.harness.timeline import run_fig4

__all__ = ["main"]


def _nodes_list(text: str) -> list[int]:
    return [int(x) for x in text.split(",") if x]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="clmpi-harness",
        description="Regenerate the paper's evaluation tables and figures "
                    "on the simulated clusters.")
    sub = p.add_subparsers(dest="experiment", required=True)

    sub.add_parser("table1", help="Table I: system specifications")

    f8 = sub.add_parser("fig8", help="Fig 8: pt2pt sustained bandwidth")
    f8.add_argument("--system", default="cichlid",
                    choices=["cichlid", "ricc"])
    f8.add_argument("--repeats", type=int, default=4)

    f9 = sub.add_parser("fig9", help="Fig 9: Himeno benchmark")
    f9.add_argument("--system", default="cichlid",
                    choices=["cichlid", "ricc"])
    f9.add_argument("--nodes", type=_nodes_list, default=None)
    f9.add_argument("--size", default="M")
    f9.add_argument("--iterations", type=int, default=4)
    f9.add_argument("--functional", action="store_true",
                    help="run the NumPy kernels for real (slower)")

    f10 = sub.add_parser("fig10", help="Fig 10: nanopowder simulation")
    f10.add_argument("--nodes", type=_nodes_list, default=None)
    f10.add_argument("--steps", type=int, default=2)
    f10.add_argument("--functional", action="store_true")

    f4 = sub.add_parser("fig4", help="Fig 4: overlap timelines")
    f4.add_argument("--system", default="cichlid",
                    choices=["cichlid", "ricc"])
    f4.add_argument("--chrome-trace", metavar="PATH", default=None,
                    help="also export panel (c)'s trace as a Chrome-"
                         "tracing JSON (chrome://tracing / Perfetto)")

    tn = sub.add_parser("tune", help="empirically auto-tune the transfer "
                                     "policy (§V.B extension)")
    tn.add_argument("--system", default="ricc",
                    choices=["cichlid", "ricc"])

    sub.add_parser("all", help="run every experiment at default settings")
    return p


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "table1":
        run_table1()
    elif args.experiment == "fig8":
        run_fig8(system=args.system, repeats=args.repeats)
    elif args.experiment == "fig9":
        run_fig9(system=args.system, nodes=args.nodes, size=args.size,
                 iterations=args.iterations, functional=args.functional)
    elif args.experiment == "fig10":
        run_fig10(nodes=args.nodes, steps=args.steps,
                  functional=args.functional)
    elif args.experiment == "fig4":
        run_fig4(system=args.system)
        if args.chrome_trace:
            from repro.apps.himeno import HimenoConfig, run_himeno
            from repro.systems import get_system
            res = run_himeno(get_system(args.system), 4, "clmpi",
                             HimenoConfig(size="M", iterations=2),
                             functional=False, trace=True)
            res.tracer.save_chrome_trace(args.chrome_trace)
            print(f"\nChrome trace written to {args.chrome_trace}")
    elif args.experiment == "tune":
        from repro.clmpi.autotune import tune_policy
        from repro.harness.report import Table
        from repro.systems import get_system
        report = tune_policy(get_system(args.system))
        table = Table(f"Auto-tuned transfer policy for {report.system}",
                      ["message size", "winner", "block", "MB/s"])
        for nbytes, (mode, blk, bw) in sorted(report.winners.items()):
            table.add(f"{nbytes // 1024} KiB", mode,
                      "-" if blk is None else f"{blk // 1024} KiB",
                      round(bw / 1e6, 1))
        print(table.render())
        print(f"small-message engine: {report.policy.small_mode}; "
              f"pipeline threshold: "
              f"{report.policy.pipeline_threshold / 2**20:.2f} MiB")
    elif args.experiment == "all":
        run_table1()
        run_fig8(system="cichlid")
        run_fig8(system="ricc")
        run_fig9(system="cichlid")
        run_fig9(system="ricc")
        run_fig10()
        run_fig4()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
