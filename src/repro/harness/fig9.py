"""Fig 9 — Himeno benchmark sustained performance.

Regenerates the serial / hand-optimized / clMPI comparison of Fig 9(a)
(Cichlid, 1-4 nodes, with the serial implementation's computation-to-
communication ratio annotation) and Fig 9(b) (RICC).
"""

from __future__ import annotations

from typing import Optional

from repro.apps.himeno import HimenoConfig, run_himeno
from repro.harness.report import Table
from repro.systems import get_system

__all__ = ["run_fig9"]

DEFAULT_NODES = {"cichlid": [1, 2, 4], "ricc": [1, 2, 4, 8, 16, 32]}


def run_fig9(system: str = "cichlid",
             nodes: Optional[list[int]] = None,
             size: str = "M", iterations: int = 4,
             functional: bool = False, verbose: bool = True) -> Table:
    """Regenerate Fig 9(a) or (b): sustained GFLOP/s per implementation.

    ``functional=False`` (default) runs timing-only at the paper's M size;
    the virtual clock is identical either way.
    """
    preset = get_system(system)
    nodes = nodes or DEFAULT_NODES.get(system.lower(), [1, 2, 4])
    cfg = HimenoConfig(size=size, iterations=iterations)
    sub = "a" if preset.name.lower() == "cichlid" else "b"
    table = Table(
        f"Fig 9({sub}): Himeno {size}-size sustained GFLOP/s on {preset.name}",
        ["nodes", "serial", "hand-optimized", "clMPI",
         "serial comp/comm", "clMPI vs hand-opt"])
    for n in nodes:
        res = {}
        for impl in ("serial", "hand-optimized", "clmpi"):
            res[impl] = run_himeno(preset, n, impl, cfg,
                                   functional=functional)
        gain = res["clmpi"].gflops / res["hand-optimized"].gflops - 1
        table.add(n, round(res["serial"].gflops, 2),
                  round(res["hand-optimized"].gflops, 2),
                  round(res["clmpi"].gflops, 2),
                  round(res["serial"].comp_comm_ratio, 2),
                  f"{gain * 100:+.1f}%")
    if verbose:
        print(table.render())
    return table
