"""Fig 9 — Himeno benchmark sustained performance.

Regenerates the serial / hand-optimized / clMPI comparison of Fig 9(a)
(Cichlid, 1-4 nodes, with the serial implementation's computation-to-
communication ratio annotation) and Fig 9(b) (RICC).
"""

from __future__ import annotations

from typing import Optional

from repro.harness.cache import ResultCache
from repro.harness.parallel import is_error_record, measured_sweep
from repro.harness.report import (Table, merge_point_reports,
                                  stats_footers)
from repro.systems import get_system

__all__ = ["run_fig9"]

DEFAULT_NODES = {"cichlid": [1, 2, 4], "ricc": [1, 2, 4, 8, 16, 32]}

IMPLS = ("serial", "hand-optimized", "clmpi")


def himeno_point(spec: dict) -> dict:
    """Sweep worker: one (system, nodes, implementation) Himeno run.

    Dict-in/dict-out and module-level so the point can cross a process
    pool and the result cache (see :mod:`repro.harness.parallel`).
    """
    from repro.apps.himeno import HimenoConfig, run_himeno

    obs = spec.get("obs", False)
    dims = spec.get("dims")
    cfg = HimenoConfig(size=spec["size"],
                       dims=tuple(dims) if dims else None,
                       iterations=spec["iterations"])
    system = get_system(spec["system"])
    if spec["nodes"] > system.cluster.max_nodes:
        # mesoscale points run the testbed past its physical size;
        # max_nodes only gates construction, it never shapes timing
        system = get_system(spec["system"], max_nodes=spec["nodes"])
    res = run_himeno(system, spec["nodes"],
                     spec["impl"], cfg,
                     functional=spec.get("functional", False),
                     faults=spec.get("faults"),
                     trace=obs, metrics=obs,
                     engine=spec.get("engine", "coroutine"),
                     strict_engine=spec.get("strict_engine", False))
    # ``seconds`` makes the row measurable: adaptive-repetition jobs
    # (service --reps, fig9 --reps) sample it for their stats records
    row = {"gflops": res.gflops, "comp_comm_ratio": res.comp_comm_ratio,
           "seconds": res.time}
    if obs:
        from repro.obs import build_report

        rspec = {k: spec[k] for k in ("system", "nodes", "impl", "size",
                                      "iterations")}
        injector = res.env.faults
        row["report"] = build_report(
            "himeno", rspec, res.env,
            faults=(injector.summary()["by_kind"]
                    if injector is not None else None)).to_dict()
    return row


def run_fig9(system: str = "cichlid",
             nodes: Optional[list[int]] = None,
             size: str = "M", iterations: int = 4,
             functional: bool = False, verbose: bool = True,
             jobs: Optional[int] = 1,
             cache: Optional[ResultCache] = None,
             faults: Optional[dict] = None,
             report: Optional[str] = None,
             show_metrics: bool = False,
             dims: Optional[tuple[int, int, int]] = None,
             engine: str = "coroutine",
             measure: Optional[dict] = None,
             telemetry=None) -> Table:
    """Regenerate Fig 9(a) or (b): sustained GFLOP/s per implementation.

    ``functional=False`` (default) runs timing-only at the paper's M size;
    the virtual clock is identical either way.  Points whose worker
    crashed render as ``ERROR`` cells instead of aborting the figure.
    ``report`` writes the sweep's merged :class:`~repro.obs.RunReport`
    to that path; ``show_metrics`` prints the merged metrics snapshot
    (either flag attaches tracer + metrics to every point).

    ``engine='vectorized'`` runs serial/clmpi points on the mesoscale
    engine (byte-identical rows); ``dims`` overrides the grid so node
    counts past M-size's decomposition limit stay valid (mesoscale
    sweeps need ``mi >= 2*nodes + 2``).

    ``measure``/``telemetry`` behave as in
    :func:`repro.harness.fig8.run_fig8`: adaptive repetitions add
    ``mean ± ci`` footers, and a Telemetry instance collects
    service-format lifecycle spans.
    """
    preset = get_system(system)
    obs = report is not None or show_metrics
    nodes = nodes or DEFAULT_NODES.get(system.lower(), [1, 2, 4])
    specs = [{"system": preset.name, "nodes": n, "impl": impl,
              "size": size, "iterations": iterations,
              "functional": functional}
             for n in nodes for impl in IMPLS]
    if faults is not None:
        for spec in specs:
            spec["faults"] = faults
    if obs:
        for spec in specs:
            spec["obs"] = True
    # absent keys keep pre-mesoscale cache addresses (and rows must stay
    # engine-independent: the byte-identity gate diffs them)
    if dims is not None:
        for spec in specs:
            spec["dims"] = list(dims)
    if engine != "coroutine":
        for spec in specs:
            spec["engine"] = engine
    results = measured_sweep(himeno_point, specs, measure=measure,
                             jobs=jobs, cache=cache, kind="himeno",
                             telemetry=telemetry)
    errors = [r for r in results if is_error_record(r)]
    sub = "a" if preset.name.lower() == "cichlid" else "b"
    table = Table(
        f"Fig 9({sub}): Himeno {size}-size sustained GFLOP/s on {preset.name}",
        ["nodes", "serial", "hand-optimized", "clMPI",
         "serial comp/comm", "clMPI vs hand-opt"])
    for i, n in enumerate(nodes):
        res = dict(zip(IMPLS, results[i * len(IMPLS):(i + 1) * len(IMPLS)]))

        def cell(impl, field="gflops"):
            return ("ERROR" if is_error_record(res[impl])
                    else round(res[impl][field], 2))

        if (is_error_record(res["clmpi"])
                or is_error_record(res["hand-optimized"])):
            gain = "n/a"
        else:
            rel = (res["clmpi"]["gflops"]
                   / res["hand-optimized"]["gflops"] - 1)
            gain = f"{rel * 100:+.1f}%"
        table.add(n, cell("serial"), cell("hand-optimized"), cell("clmpi"),
                  cell("serial", "comp_comm_ratio"), gain)
    # himeno rows don't echo their spec, so footer labels come from the
    # spec list (results stay aligned with specs by the sweep contract)
    for r, s in zip(results, specs):
        for line in stats_footers(
                [r], lambda _: f"{s['impl']} @ {s['nodes']} node(s)"):
            table.add_footer(line)
    if verbose:
        print(table.render())
        if errors:
            print(f"WARNING: partial figure — {len(errors)} of "
                  f"{len(results)} points failed:")
            for e in errors:
                err, spec = e["sweep_error"], e["sweep_error"]["spec"]
                print(f"  {spec['impl']} @ {spec['nodes']} nodes: "
                      f"{err['type']}: {err['message']}")
    if obs:
        merged = merge_point_reports(
            results, kind="himeno", path=report,
            show_metrics=show_metrics, verbose=verbose)
        table.report = merged  # type: ignore[attr-defined]
    return table
