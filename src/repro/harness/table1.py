"""Table I — system specifications of the two evaluation platforms."""

from __future__ import annotations

from repro.harness.report import Table
from repro.systems import cichlid, ricc

__all__ = ["run_table1"]


def run_table1(verbose: bool = True) -> Table:
    """Regenerate Table I from the encoded system presets.

    The rows mix the paper's hardware facts with the calibrated model
    parameters that stand in for them (see DESIGN.md §6).
    """
    systems = [cichlid(), ricc()]
    table = Table("Table I: system specifications (simulated models)",
                  ["Property", *[s.name for s in systems]])
    descs = [s.cluster.describe() for s in systems]
    for key in descs[0]:
        if key == "System":
            continue
        table.add(key, *[d[key] for d in descs])
    table.add("MPI eager threshold (KiB)",
              *[s.mpi_eager_threshold // 1024 for s in systems])
    table.add("auto small-message engine",
              *[s.policy.small_mode for s in systems])
    table.add("auto pipeline threshold (MiB)",
              *[s.policy.pipeline_threshold / 2**20 for s in systems])
    if verbose:
        print(table.render())
    return table
