"""Statistically sound sweep measurement (Hunold & Carpen-Amarie).

*MPI Benchmarking Revisited* argues that a single timing is not a
measurement: defensible numbers need repeated runs, a confidence
interval around the mean, and an explicit record of run-to-run
variance.  This module is that methodology distilled for the sweep
service — pure functions over a list of per-repetition timings, plus
the adaptive stopping rule that decides *how many* repetitions a point
deserves.

Two properties matter for the harness:

* **Determinism** — the simulator is a pure function of its spec, so
  identical repetitions produce identical samples and the CI collapses
  to a point after ``min_reps`` runs.  Variance only appears when the
  repetitions genuinely differ (e.g. per-rep fault seeds), and then the
  CI honestly reflects it.
* **Zero cost when off** — a spec that requests a single repetition
  never enters this module at all (guarded by
  ``benchmarks/bench_service.py``); single-shot sweeps pay nothing for
  the machinery.

The resulting ``stats`` dict (``repetitions`` / ``mean_s`` / ``ci_low``
/ ``ci_high`` / ``rel_variance`` / ``confidence``) is a first-class
:class:`~repro.obs.RunReport` field as of report schema version 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = ["MeasurePolicy", "summarize_samples", "should_stop",
           "t_critical", "rep_spec", "sample_of"]

#: two-sided 95 % Student-t critical values by degrees of freedom
#: (df 1..30; the normal quantile 1.96 serves beyond — the same table
#: every statistics appendix prints, so no SciPy dependency is needed)
_T_95 = (12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
         2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
         2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
         2.060, 2.056, 2.052, 2.048, 2.045, 2.042)

#: two-sided 99 % critical values, same layout
_T_99 = (63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355,
         3.250, 3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921,
         2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797,
         2.787, 2.779, 2.771, 2.763, 2.756, 2.750)


def t_critical(df: int, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value for ``df`` degrees of freedom.

    Only the two confidence levels the harness exposes are tabulated;
    anything else raises so a typo'd level cannot silently produce a
    wrong interval.
    """
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    table = {0.95: _T_95, 0.99: _T_99}.get(confidence)
    if table is None:
        raise ValueError(
            f"unsupported confidence level {confidence!r}; "
            "choose 0.95 or 0.99")
    if df <= len(table):
        return table[df - 1]
    return 1.960 if confidence == 0.95 else 2.576


@dataclass(frozen=True)
class MeasurePolicy:
    """How many repetitions a sweep point gets, and when to stop.

    ``min_reps`` runs always happen; after each further run the CI is
    re-evaluated and the point stops as soon as the relative CI
    half-width drops to ``target_rel_ci`` — or at ``max_reps``, whichever
    comes first (the adaptive rule of Hunold & Carpen-Amarie §IV).
    ``max_reps=1`` means single-shot: no stats are computed at all.
    """

    min_reps: int = 2
    max_reps: int = 5
    target_rel_ci: float = 0.02
    confidence: float = 0.95

    def __post_init__(self):
        if self.min_reps < 1 or self.max_reps < self.min_reps:
            raise ValueError(
                f"need 1 <= min_reps <= max_reps, got "
                f"min_reps={self.min_reps}, max_reps={self.max_reps}")
        if not 0.0 <= self.target_rel_ci:
            raise ValueError(
                f"target_rel_ci must be >= 0, got {self.target_rel_ci}")
        t_critical(1, self.confidence)  # validate the level eagerly

    @property
    def single_shot(self) -> bool:
        """True when the policy is the free, stats-less default."""
        return self.max_reps == 1

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> "MeasurePolicy":
        """Build from a job-options dict (``None`` → single-shot)."""
        if not data:
            return cls(min_reps=1, max_reps=1)
        return cls(min_reps=int(data.get("min_reps", 2)),
                   max_reps=int(data.get("max_reps", 5)),
                   target_rel_ci=float(data.get("target_rel_ci", 0.02)),
                   confidence=float(data.get("confidence", 0.95)))

    def to_dict(self) -> dict:
        return {"min_reps": self.min_reps, "max_reps": self.max_reps,
                "target_rel_ci": self.target_rel_ci,
                "confidence": self.confidence}


def summarize_samples(samples: Sequence[float],
                      confidence: float = 0.95) -> dict:
    """The ``stats`` record for one point's repetition timings.

    Returns ``repetitions`` (sample count), the sample ``mean_s``, the
    Student-t confidence interval ``[ci_low, ci_high]`` around the mean,
    and ``rel_variance`` — the unbiased sample variance divided by the
    squared mean (the paper's dimensionless run-to-run variability).
    A single sample yields a degenerate interval (the sample itself) and
    zero variance, so the record stays well-formed everywhere.
    """
    if not samples:
        raise ValueError("summarize_samples needs at least one sample")
    n = len(samples)
    mean = math.fsum(samples) / n
    if n == 1:
        return {"repetitions": 1, "mean_s": mean, "ci_low": mean,
                "ci_high": mean, "rel_variance": 0.0,
                "confidence": confidence}
    var = math.fsum((s - mean) ** 2 for s in samples) / (n - 1)
    half = t_critical(n - 1, confidence) * math.sqrt(var / n)
    return {
        "repetitions": n,
        "mean_s": mean,
        "ci_low": mean - half,
        "ci_high": mean + half,
        "rel_variance": var / (mean * mean) if mean != 0 else 0.0,
        "confidence": confidence,
    }


def rep_spec(spec: dict, rep: int) -> dict:
    """The spec for repetition ``rep`` of a measured point.

    Repetition 0 *is* the bare spec (same content address as any plain
    sweep, so single runs and measured runs share cache entries).
    Later repetitions carry a ``"rep"`` salt — and, when the spec
    injects faults, a shifted fault seed, so the repetitions sample
    genuinely different fault histories and the variance is real.
    """
    if rep == 0:
        return spec
    salted = dict(spec)
    salted["rep"] = rep
    faults = salted.get("faults")
    if isinstance(faults, dict) and "seed" in faults:
        faults = dict(faults)
        faults["seed"] = int(faults.get("seed") or 0) + rep
        salted["faults"] = faults
    return salted


def sample_of(result) -> Optional[float]:
    """The timing a repetition contributes to a point's stats.

    Workers report their measurement under different names
    (``seconds`` for bandwidth rows, ``makespan`` for chaos cases,
    ``time`` for Himeno); the first numeric one wins.  ``None`` means
    the row carries nothing measurable and stats are impossible.
    """
    if not isinstance(result, dict):
        return None
    for field in ("seconds", "makespan", "time"):
        value = result.get(field)
        if isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            return float(value)
    return None


def should_stop(samples: Sequence[float], policy: MeasurePolicy) -> bool:
    """Adaptive stopping rule: enough repetitions for this point?

    True once ``min_reps`` samples exist *and* the relative CI
    half-width meets ``target_rel_ci`` (or the budget ``max_reps`` is
    spent).  Callers collect one sample, ask, and repeat.
    """
    n = len(samples)
    if n >= policy.max_reps:
        return True
    if n < policy.min_reps:
        return False
    stats = summarize_samples(samples, policy.confidence)
    mean = stats["mean_s"]
    if mean == 0:
        return True
    half = (stats["ci_high"] - stats["ci_low"]) / 2.0
    return half / abs(mean) <= policy.target_rel_ci
