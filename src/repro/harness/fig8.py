"""Fig 8 — point-to-point sustained bandwidth, per transfer engine.

Regenerates the pinned / mapped / pipelined(N) curves of Fig 8(a)
(Cichlid/GbE) and Fig 8(b) (RICC/IB DDR).  The grid fans out over the
parallel sweep runner and the result cache; serial, parallel, and
warm-cache runs produce byte-identical tables.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.pingpong import bandwidth_point, bandwidth_specs
from repro.harness.cache import ResultCache
from repro.harness.parallel import is_error_record, measured_sweep
from repro.harness.report import (Table, merge_point_reports,
                                  stats_footers)
from repro.systems import get_system

__all__ = ["run_fig8"]

MiB = 1 << 20


def run_fig8(system: str = "cichlid",
             sizes: Optional[list[int]] = None,
             pipeline_blocks: Optional[list[int]] = None,
             repeats: int = 4, verbose: bool = True,
             jobs: Optional[int] = 1,
             cache: Optional[ResultCache] = None,
             faults: Optional[dict] = None,
             report: Optional[str] = None,
             show_metrics: bool = False,
             ranks: int = 2,
             engine: str = "coroutine",
             measure: Optional[dict] = None,
             telemetry=None) -> Table:
    """Regenerate Fig 8(a) or 8(b); one row per message size, one column
    per transfer implementation (MB/s).

    With ``faults`` (a fault-plan dict, see :mod:`repro.faults`), every
    point runs under injection; the tally is printed below the table.
    Points whose worker crashed are skipped (blank cells) and listed —
    a partial figure beats no figure.  ``report`` writes the sweep's
    merged :class:`~repro.obs.RunReport` to that path (every point then
    runs with tracer + metrics attached and carries its own report
    through the cache); ``show_metrics`` prints the merged metrics
    snapshot.

    ``ranks``/``engine`` select the mesoscale shape: ``ranks=2048,
    engine='vectorized'`` sweeps 1024 concurrent pairs in seconds with
    byte-identical rows (engine and rank count are part of each point's
    cache address).

    ``measure`` (a :class:`~repro.harness.stats.MeasurePolicy` dict,
    e.g. ``{"max_reps": 5}``) runs every point with adaptive
    repetitions; the table then grows ``mean ± ci`` footer lines and
    the JSON/report artifacts carry the ``stats`` records.
    ``telemetry`` (a :class:`repro.obs.telemetry.Telemetry`) receives
    service-format lifecycle spans for every point.
    """
    preset = get_system(system)
    obs = report is not None or show_metrics
    blocks = pipeline_blocks or [1 * MiB, 4 * MiB, 16 * MiB]
    specs = bandwidth_specs(preset.name, sizes=sizes,
                            pipeline_blocks=blocks, repeats=repeats,
                            faults=faults, obs=obs, ranks=ranks,
                            engine=engine)
    results = measured_sweep(bandwidth_point, specs, measure=measure,
                             jobs=jobs, cache=cache, kind="bandwidth",
                             telemetry=telemetry)
    errors = [r for r in results if is_error_record(r)]
    recovered = [r for r in results
                 if not is_error_record(r) and r.get("recovery")]
    fault_totals: dict[str, int] = {}
    curves: dict[str, dict[int, float]] = {}
    all_sizes: list[int] = []
    for r in results:
        if is_error_record(r):
            continue
        for knd, n in ((r.get("faults") or {}).get("by_kind") or {}).items():
            fault_totals[knd] = fault_totals.get(knd, 0) + n
        mode, block = r["mode"], r["block"]
        name = mode if block is None else \
            f"pipelined({block // MiB}M)" if block >= MiB else \
            f"pipelined({block // 1024}K)"
        bandwidth = r["nbytes"] * r["repeats"] / r["seconds"]
        curves.setdefault(name, {})[r["nbytes"]] = bandwidth / 1e6
        if r["nbytes"] not in all_sizes:
            all_sizes.append(r["nbytes"])
    sub = "a" if preset.name.lower() == "cichlid" else "b"
    names = list(curves)
    table = Table(f"Fig 8({sub}): sustained bandwidth on {preset.name} (MB/s)",
                  ["message size", *names])
    for nbytes in sorted(all_sizes):
        table.add(_size_label(nbytes),
                  *[round(curves[n].get(nbytes, float("nan")), 1)
                    for n in names])
    for line in stats_footers(
            results, lambda r: f"{r['mode'] or 'auto'} @ "
                               f"{_size_label(r['nbytes'])}"):
        table.add_footer(line)
    if verbose:
        print(table.render())
        if fault_totals:
            tally = ", ".join(f"{k}: {n}"
                              for k, n in sorted(fault_totals.items()))
            print(f"injected faults across the sweep — {tally}")
        if recovered:
            # these points lost ranks mid-run and finished anyway via
            # ULFM shrink; their bandwidth is the survivors' view
            shown = [f"{r['mode'] or 'auto'} @ {_size_label(r['nbytes'])}"
                     f" (lost rank(s) {r['recovery']['failed_ranks']})"
                     for r in recovered[:8]]
            if len(recovered) > 8:
                shown.append(f"... ({len(recovered) - 8} more)")
            print(f"{len(recovered)} point(s) recovered via "
                  "Comm.shrink() after rank failure: " + ", ".join(shown))
        if errors:
            print(f"WARNING: partial figure — {len(errors)} of "
                  f"{len(results)} points failed:")
            for e in errors:
                err, spec = e["sweep_error"], e["sweep_error"]["spec"]
                print(f"  {spec['mode'] or 'auto'} @ {spec['nbytes']}B: "
                      f"{err['type']}: {err['message']}")
    if obs:
        merged = merge_point_reports(
            results, kind="bandwidth", path=report,
            show_metrics=show_metrics, verbose=verbose)
        table.report = merged  # type: ignore[attr-defined]
    return table


def _size_label(nbytes: int) -> str:
    if nbytes >= MiB:
        return f"{nbytes // MiB} MiB"
    return f"{nbytes // 1024} KiB"
