"""``python -m repro.harness`` entry point."""

import sys

from repro.harness.runner import main

sys.exit(main())
