"""Content-addressed cache for simulation sweep results.

Every sweep point the harness runs is a pure function of (experiment
kind, spec dict, code version): the DES engine is deterministic, so the
result of a configuration never changes until the code does.  The cache
exploits that — each result is stored as JSON under ``.repro_cache/``,
keyed by a SHA-256 over the canonical JSON of the three components.

The *code version* is a digest over every ``.py`` file of the installed
``repro`` package, so any source edit (engine, apps, harness) silently
invalidates all prior entries: stale keys are simply never looked up
again and the files become dead weight that ``clear()`` can drop.

Layout::

    .repro_cache/
        stats.json            # persistent {"hits", "misses", ...}
        <kind>/<hash>.json    # {"spec": ..., "result": ...}

Two access regimes share this module:

* :class:`ResultCache` — the classic single-writer cache.  Reads and
  writes happen only in the parent process of a sweep (see
  :mod:`repro.harness.parallel`), never in pool workers.
* :class:`SharedStore` — the sweep *service*'s store (see
  :mod:`repro.harness.service`): sharded directories
  (``<kind>/<hh>/<hash>.json``), per-entry advisory locking, and LRU
  eviction under a byte budget, safe for many concurrent writer
  processes.

Either way writes are atomic (unique temp file + rename-into-place), so
a reader can never observe a torn entry, and two writers racing on the
same content address both land a complete — and, because entries are
content-addressed, byte-identical — file.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Optional

try:  # advisory file locking (POSIX); SharedStore degrades without it
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

__all__ = ["ResultCache", "SharedStore", "code_version",
           "default_cache_dir"]

#: cached digest of the repro sources (computed once per process)
_CODE_VERSION: Optional[str] = None

#: sentinel: a corrupt entry was deleted, the read stays a miss
_MISS = object()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``.repro_cache`` under the working dir."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def code_version() -> str:
    """Digest of every ``repro``-package source file (hex, 16 chars).

    Hashes relative path + contents of all ``.py`` files in sorted
    order, so the digest is stable across machines and invocations but
    changes whenever any shipped source line does.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class ResultCache:
    """JSON result store addressed by (kind, spec, code version).

    ``spec`` must be a JSON-able dict — it doubles as the human-readable
    record of what produced the entry.  Pass an explicit ``version`` to
    pin or test invalidation behaviour; the default tracks the sources.
    """

    def __init__(self, root: Optional[Path] = None,
                 version: Optional[str] = None):
        from repro.obs import MetricsRegistry

        self.root = Path(root) if root is not None else default_cache_dir()
        self.version = version if version is not None else code_version()
        #: per-instance metrics (``cache.hits`` / ``cache.misses`` /
        #: ``cache.corrupt_deleted`` / ``cache.corrupt_replaced``) — the
        #: source of truth for the :attr:`hits` / :attr:`misses` views
        #: and ``--cache-stats``
        self.metrics = MetricsRegistry()

    @property
    def hits(self) -> int:
        """Cache hits by this instance (reads ``cache.hits``)."""
        return self.metrics.counters.get("cache.hits", 0)

    @property
    def misses(self) -> int:
        """Cache misses by this instance (reads ``cache.misses``)."""
        return self.metrics.counters.get("cache.misses", 0)

    @property
    def corrupt_deleted(self) -> int:
        """Unparseable entries this instance deleted on read."""
        return self.metrics.counters.get("cache.corrupt_deleted", 0)

    @property
    def corrupt_replaced(self) -> int:
        """Corrupt reads healed by a concurrent writer's fresh entry."""
        return self.metrics.counters.get("cache.corrupt_replaced", 0)

    # -- keys ---------------------------------------------------------------
    def key(self, kind: str, spec: dict) -> str:
        """Stable content hash of one sweep point."""
        payload = _canonical({"kind": kind, "spec": spec,
                              "version": self.version})
        return hashlib.sha256(payload.encode()).hexdigest()[:32]

    def _path(self, kind: str, spec: dict) -> Path:
        return self.root / kind / f"{self.key(kind, spec)}.json"

    # -- access -------------------------------------------------------------
    def get(self, kind: str, spec: dict) -> Optional[Any]:
        """The cached result for ``spec``, or None (counts hit/miss).

        A file that exists but cannot be parsed — truncated by a crash
        or power loss, bit-rotted, hand-edited — is removed and treated
        as a plain miss, so the point is recomputed and the bad entry
        can never poison a figure.  Removal is *atomic with respect to
        concurrent writers*: if another process rewrote the entry
        between our read and our delete, the fresh entry survives and
        its result is returned (counted as ``corrupt_replaced`` instead
        of ``corrupt_deleted``).
        """
        path = self._path(kind, spec)
        try:
            stamp = os.stat(path)
            text = path.read_text()
        except OSError:
            self.metrics.inc("cache.misses")
            self._bump_stats(hit=False)
            return None
        try:
            entry = json.loads(text)
            result = entry["result"]
        except (ValueError, KeyError, TypeError):
            result = self._recover_corrupt(path, stamp)
            if result is _MISS:
                self.metrics.inc("cache.corrupt_deleted")
                self.metrics.inc("cache.misses")
                self._bump_stats(hit=False, corrupt=True)
                return None
            self.metrics.inc("cache.corrupt_replaced")
            self.metrics.inc("cache.hits")
            self._bump_stats(hit=True, replaced=True)
            return result
        self.metrics.inc("cache.hits")
        self._bump_stats(hit=True)
        return result

    def _recover_corrupt(self, path: Path, stamp: os.stat_result):
        """Delete the corrupt entry at ``path`` — and only *that* entry.

        A bare ``unlink`` races with a concurrent writer recreating the
        entry: the writer's complete file could land between our failed
        parse and our delete, and the unlink would destroy good data.
        Instead the entry is atomically renamed into a private
        quarantine name, then identified by inode: if quarantine caught
        the same file we read, it is dropped; if it caught a *newer*
        file (a writer won the race), that file is atomically restored —
        entries are content-addressed, so any concurrent write holds the
        identical payload — and its result is returned.  Returns the
        recovered result, or :data:`_MISS` when the corrupt entry was
        simply deleted.
        """
        quarantine = path.with_name(
            f".{path.name}.{os.getpid()}.quarantine")
        try:
            os.replace(path, quarantine)
        except OSError:
            return _MISS  # already gone: racing delete, nothing to do
        try:
            caught = os.stat(quarantine)
        except OSError:  # pragma: no cover - quarantine vanished
            return _MISS
        if (caught.st_ino, caught.st_mtime_ns) == \
                (stamp.st_ino, stamp.st_mtime_ns):
            try:
                os.unlink(quarantine)
            except OSError:  # pragma: no cover - racing cleanup
                pass
            return _MISS
        # The quarantine swept up a *fresh* entry written after our
        # read.  Put it back (atomic; any entry at this address is
        # byte-identical) and serve it.
        try:
            os.replace(quarantine, path)
            entry = json.loads(path.read_text())
            return entry["result"]
        except (OSError, ValueError, KeyError, TypeError):
            # pathological: the fresh entry is unreadable too
            try:
                os.unlink(path)
            except OSError:
                pass
            return _MISS

    def put(self, kind: str, spec: dict, result: Any) -> None:
        """Store ``result``; atomic so an interrupted run never leaves a
        truncated entry behind, and unique-per-process temp names keep
        concurrent writers off each other's feet."""
        path = self._path(kind, spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(_canonical({"spec": spec, "result": result}))
        tmp.replace(path)

    def clear(self) -> int:
        """Delete every entry (and the stats); returns entries removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.rglob("*.json"):
                path.unlink()
                removed += 1
            for path in self.root.rglob("*.lock"):
                path.unlink()
            # bottom-up so shard dirs empty out before their parents
            for sub in sorted((p for p in self.root.rglob("*")
                               if p.is_dir()), reverse=True):
                if not any(sub.iterdir()):
                    sub.rmdir()
        self.metrics.counters.clear()
        return removed

    # -- stats --------------------------------------------------------------
    @property
    def _stats_path(self) -> Path:
        return self.root / "stats.json"

    def _bump_stats(self, hit: bool, corrupt: bool = False,
                    replaced: bool = False, evicted: int = 0) -> None:
        stats = self.read_stats()
        stats["hits" if hit else "misses"] += 1
        if corrupt:
            stats["corrupt_deleted"] += 1
        if replaced:
            stats["corrupt_replaced"] += 1
        if evicted:
            stats["evicted"] += evicted
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = self._stats_path.with_name(
                f".stats.json.{os.getpid()}.tmp")
            tmp.write_text(_canonical(stats))
            tmp.replace(self._stats_path)
        except OSError:  # stats are best-effort; never fail a sweep
            pass

    def read_stats(self) -> dict:
        """Persistent lifetime hit/miss counters for this cache dir."""
        try:
            stats = json.loads(self._stats_path.read_text())
            return {"hits": int(stats["hits"]),
                    "misses": int(stats["misses"]),
                    "corrupt_deleted": int(stats.get("corrupt_deleted", 0)),
                    "corrupt_replaced": int(
                        stats.get("corrupt_replaced", 0)),
                    "evicted": int(stats.get("evicted", 0))}
        except (OSError, ValueError, KeyError, TypeError):
            return {"hits": 0, "misses": 0, "corrupt_deleted": 0,
                    "corrupt_replaced": 0, "evicted": 0}

    def entry_count(self) -> int:
        """Number of stored results."""
        if not self.root.is_dir():
            return 0
        return sum(1 for p in self.root.rglob("*.json")
                   if p.name != "stats.json")

    def engine_breakdown(self) -> dict[str, int]:
        """Stored entries per simulation engine (``--cache-stats``).

        Specs carry an ``"engine"`` key only when it differs from the
        default, so entries written before the mesoscale engine existed
        (and all coroutine points since) count under ``"coroutine"``.
        Unparseable files are skipped — reads delete them lazily.
        """
        counts: dict[str, int] = {}
        if not self.root.is_dir():
            return counts
        for path in self.root.rglob("*.json"):
            if path.name == "stats.json":
                continue
            try:
                spec = json.loads(path.read_text()).get("spec") or {}
            except (OSError, ValueError, AttributeError):
                continue
            engine = spec.get("engine", "coroutine") \
                if isinstance(spec, dict) else "coroutine"
            counts[engine] = counts.get(engine, 0) + 1
        return counts


class SharedStore(ResultCache):
    """Concurrent-writer result store backing the sweep service.

    Differences from the plain :class:`ResultCache`:

    * **Sharded layout** — entries live at ``<kind>/<hh>/<hash>.json``
      (first two hex digits of the content address), so a store holding
      millions of entries never puts them all in one directory.
    * **Advisory locking** — each write holds an exclusive ``flock`` on
      the entry's ``.lock`` sibling; eviction probes the same lock
      non-blockingly and *never* removes an entry that is mid-write.
    * **LRU eviction** — ``max_bytes`` caps the store; hits refresh an
      entry's mtime (its recency), and :meth:`evict` drops the
      least-recently-used entries until the store fits.  Eviction runs
      automatically every ``evict_every`` writes.

    Reads inherit the corrupt-entry recovery of the base class, which
    is already concurrent-writer safe.
    """

    def __init__(self, root: Optional[Path] = None,
                 version: Optional[str] = None,
                 max_bytes: Optional[int] = None,
                 evict_every: int = 64):
        super().__init__(root=root, version=version)
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if evict_every < 1:
            raise ValueError(
                f"evict_every must be >= 1, got {evict_every}")
        self.max_bytes = max_bytes
        self.evict_every = evict_every
        self._writes = 0

    def _path(self, kind: str, spec: dict) -> Path:
        key = self.key(kind, spec)
        return self.root / kind / key[:2] / f"{key}.json"

    @staticmethod
    def _lock_path(path: Path) -> Path:
        return path.with_suffix(".lock")

    @contextmanager
    def _locked(self, path: Path, blocking: bool = True):
        """Exclusive advisory lock on ``path``'s entry; yields False if
        the lock could not be taken (non-blocking mode) or locking is
        unavailable on this platform."""
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield True
            return
        lock = self._lock_path(path)
        lock.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(lock, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            flags = fcntl.LOCK_EX | (0 if blocking else fcntl.LOCK_NB)
            try:
                fcntl.flock(fd, flags)
            except OSError:
                yield False
                return
            yield True
        finally:
            os.close(fd)  # closing drops the lock

    def put(self, kind: str, spec: dict, result: Any) -> None:
        path = self._path(kind, spec)
        with self._locked(path):
            super().put(kind, spec, result)
        self._writes += 1
        if self.max_bytes is not None \
                and self._writes % self.evict_every == 0:
            self.evict()

    def put_if_absent(self, kind: str, spec: dict, result: Any) -> bool:
        """Store ``result`` unless an entry already exists; returns True
        when this call created the entry.

        This is the duplicate-completion arbiter for federated sweeps:
        two agents that raced on a re-queued point both deliver, the
        first atomic rename-into-place wins, and the loser learns it was
        a duplicate (the caller records ``duplicate_result`` instead of
        writing anything).  Entries are content-addressed, so the losing
        payload is byte-identical and nothing is lost by dropping it.
        The existence check and the write happen under the entry's
        advisory lock, so no interleaving can corrupt the entry.
        """
        path = self._path(kind, spec)
        with self._locked(path):
            try:
                if path.exists():
                    return False
            except OSError:  # pragma: no cover - unreadable shard dir
                pass
            super().put(kind, spec, result)
        self._writes += 1
        if self.max_bytes is not None \
                and self._writes % self.evict_every == 0:
            self.evict()
        return True

    def get(self, kind: str, spec: dict) -> Optional[Any]:
        result = super().get(kind, spec)
        if result is not None:
            try:  # refresh recency for LRU eviction; best-effort
                os.utime(self._path(kind, spec))
            except OSError:
                pass
        return result

    def evict(self, max_bytes: Optional[int] = None) -> int:
        """Drop least-recently-used entries until the store fits the
        byte budget; returns the number of entries removed.

        An entry whose advisory lock is held (a writer is mid-write) is
        skipped unconditionally, as is anything that disappears while
        we look at it — eviction only ever removes entries nobody is
        touching.
        """
        budget = self.max_bytes if max_bytes is None else max_bytes
        if budget is None or not self.root.is_dir():
            return 0
        entries = []
        total = 0
        for path in self.root.rglob("*.json"):
            if path.name == "stats.json":
                continue
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((st.st_mtime_ns, st.st_size, path))
            total += st.st_size
        if total <= budget:
            return 0
        removed = 0
        for _, size, path in sorted(entries, key=lambda e: e[0]):
            if total <= budget:
                break
            with self._locked(path, blocking=False) as held:
                if not held:
                    continue  # mid-write: never evict under a writer
                try:
                    path.unlink()
                except OSError:
                    continue
                removed += 1
                total -= size
            try:
                self._lock_path(path).unlink()
            except OSError:
                pass
        if removed:
            self.metrics.inc("cache.evicted", removed)
            stats_only = self.read_stats()
            stats_only["evicted"] += removed
            try:
                tmp = self._stats_path.with_name(
                    f".stats.json.{os.getpid()}.tmp")
                tmp.write_text(_canonical(stats_only))
                tmp.replace(self._stats_path)
            except OSError:
                pass
        return removed
