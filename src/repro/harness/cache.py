"""Content-addressed cache for simulation sweep results.

Every sweep point the harness runs is a pure function of (experiment
kind, spec dict, code version): the DES engine is deterministic, so the
result of a configuration never changes until the code does.  The cache
exploits that — each result is stored as JSON under ``.repro_cache/``,
keyed by a SHA-256 over the canonical JSON of the three components.

The *code version* is a digest over every ``.py`` file of the installed
``repro`` package, so any source edit (engine, apps, harness) silently
invalidates all prior entries: stale keys are simply never looked up
again and the files become dead weight that ``clear()`` can drop.

Layout::

    .repro_cache/
        stats.json            # persistent {"hits", "misses", "corrupt_deleted"}
        <kind>/<hash>.json    # {"spec": ..., "result": ...}

Cache reads and writes happen only in the parent process of a sweep
(see :mod:`repro.harness.parallel`), never in pool workers, so no file
locking is needed.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Optional

__all__ = ["ResultCache", "code_version", "default_cache_dir"]

#: cached digest of the repro sources (computed once per process)
_CODE_VERSION: Optional[str] = None


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``.repro_cache`` under the working dir."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def code_version() -> str:
    """Digest of every ``repro``-package source file (hex, 16 chars).

    Hashes relative path + contents of all ``.py`` files in sorted
    order, so the digest is stable across machines and invocations but
    changes whenever any shipped source line does.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class ResultCache:
    """JSON result store addressed by (kind, spec, code version).

    ``spec`` must be a JSON-able dict — it doubles as the human-readable
    record of what produced the entry.  Pass an explicit ``version`` to
    pin or test invalidation behaviour; the default tracks the sources.
    """

    def __init__(self, root: Optional[Path] = None,
                 version: Optional[str] = None):
        from repro.obs import MetricsRegistry

        self.root = Path(root) if root is not None else default_cache_dir()
        self.version = version if version is not None else code_version()
        #: per-instance metrics (``cache.hits`` / ``cache.misses`` /
        #: ``cache.corrupt_deleted``) — the source of truth for the
        #: :attr:`hits` / :attr:`misses` views and ``--cache-stats``
        self.metrics = MetricsRegistry()

    @property
    def hits(self) -> int:
        """Cache hits by this instance (reads ``cache.hits``)."""
        return self.metrics.counters.get("cache.hits", 0)

    @property
    def misses(self) -> int:
        """Cache misses by this instance (reads ``cache.misses``)."""
        return self.metrics.counters.get("cache.misses", 0)

    @property
    def corrupt_deleted(self) -> int:
        """Unparseable entries this instance deleted on read."""
        return self.metrics.counters.get("cache.corrupt_deleted", 0)

    # -- keys ---------------------------------------------------------------
    def key(self, kind: str, spec: dict) -> str:
        """Stable content hash of one sweep point."""
        payload = _canonical({"kind": kind, "spec": spec,
                              "version": self.version})
        return hashlib.sha256(payload.encode()).hexdigest()[:32]

    def _path(self, kind: str, spec: dict) -> Path:
        return self.root / kind / f"{self.key(kind, spec)}.json"

    # -- access -------------------------------------------------------------
    def get(self, kind: str, spec: dict) -> Optional[Any]:
        """The cached result for ``spec``, or None (counts hit/miss).

        A file that exists but cannot be parsed — truncated by a crash
        or power loss, bit-rotted, hand-edited — is deleted and treated
        as a plain miss, so the point is recomputed and the bad entry
        can never poison a figure.
        """
        path = self._path(kind, spec)
        try:
            text = path.read_text()
        except OSError:
            self.metrics.inc("cache.misses")
            self._bump_stats(hit=False)
            return None
        try:
            entry = json.loads(text)
            result = entry["result"]
        except (ValueError, KeyError, TypeError):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing deletion
                pass
            self.metrics.inc("cache.corrupt_deleted")
            self.metrics.inc("cache.misses")
            self._bump_stats(hit=False, corrupt=True)
            return None
        self.metrics.inc("cache.hits")
        self._bump_stats(hit=True)
        return result

    def put(self, kind: str, spec: dict, result: Any) -> None:
        """Store ``result``; atomic so an interrupted run never leaves a
        truncated entry behind."""
        path = self._path(kind, spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(_canonical({"spec": spec, "result": result}))
        tmp.replace(path)

    def clear(self) -> int:
        """Delete every entry (and the stats); returns entries removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.rglob("*.json"):
                path.unlink()
                removed += 1
            for sub in sorted(self.root.iterdir()):
                if sub.is_dir() and not any(sub.iterdir()):
                    sub.rmdir()
        self.metrics.counters.clear()
        return removed

    # -- stats --------------------------------------------------------------
    @property
    def _stats_path(self) -> Path:
        return self.root / "stats.json"

    def _bump_stats(self, hit: bool, corrupt: bool = False) -> None:
        stats = self.read_stats()
        stats["hits" if hit else "misses"] += 1
        if corrupt:
            stats["corrupt_deleted"] += 1
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = self._stats_path.with_suffix(".tmp")
            tmp.write_text(_canonical(stats))
            tmp.replace(self._stats_path)
        except OSError:  # stats are best-effort; never fail a sweep
            pass

    def read_stats(self) -> dict:
        """Persistent lifetime hit/miss counters for this cache dir."""
        try:
            stats = json.loads(self._stats_path.read_text())
            return {"hits": int(stats["hits"]),
                    "misses": int(stats["misses"]),
                    "corrupt_deleted": int(stats.get("corrupt_deleted", 0))}
        except (OSError, ValueError, KeyError, TypeError):
            return {"hits": 0, "misses": 0, "corrupt_deleted": 0}

    def entry_count(self) -> int:
        """Number of stored results."""
        if not self.root.is_dir():
            return 0
        return sum(1 for p in self.root.rglob("*.json")
                   if p.name != "stats.json")

    def engine_breakdown(self) -> dict[str, int]:
        """Stored entries per simulation engine (``--cache-stats``).

        Specs carry an ``"engine"`` key only when it differs from the
        default, so entries written before the mesoscale engine existed
        (and all coroutine points since) count under ``"coroutine"``.
        Unparseable files are skipped — reads delete them lazily.
        """
        counts: dict[str, int] = {}
        if not self.root.is_dir():
            return counts
        for path in self.root.rglob("*.json"):
            if path.name == "stats.json":
                continue
            try:
                spec = json.loads(path.read_text()).get("spec") or {}
            except (OSError, ValueError, AttributeError):
                continue
            engine = spec.get("engine", "coroutine") \
                if isinstance(spec, dict) else "coroutine"
            counts[engine] = counts.get(engine, 0) + 1
        return counts
