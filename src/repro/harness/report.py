"""Plain-text table rendering for harness output."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

__all__ = ["Table", "format_table", "merge_point_reports",
           "stats_footers"]


@dataclass
class Table:
    """A titled table of rows, plus optional footer lines.

    Footers carry per-figure annotations that are not cells — the
    measured ``mean ± ci`` statistics lines, above all.  A table with no
    footers serializes exactly as before (no ``footers`` key), so
    pre-existing byte-identity artifacts stay valid.
    """

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    footers: list[str] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.title}: expected {len(self.columns)} values, "
                f"got {len(values)}")
        self.rows.append(list(values))

    def add_footer(self, line: str) -> None:
        self.footers.append(str(line))

    def render(self) -> str:
        text = format_table(self.title, self.columns, self.rows)
        if self.footers:
            text += "\n" + "\n".join(self.footers)
        return text

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace).

        This is the byte-exact artefact the determinism suite compares
        across serial, parallel, and cached harness runs.
        """
        import json

        payload = {"title": self.title, "columns": self.columns,
                   "rows": self.rows}
        if self.footers:
            payload["footers"] = self.footers
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":"))

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering (for EXPERIMENTS.md)."""
        head = "| " + " | ".join(self.columns) + " |"
        sep = "|" + "|".join("---" for _ in self.columns) + "|"
        body = "\n".join(
            "| " + " | ".join(_fmt(v) for v in row) + " |"
            for row in self.rows)
        text = f"**{self.title}**\n\n{head}\n{sep}\n{body}\n"
        if self.footers:
            text += "\n" + "\n".join(f"*{f}*" for f in self.footers) + "\n"
        return text


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN: block size exceeds message size, etc.
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def merge_point_reports(rows: Iterable[dict], kind: str,
                        path: Optional[str] = None,
                        show_metrics: bool = False,
                        verbose: bool = True):
    """Fold per-point ``RunReport`` dicts of a sweep into one report.

    Every observability-enabled sweep point carries its own report in
    ``row["report"]`` (so the artifact rides through the result cache
    unchanged); this aggregates them in grid order — metrics and
    critical-path categories sum, makespan takes the max.  Returns the
    merged :class:`~repro.obs.RunReport`, or None when no point carried
    one.  ``path`` additionally writes it; ``show_metrics`` prints the
    merged metrics snapshot.
    """
    from repro.obs import RunReport

    points = [RunReport.from_dict(r["report"]) for r in rows
              if isinstance(r, dict) and r.get("report")]
    if not points:
        if verbose and (path or show_metrics):
            print("no RunReports collected (all points failed?)")
        return None
    merged = points[0]
    for point in points[1:]:
        merged = merged.merge(point)
    merged.kind = kind
    if path:
        merged.save(path)
        if verbose:
            print(f"RunReport ({len(points)} points) written to {path}")
    if show_metrics:
        import json

        print(json.dumps(merged.metrics, indent=2, sort_keys=True))
    return merged


def stats_footers(rows: Iterable[Any],
                  label_of) -> list[str]:
    """``mean ± ci`` footer lines for every measured row of a sweep.

    A row is *measured* when it carries a schema-v2 ``stats`` record
    (adaptive repetitions ran — see :mod:`repro.harness.stats`);
    single-shot rows contribute nothing, so unmeasured figures are
    byte-identical to their pre-stats selves.  ``label_of(row)`` names
    the point (e.g. ``"pinned @ 4 MiB"``).
    """
    from repro.obs.regress import mean_ci_label

    lines: list[str] = []
    for row in rows:
        if not isinstance(row, dict):
            continue
        stats = row.get("stats")
        if not isinstance(stats, dict) or not stats:
            continue
        label = mean_ci_label(stats)
        if label is None:
            continue
        confidence = int(round(stats.get("confidence", 0.95) * 100))
        lines.append(f"measured {label_of(row)}: {label}, "
                     f"{confidence}% CI")
    return lines


def format_table(title: str, columns: Iterable[str],
                 rows: Iterable[Iterable[Any]]) -> str:
    """Fixed-width text table."""
    columns = list(columns)
    srows = [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in srows)) if srows
              else len(col) for i, col in enumerate(columns)]
    line = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    rule = "-" * len(line)
    out = [title, rule, line, rule]
    for row in srows:
        out.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    out.append(rule)
    return "\n".join(out)
