"""Plain-text table rendering for harness output."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["Table", "format_table"]


@dataclass
class Table:
    """A titled table of rows."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.title}: expected {len(self.columns)} values, "
                f"got {len(values)}")
        self.rows.append(list(values))

    def render(self) -> str:
        return format_table(self.title, self.columns, self.rows)

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace).

        This is the byte-exact artefact the determinism suite compares
        across serial, parallel, and cached harness runs.
        """
        import json

        return json.dumps({"title": self.title, "columns": self.columns,
                           "rows": self.rows},
                          sort_keys=True, separators=(",", ":"))

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering (for EXPERIMENTS.md)."""
        head = "| " + " | ".join(self.columns) + " |"
        sep = "|" + "|".join("---" for _ in self.columns) + "|"
        body = "\n".join(
            "| " + " | ".join(_fmt(v) for v in row) + " |"
            for row in self.rows)
        return f"**{self.title}**\n\n{head}\n{sep}\n{body}\n"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN: block size exceeds message size, etc.
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(title: str, columns: Iterable[str],
                 rows: Iterable[Iterable[Any]]) -> str:
    """Fixed-width text table."""
    columns = list(columns)
    srows = [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in srows)) if srows
              else len(col) for i, col in enumerate(columns)]
    line = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    rule = "-" * len(line)
    out = [title, rule, line, rule]
    for row in srows:
        out.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    out.append(rule)
    return "\n".join(out)
