"""``python -m repro.harness top --socket SOCK`` — live service view.

A self-updating one-screen summary of a running sweep daemon: every
job's progress bar, queue depth and worker occupancy, per-kind mean
point latency with an ETA derived from the telemetry histograms, and
the last few errors seen on the watch stream.  ``--once`` renders a
single frame and exits (scripts, tests); otherwise the screen refreshes
every ``--interval`` seconds until Ctrl-C.

Everything shown comes over the daemon's existing protocol (``jobs``,
``stats``, ``telemetry`` ops and the ``watch`` stream) — ``top`` needs
no access to the service root directory and works across users.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional

from repro.harness.service import ServiceClient

__all__ = ["run_top", "render_frame"]

_BAR_WIDTH = 24


def _bar(completed: int, total: int) -> str:
    frac = completed / total if total else 1.0
    full = int(round(frac * _BAR_WIDTH))
    return "[" + "#" * full + "." * (_BAR_WIDTH - full) + "]"


def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--"
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def _latency_means(telemetry: dict) -> dict[str, float]:
    """Per-kind mean point latency (s) from a telemetry snapshot."""
    counters = telemetry.get("counters", {})
    means: dict[str, float] = {}
    prefix = "svc.point_latency_us_sum."
    for name, total in counters.items():
        if not name.startswith(prefix):
            continue
        kind = name[len(prefix):]
        count = counters.get(f"svc.point_latency_count.{kind}", 0)
        if count > 0:
            means[kind] = (total / count) / 1e6
    return means


def render_frame(jobs: list[dict], stats: dict, telemetry: dict,
                 errors: list[dict]) -> str:
    """One screenful of service state (pure function — unit-testable)."""
    means = _latency_means(telemetry)
    workers = max(1, stats.get("workers", 1))
    lines = [
        f"sweep service  ·  {stats.get('jobs', 0)} job(s), "
        f"{stats.get('open_jobs', 0)} open  ·  "
        f"queue depth {stats.get('queue_depth', 0)}  ·  "
        f"{stats.get('inflight_points', 0)}/{workers} worker slot(s) "
        f"busy  ·  deduped {stats.get('deduped_points', 0)}",
        "",
    ]
    if not jobs:
        lines.append("  (no jobs submitted yet)")
    for job in jobs:
        total, completed = job["total"], job["completed"]
        remaining = total - completed
        mean = means.get(job["kind"])
        eta = None
        if job["status"] != "done" and mean is not None and remaining:
            eta = remaining * mean / workers
        tail = (f"ETA {_fmt_eta(eta)}" if job["status"] != "done"
                else "done")
        err = (f", {job['errors']} err" if job["errors"] else "")
        retried = (f", {job['retried_points']} retried"
                   if job.get("retried_points") else "")
        lines.append(
            f"  {job['job']}  {_bar(completed, total)} "
            f"{completed}/{total} {job['kind']}{err}{retried}  {tail}")
    agents = stats.get("agents") or []
    if agents or stats.get("leases_active") \
            or stats.get("lease_expirations"):
        lines.append("")
        drain = "  ·  DRAINING" if stats.get("draining") else ""
        lines.append(
            f"  federation: {len(agents)} agent(s), "
            f"{stats.get('leases_active', 0)} lease(s) active, "
            f"{stats.get('lease_expirations', 0)} expired, "
            f"{stats.get('duplicate_results', 0)} duplicate(s)"
            f"{drain}")
        for agent in agents:
            lines.append(
                f"    {agent['agent']:<24s} {agent['host']}:"
                f"{agent['pid']}  slots {agent['slots']}  "
                f"leases {agent['leases']}  "
                f"points {agent['points']}  "
                f"seen {agent['last_seen_s']:.1f}s ago")
    if means:
        lines.append("")
        lines.append("  mean point latency: " + ", ".join(
            f"{kind} {mean * 1e3:.1f}ms"
            for kind, mean in sorted(means.items())))
    log = telemetry.get("log", {})
    lines.append(
        f"  telemetry: {log.get('spans_written', 0)} span(s), "
        f"{log.get('rotations', 0)} rotation(s)  ·  store: "
        f"{stats.get('store', {}).get('entries', 0)} entries, "
        f"{stats.get('store', {}).get('hits', 0)} hits")
    if errors:
        lines.append("")
        lines.append("  last errors:")
        for event in errors:
            lines.append(f"    {event.get('job')}[{event.get('index')}]"
                         f" attempt {event.get('attempts', 1)}")
    return "\n".join(lines)


class _ErrorTail:
    """Collect error-point events from the daemon's watch stream.

    The stream ends whenever any watched job completes, so the thread
    reconnects until told to stop; errors survive reconnects.
    """

    def __init__(self, client: ServiceClient, keep: int = 5):
        self.client = client
        self.errors: deque = deque(maxlen=keep)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop,
                                        name="top-watch", daemon=True)

    def start(self) -> "_ErrorTail":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()

    def _on_event(self, event: dict) -> None:
        if event.get("event") == "point" \
                and event.get("status") == "error":
            self.errors.append(event)

    def _loop(self) -> None:
        stopped = False
        while not stopped:
            try:
                self.client.watch(None, self._on_event, timeout_s=2.0)
            except Exception:
                pass
            stopped = self._stop.wait(0.2)


def run_top(socket_path: str, interval_s: float = 1.0,
            once: bool = False) -> int:
    """The ``top`` subcommand body; returns the process exit code."""
    client = ServiceClient(socket_path)
    try:
        client.ping()
    except (OSError, RuntimeError) as exc:
        print(f"error: no daemon on {socket_path}: {exc}")
        return 1
    tail = None if once else _ErrorTail(client).start()
    try:
        while True:
            try:
                frame = render_frame(
                    client.jobs(), client.stats(), client.telemetry(),
                    list(tail.errors) if tail else [])
            except (OSError, RuntimeError, ConnectionError) as exc:
                print(f"daemon on {socket_path} went away: {exc}")
                return 1
            if once:
                print(frame)
                return 0
            # ANSI clear + home: one stable screenful per refresh
            print("\x1b[2J\x1b[H" + frame, flush=True)
            time.sleep(interval_s)
    except KeyboardInterrupt:
        return 0
    finally:
        if tail is not None:
            tail.stop()
