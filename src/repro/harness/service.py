"""The sweep service: a persistent, fault-tolerant harness daemon.

``python -m repro.harness serve --socket /tmp/clmpi.sock`` turns the
sweep machinery (content-addressed cache, process-pool fan-out,
crash-proof error records) into a long-running *service*:

* **Durable job queue** — submissions and completions are journaled
  (:mod:`repro.harness.queue`); a daemon killed mid-sweep — ``kill -9``
  included — resumes its queue on restart and re-delivers results
  byte-identical to a serial :func:`repro.harness.parallel.sweep`.
* **Shared result store** — a :class:`~repro.harness.cache.SharedStore`
  (sharded dirs, atomic rename-into-place, advisory locking, LRU
  eviction under a byte budget) that many daemons and CLI runs can
  read and write concurrently.
* **Stuck-worker reaping** — every point runs in its own reapable
  process under a wall-clock budget with exponential-backoff retries
  (:func:`repro.harness.parallel.compute_with_retry`); a hung worker
  becomes a completed (retried) point or an error record, never a hung
  client, and a poisoned worker can only ever take its own point down.
* **In-flight deduplication** — identical points submitted by
  different jobs (same content address and measurement policy) compute
  once and deliver everywhere.
* **Federation** — N worker agents (``python -m repro.harness agent``,
  :mod:`repro.harness.federation`) drain one coordinator's queue under
  journaled, time-bounded leases: agent death, partitions, and
  coordinator restarts all resolve to byte-identical sweep output
  (see docs/service.md, "Federation").
* **Statistically sound measurement** — a job may request adaptive
  repetitions (:mod:`repro.harness.stats`); the point's result and its
  RunReport then carry ``stats`` (repetitions, confidence interval,
  run-to-run variance) per Hunold & Carpen-Amarie.  Single-repetition
  jobs never touch the stats machinery.

Clients speak newline-delimited JSON over a unix socket (every request
is one object with an ``"op"``; ``watch`` streams one event object per
line), or minimal HTTP (``POST /jobs``, ``GET /jobs``, ``GET
/jobs/<id>``, ``GET /jobs/<id>/result``, and Prometheus-format ``GET
/metrics``) on the same socket — the server sniffs the first bytes.
Every lifecycle transition also lands in a telemetry span log next to
the queue journal (:mod:`repro.obs.telemetry`); watch a live daemon
with ``python -m repro.harness top --socket ...``.  See
``docs/service.md`` and ``docs/observability.md``.
"""

from __future__ import annotations

import importlib
import json
import os
import random
import socket
import socketserver
import threading
import time
import uuid
from multiprocessing import util as mp_util
from pathlib import Path
from typing import Any, Callable, Optional

from repro.harness.cache import SharedStore
from repro.harness.parallel import (
    RetryPolicy,
    compute_point,
    is_error_record,
)
from repro.harness.queue import JobQueue
from repro.harness.stats import MeasurePolicy
from repro.obs.telemetry import (
    PROM_CONTENT_TYPE,
    TELEMETRY_LOG_NAME,
    Telemetry,
    render_prometheus,
)

__all__ = ["WORKERS", "SweepService", "ServiceClient", "resolve_worker",
           "serve"]

#: job kinds the service accepts out of the box → worker dotted paths.
#: A job may instead name any importable ``module:function`` worker
#: explicitly via its ``options["worker"]``.
WORKERS: dict[str, str] = {
    "bandwidth": "repro.apps.pingpong:bandwidth_point",
    "himeno": "repro.harness.fig9:himeno_point",
    "nanopowder": "repro.harness.fig10:nanopowder_point",
    "chaos": "repro.faults.chaos:chaos_case",
}


def resolve_worker(path: str) -> Callable[[dict], Any]:
    """Import a ``module:function`` worker reference."""
    module, sep, name = path.partition(":")
    if not sep or not module or not name:
        raise ValueError(
            f"worker must be 'module:function', got {path!r}")
    fn = getattr(importlib.import_module(module), name, None)
    if not callable(fn):
        raise ValueError(f"worker {path!r} is not a callable")
    return fn


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class SweepService:
    """The daemon: queue + store + reapable executor (see module doc).

    Usable fully in-process (tests, embedding): ``start()`` spins up
    the dispatcher and — when a socket path or TCP port was given — the
    listener threads; ``submit()``/``wait()`` work with or without any
    socket.
    """

    def __init__(self, root: Path | str,
                 socket_path: Optional[str] = None,
                 tcp_port: Optional[int] = None,
                 jobs: int = 2,
                 point_timeout_s: Optional[float] = 300.0,
                 retries: int = 2,
                 backoff_s: float = 0.1,
                 store_budget_bytes: Optional[int] = None,
                 lease_ttl_s: float = 30.0,
                 agent_timeout_s: Optional[float] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.queue = JobQueue(self.root)
        self.store = SharedStore(self.root / "store",
                                 max_bytes=store_budget_bytes)
        # lifecycle spans, next to the queue journal (docs/observability.md)
        self.telemetry = Telemetry(self.root / TELEMETRY_LOG_NAME)
        self.socket_path = socket_path
        self.tcp_port = tcp_port
        # jobs=0 is a pure coordinator: it grants leases to federation
        # agents but computes nothing itself
        self.jobs = max(0, int(jobs))
        self.default_policy = RetryPolicy(
            timeout_s=point_timeout_s, retries=retries,
            backoff_s=backoff_s)
        self.lease_ttl_s = float(lease_ttl_s)
        #: a registered agent silent this long is reaped from the
        #: registry (its leases still live until their own deadlines)
        self.agent_timeout_s = (float(agent_timeout_s)
                                if agent_timeout_s is not None
                                else 3.0 * self.lease_ttl_s)
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._draining = threading.Event()
        self._lock = threading.Lock()
        self._slots = threading.Semaphore(self.jobs)
        #: dedup key -> list of (job_id, index) awaiting that result
        self._inflight: dict[str, list[tuple[str, int]]] = {}
        self._deduped = 0
        #: agent id -> registry entry (federation; see docs/service.md)
        self._agents: dict[str, dict] = {}
        self._threads: list[threading.Thread] = []
        self._servers: list[socketserver.BaseServer] = []
        self._watchers: list[tuple[Optional[str], "_Watcher"]] = []
        self.queue.on_event = self._on_queue_event
        self.started = False

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self.started:
            return
        self.started = True
        # Reaped point workers fork from this process; close the
        # listening sockets in every child so an orphan (parent
        # SIGKILLed mid-point) cannot keep the address half-alive.
        mp_util.register_after_fork(self, SweepService._drop_listeners)
        dispatcher = threading.Thread(target=self._dispatch_loop,
                                      name="svc-dispatch", daemon=True)
        dispatcher.start()
        self._threads.append(dispatcher)
        if self.socket_path is not None:
            self._serve_socket()
        if self.tcp_port is not None:
            self._serve_tcp()
        self._wake.set()  # resume any journaled open jobs immediately

    def stop(self) -> None:
        self._stop.set()
        self._wake.set()
        for server in self._servers:
            server.shutdown()
            server.server_close()
        self._servers.clear()
        if self.socket_path and os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        for t in self._threads:
            t.join(timeout=5.0)
        self._threads.clear()
        self.telemetry.close()
        self.started = False

    def _drop_listeners(self) -> None:
        """Runs in forked children: release inherited server sockets."""
        for server in self._servers:
            try:
                server.socket.close()
            except OSError:
                pass

    def run_forever(self) -> None:
        """Block until :meth:`stop` (the ``serve`` CLI's main thread)."""
        try:
            while not self._stop.wait(0.2):
                pass
        except KeyboardInterrupt:
            self.stop()

    def _serve_socket(self) -> None:
        if os.path.exists(self.socket_path):
            # A previous daemon's leftover (e.g. after SIGKILL): only a
            # daemon that actually *answers* keeps the address.  A bare
            # connect() is not enough — a dead daemon's listen backlog
            # (or an orphaned worker child holding the inherited fd)
            # accepts connections the kernel will never service.
            if self._socket_answers():
                raise RuntimeError(
                    f"another daemon is live on {self.socket_path}")
            os.unlink(self.socket_path)
        server = _UnixServer(self.socket_path, _Handler)
        server.service = self
        self._start_server(server, "svc-unix")

    def _socket_answers(self, timeout_s: float = 2.0) -> bool:
        probe = socket.socket(socket.AF_UNIX)
        probe.settimeout(timeout_s)
        try:
            probe.connect(self.socket_path)
            probe.sendall(b'{"op": "ping"}\n')
            return bool(probe.recv(1))
        except OSError:
            return False
        finally:
            probe.close()

    def _serve_tcp(self) -> None:
        server = _TcpServer(("127.0.0.1", self.tcp_port), _Handler)
        server.service = self
        self.tcp_port = server.server_address[1]  # resolve port 0
        self._start_server(server, "svc-tcp")

    def _start_server(self, server, name: str) -> None:
        self._servers.append(server)
        t = threading.Thread(target=server.serve_forever,
                             kwargs={"poll_interval": 0.05},
                             name=name, daemon=True)
        t.start()
        self._threads.append(t)

    # -- job intake ---------------------------------------------------------
    def submit(self, kind: str, specs: list[dict],
               options: Optional[dict] = None,
               token: Optional[str] = None) -> dict:
        """Accept a sweep; returns the job's status snapshot.

        ``token`` (client-supplied, optional) makes the call
        idempotent: a retried submit whose first reply was lost returns
        the already-enqueued job instead of a second copy.
        """
        options = dict(options or {})
        worker = options.get("worker") or WORKERS.get(kind)
        if worker is None:
            raise ValueError(
                f"unknown job kind {kind!r} and no options['worker'] "
                f"given; built-in kinds: {sorted(WORKERS)}")
        resolve_worker(worker)          # validate before journaling
        MeasurePolicy.from_dict(options.get("measure"))  # validate
        job = self.queue.submit(kind, worker, specs, options,
                                token=token)
        self._wake.set()
        return job.describe()

    def wait(self, job_id: str, timeout_s: Optional[float] = None
             ) -> dict:
        """Block until the job finishes; returns its full result set."""
        deadline = None if timeout_s is None \
            else time.monotonic() + timeout_s
        while True:
            job = self.queue.get(job_id)
            if job.finished:
                return self.result(job_id)
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{job_id} still has {job.total - job.completed} "
                    f"open point(s) after {timeout_s}s")
            time.sleep(0.02)

    def result(self, job_id: str) -> dict:
        job = self.queue.get(job_id)
        return {"job": job.job_id, "status": job.status,
                "finished": job.finished,
                "results": list(job.results),
                "attempts": list(job.attempts),
                "errors": job.errors}

    def stats(self) -> dict:
        with self._lock:
            inflight = len(self._inflight)
            deduped = self._deduped
        jobs = self.queue.list_jobs()
        return {
            "jobs": len(jobs),
            "open_jobs": sum(1 for j in jobs if j["status"] != "done"),
            "inflight_points": inflight,
            "deduped_points": deduped,
            "queue_depth": self.queue.depth(),
            "workers": self.jobs,
            "store": {"entries": self.store.entry_count(),
                      **self.store.read_stats()},
            "journal_recovered_drops": self.queue.recovered_drops,
            "journal_compactions": self.queue.compactions,
            "telemetry": self.telemetry.log.stats(),
            "draining": self._draining.is_set(),
            "agents": self.agent_table(),
            "leases_active": self.queue.active_leases(),
            "lease_expirations": self.queue.lease_expirations,
            "duplicate_results": self.queue.duplicate_results,
        }

    def agent_table(self) -> list[dict]:
        """Per-agent rows for ``stats()`` and the ``top`` view."""
        now = time.monotonic()
        with self._lock:
            entries = [(agent, dict(entry))
                       for agent, entry in sorted(self._agents.items())]
        return [{"agent": agent, "host": entry["host"],
                 "pid": entry["pid"], "slots": entry["slots"],
                 "leases": len(self.queue.agent_leases(agent)),
                 "points": entry["points"],
                 "last_seen_s": round(now - entry["last_seen"], 3)}
                for agent, entry in entries]

    def prometheus(self) -> str:
        """The ``GET /metrics`` exposition body — built on demand, so a
        daemon nobody scrapes never pays for rendering."""
        with self._lock:
            inflight = len(self._inflight)
            agents = len(self._agents)
        jobs = self.queue.list_jobs()
        return render_prometheus(
            self.telemetry,
            queue_depth=self.queue.depth(),
            inflight=inflight,
            open_jobs=sum(1 for j in jobs if j["status"] != "done"),
            workers=self.jobs,
            store_stats=self.store.read_stats(),
            store_entries=self.store.entry_count(),
            agents=agents,
            leases_active=self.queue.active_leases(),
            lease_expirations=self.queue.lease_expirations,
            duplicate_results=self.queue.duplicate_results)

    # -- dispatch -----------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            if self._wake.wait(timeout=0.2):
                self._wake.clear()
            if self._stop.is_set():
                return
            self._expire_leases()
            self._reap_agents()
            self._schedule_pending()

    def _expire_leases(self) -> None:
        """Re-queue every lease whose deadline passed unrenewed — the
        agent died, was partitioned away, or is simply too slow; the
        point becomes pending again and anyone may pick it up."""
        self.queue.expire_due_leases(time.time())

    def _reap_agents(self) -> None:
        """Forget agents silent past ``agent_timeout_s`` (registry
        hygiene only — their leases expire on their own deadlines)."""
        now = time.monotonic()
        with self._lock:
            lost = [agent for agent, entry in self._agents.items()
                    if now - entry["last_seen"] > self.agent_timeout_s]
            for agent in lost:
                del self._agents[agent]
        for agent in lost:
            self.telemetry.agent_lost(agent, "heartbeat")

    def _schedule_pending(self) -> None:
        if self._draining.is_set():
            return  # drain: finish in-flight work, start nothing new
        for job in self.queue.open_jobs():
            for index in job.pending_indices():
                if self._stop.is_set():
                    return
                spec = job.specs[index]
                key = self._dedup_key(job.kind, spec, job.options)
                with self._lock:
                    waiters = self._inflight.get(key)
                    if waiters is not None:
                        # an identical point is already computing:
                        # piggy-back on it instead of burning a slot
                        waiters.append((job.job_id, index))
                        self._deduped += 1
                if waiters is not None:
                    # claim outside self._lock: claiming emits a queue
                    # event, and the event fan-out re-takes the lock
                    self.queue.claim(job.job_id, index)
                    self.telemetry.point_deduped(job.job_id, index,
                                                 job.kind)
                    continue
                if not self._slots.acquire(blocking=False):
                    return  # every worker slot is busy; resume on wake
                with self._lock:
                    self._inflight[key] = [(job.job_id, index)]
                self.queue.claim(job.job_id, index)
                t = threading.Thread(
                    target=self._run_point,
                    args=(key, job.job_id, index, job.kind, job.worker,
                          spec, dict(job.options)),
                    name=f"svc-point-{job.job_id}-{index}", daemon=True)
                t.start()

    def _dedup_key(self, kind: str, spec: dict, options: dict) -> str:
        measure = options.get("measure") or {}
        return self.store.key(kind, spec) + "/" + _canonical(measure)

    def _retry_policy(self, options: dict) -> RetryPolicy:
        d = self.default_policy
        return RetryPolicy(
            timeout_s=options.get("timeout_s", d.timeout_s),
            retries=int(options.get("retries", d.retries)),
            backoff_s=float(options.get("backoff_s", d.backoff_s)),
            backoff_cap_s=float(options.get("backoff_cap_s",
                                            d.backoff_cap_s)))

    # -- point execution ----------------------------------------------------
    def _run_point(self, key: str, job_id: str, index: int, kind: str,
                   worker_path: str, spec: dict,
                   options: dict) -> None:
        self.telemetry.point_running(job_id, index, kind)
        try:
            result, attempts = self._compute(
                kind, worker_path, spec, options,
                on_failure=lambda failure, attempt, will_retry:
                    self.telemetry.point_failure(
                        job_id, index, kind, failure, attempt,
                        will_retry))
        except Exception as exc:  # defensive: never lose a point
            result = {"sweep_error": {"type": type(exc).__name__,
                                      "message": str(exc), "spec": spec}}
            attempts = 1
        finally:
            self._slots.release()
        with self._lock:
            waiters = self._inflight.pop(key, [])
        error = is_error_record(result)
        for job_id_, index_ in waiters:
            self.queue.record_point(job_id_, index_, result, error,
                                    attempts)
        self._wake.set()

    def _compute(self, kind: str, worker_path: str, spec: dict,
                 options: dict,
                 on_failure: Optional[Callable] = None
                 ) -> tuple[Any, int]:
        """One point, through store/reaping/retry — and, when the job
        asks for it, the adaptive-repetition measurement loop.  The
        same :func:`~repro.harness.parallel.compute_point` the
        federation agents run, with this daemon's store attached."""
        return compute_point(resolve_worker(worker_path), spec,
                             self._retry_policy(options),
                             measure=options.get("measure"),
                             store=self.store, kind=kind,
                             on_failure=on_failure)

    # -- federation (coordinator side; see docs/service.md) -----------------
    def drain(self, grace_s: float = 30.0) -> dict:
        """Graceful shutdown, phase one: stop scheduling and leasing,
        wait (bounded) for in-flight points and live leases to finish,
        compact the journal.  The caller then :meth:`stop`\\ s and exits
        0; anything still open is journaled and resumes on restart.
        """
        self._draining.set()
        deadline = time.monotonic() + max(0.0, grace_s)
        while time.monotonic() < deadline:
            self.queue.expire_due_leases(time.time())
            with self._lock:
                inflight = len(self._inflight)
            if inflight == 0 and self.queue.active_leases() == 0:
                break
            time.sleep(0.05)
        self.queue.compact()
        with self._lock:
            inflight = len(self._inflight)
        leases = self.queue.active_leases()
        return {"drained": inflight == 0 and leases == 0,
                "inflight": inflight, "leases_active": leases}

    def agent_register(self, name: Optional[str], host: str,
                       pid: int, slots: int) -> dict:
        """Admit (or re-admit) a federation agent.

        The agent id is client-stable — ``name`` when given, else
        derived from host+pid — so an agent reconnecting after a
        partition or a coordinator restart is recognised as the owner
        of its journaled leases.
        """
        agent = name or f"agent-{host}-{pid}"
        with self._lock:
            fresh = agent not in self._agents
            self._agents[agent] = {"host": host, "pid": int(pid),
                                   "slots": max(1, int(slots)),
                                   "points": self._agents.get(
                                       agent, {}).get("points", 0),
                                   "last_seen": time.monotonic()}
        if fresh:
            self.telemetry.agent_registered(agent)
        return {"agent": agent, "lease_ttl": self.lease_ttl_s,
                "heartbeat": self.lease_ttl_s / 3.0,
                "draining": self._draining.is_set()}

    def agent_heartbeat(self, agent: str,
                        leases: Optional[list[str]] = None) -> dict:
        """Keep the agent alive and renew every lease it still holds.

        Returns the coordinator's ``draining`` flag and the subset of
        the agent's claimed ``leases`` that are stale here (expired and
        possibly re-issued).  A stale lease's eventual completion is
        still accepted and arbitrated first-write-wins; the list just
        tells the agent to stop counting on those leases.
        """
        with self._lock:
            entry = self._agents.get(agent)
            if entry is not None:
                entry["last_seen"] = time.monotonic()
        if entry is None:
            # coordinator restarted (or reaped us): the agent must
            # re-register; its journaled leases survive under its id
            return {"known": False, "stale": list(leases or []),
                    "draining": self._draining.is_set()}
        now = time.time()
        held = {lease.lease_id
                for lease in self.queue.agent_leases(agent)}
        stale = []
        for lease_id in leases or []:
            if lease_id in held:
                try:
                    self.queue.renew_lease(lease_id, agent,
                                           self.lease_ttl_s, now=now)
                except (KeyError, ValueError):
                    stale.append(lease_id)
            else:
                stale.append(lease_id)
        return {"known": True, "stale": stale,
                "draining": self._draining.is_set()}

    def agent_claim(self, agent: str, max_leases: int = 1) -> dict:
        """Grant up to ``max_leases`` time-bounded leases on pending
        points (the federation analogue of :meth:`_schedule_pending`).

        Store hits short-circuit: a single-shot point whose result is
        already content-addressed completes immediately instead of
        burning an agent round-trip.  Measured (multi-repetition)
        points always lease — their merged stats live only in the
        journal, never under the bare spec key, so the store can't
        answer for them.
        """
        with self._lock:
            entry = self._agents.get(agent)
            if entry is not None:
                entry["last_seen"] = time.monotonic()
        if entry is None:
            return {"known": False, "leases": [],
                    "draining": self._draining.is_set()}
        granted: list[dict] = []
        if self._draining.is_set() or self._stop.is_set():
            return {"known": True, "leases": [], "draining": True}
        for job in self.queue.open_jobs():
            for index in job.pending_indices():
                if len(granted) >= max(1, int(max_leases)):
                    break
                spec = job.specs[index]
                key = self._dedup_key(job.kind, spec, job.options)
                with self._lock:
                    waiters = self._inflight.get(key)
                    if waiters is not None:
                        # this daemon is already computing an identical
                        # point locally: piggy-back, don't lease
                        waiters.append((job.job_id, index))
                        self._deduped += 1
                if waiters is not None:
                    self.queue.claim(job.job_id, index)
                    self.telemetry.point_deduped(job.job_id, index,
                                                 job.kind)
                    continue
                measure = MeasurePolicy.from_dict(
                    job.options.get("measure"))
                if measure.single_shot:
                    cached = self.store.get(job.kind, spec)
                    if cached is not None:
                        self.queue.claim(job.job_id, index)
                        self.queue.record_point(
                            job.job_id, index, cached,
                            error=is_error_record(cached), attempts=0)
                        continue
                try:
                    lease = self.queue.lease(job.job_id, index, agent,
                                             self.lease_ttl_s)
                except ValueError:
                    # the local dispatcher (or another agent's claim
                    # request) took this point between our snapshot and
                    # the grant: skip it
                    continue
                policy = self._retry_policy(job.options)
                granted.append({
                    "lease": lease.lease_id, "job": job.job_id,
                    "index": index, "kind": job.kind,
                    "worker": job.worker, "spec": spec,
                    "measure": job.options.get("measure"),
                    "policy": {"timeout_s": policy.timeout_s,
                               "retries": policy.retries,
                               "backoff_s": policy.backoff_s,
                               "backoff_cap_s": policy.backoff_cap_s},
                    "deadline": lease.deadline})
            if len(granted) >= max(1, int(max_leases)):
                break
        return {"known": True, "leases": granted, "draining": False}

    def agent_complete(self, agent: str, lease_id: str, job_id: str,
                       index: int, result: Any, attempts: int) -> dict:
        """Accept a leased point's result; first write wins.

        Dispositions (see :meth:`JobQueue.complete_leased`):
        ``recorded`` (live lease), ``adopted`` (lease expired, point
        still open — the deterministic result is taken rather than
        recomputed), ``duplicate_result`` (point already done; only the
        counter moves).  Successful single-shot results also land in
        the shared store via :meth:`SharedStore.put_if_absent` — the
        content-address arbiter that makes duplicate completions
        harmless.
        """
        with self._lock:
            entry = self._agents.get(agent)
            if entry is not None:
                entry["last_seen"] = time.monotonic()
        error = is_error_record(result)
        job = self.queue.get(job_id)
        disposition = self.queue.complete_leased(
            lease_id, job_id, index, result, error,
            max(1, int(attempts)), agent=agent)
        stored = False
        if disposition != "duplicate_result":
            if entry is not None:
                with self._lock:
                    entry["points"] += 1
            measure = MeasurePolicy.from_dict(
                job.options.get("measure"))
            if measure.single_shot and not error:
                stored = self.store.put_if_absent(
                    job.kind, job.specs[index], result)
        self._wake.set()
        return {"disposition": disposition, "stored": stored}

    def agent_abandon(self, agent: str, lease_id: str) -> dict:
        """An agent gives a lease back (shutdown, drain, overload);
        the point returns to pending immediately."""
        lease = self.queue.release_lease(lease_id, "abandoned")
        self._wake.set()
        return {"released": lease is not None}

    def agent_deregister(self, agent: str) -> dict:
        """Clean agent exit: abandon its leases, forget it."""
        for lease in self.queue.agent_leases(agent):
            self.queue.release_lease(lease.lease_id, "abandoned")
        with self._lock:
            known = self._agents.pop(agent, None) is not None
        if known:
            self.telemetry.agent_lost(agent, "deregistered")
        self._wake.set()
        return {"deregistered": known}

    # -- progress streaming -------------------------------------------------
    def _on_queue_event(self, kind: str, payload: dict) -> None:
        self._feed_telemetry(kind, payload)
        event = {"event": kind, **payload}
        with self._lock:
            watchers = list(self._watchers)
        for job_filter, watcher in watchers:
            if job_filter is None or payload.get("job") == job_filter:
                watcher.push(event)

    def _feed_telemetry(self, kind: str, payload: dict) -> None:
        """Queue transitions → lifecycle spans (docs/observability.md).

        ``running``/``reaped``/``retried``/``deduped`` spans come from
        the executor directly; everything that flows through the queue
        is mapped here so the span log and the watch stream can never
        disagree about what happened.
        """
        t = self.telemetry
        if kind == "submit":
            t.job_submitted(payload["job"], payload["kind"],
                            payload["total"])
        elif kind == "claim":
            t.point_claimed(payload["job"], payload["index"],
                            payload["kind"])
        elif kind == "point":
            t.point_done(payload["job"], payload["index"],
                         payload["kind"],
                         error=payload["status"] == "error",
                         attempts=payload.get("attempts", 1))
        elif kind == "done":
            t.job_done(payload["job"], payload["kind"])
        elif kind == "lease":
            t.point_leased(payload["job"], payload["index"],
                           payload["kind"], payload.get("agent", "?"))
        elif kind == "lease_end":
            if payload.get("why") == "expired":
                t.lease_expired(payload["job"], payload["index"],
                                payload["kind"],
                                payload.get("agent", "?"))
        elif kind == "duplicate":
            t.point_duplicate(payload["job"], payload["index"],
                              payload["kind"],
                              payload.get("agent", "?"))
        t.queue_depth(self.queue.depth())
        t.registry.gauge("svc.leases.active",
                         self.queue.active_leases())
        with self._lock:
            t.registry.gauge("svc.agents", len(self._agents))

    def _add_watcher(self, job_filter: Optional[str]) -> "_Watcher":
        watcher = _Watcher()
        with self._lock:
            self._watchers.append((job_filter, watcher))
        return watcher

    def _remove_watcher(self, watcher: "_Watcher") -> None:
        with self._lock:
            self._watchers = [(f, w) for f, w in self._watchers
                              if w is not watcher]

    # -- request handling (both protocols funnel here) ----------------------
    def handle_request(self, request: dict) -> dict:
        op = request.get("op")
        try:
            if op == "ping":
                return {"ok": True, "pong": True, "pid": os.getpid()}
            if op == "submit":
                return {"ok": True,
                        "job": self.submit(request["kind"],
                                           request["specs"],
                                           request.get("options"),
                                           request.get("token"))}
            if op == "agent.register":
                return {"ok": True,
                        **self.agent_register(
                            request.get("name"),
                            request.get("host", "?"),
                            request.get("pid", 0),
                            request.get("slots", 1))}
            if op == "agent.heartbeat":
                return {"ok": True,
                        **self.agent_heartbeat(
                            request["agent"],
                            request.get("leases"))}
            if op == "agent.claim":
                return {"ok": True,
                        **self.agent_claim(request["agent"],
                                           request.get("max", 1))}
            if op == "agent.complete":
                return {"ok": True,
                        **self.agent_complete(
                            request["agent"], request["lease"],
                            request["job"], request["index"],
                            request.get("result"),
                            request.get("attempts", 1))}
            if op == "agent.abandon":
                return {"ok": True,
                        **self.agent_abandon(request["agent"],
                                             request["lease"])}
            if op == "agent.deregister":
                return {"ok": True,
                        **self.agent_deregister(request["agent"])}
            if op == "drain":
                return {"ok": True,
                        **self.drain(request.get("grace", 30.0))}
            if op == "status":
                return {"ok": True,
                        "job": self.queue.get(
                            request["job"]).describe()}
            if op == "result":
                return {"ok": True, **self.result(request["job"])}
            if op == "wait":
                return {"ok": True,
                        **self.wait(request["job"],
                                    request.get("timeout"))}
            if op == "jobs":
                return {"ok": True, "jobs": self.queue.list_jobs()}
            if op == "stats":
                return {"ok": True, "stats": self.stats()}
            if op == "telemetry":
                return {"ok": True,
                        "telemetry": self.telemetry.snapshot()}
            if op == "shutdown":
                threading.Thread(target=self.stop, daemon=True).start()
                return {"ok": True, "stopping": True}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except (KeyError, ValueError, TimeoutError) as exc:
            return {"ok": False, "error": str(exc)}


class _Watcher:
    """One watching client's event mailbox."""

    def __init__(self):
        self._events: list[dict] = []
        self._cond = threading.Condition()

    def push(self, event: dict) -> None:
        with self._cond:
            self._events.append(event)
            self._cond.notify_all()

    def pop(self, timeout: float = 0.2) -> Optional[dict]:
        with self._cond:
            if self._cond.wait_for(lambda: bool(self._events), timeout):
                return self._events.pop(0)
            return None


class _UnixServer(socketserver.ThreadingUnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True
    service: "SweepService"


class _TcpServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    service: "SweepService"


class _Handler(socketserver.StreamRequestHandler):
    """Speaks JSON-lines natively; sniffs and answers minimal HTTP."""

    def handle(self) -> None:
        service: SweepService = self.server.service
        first = self.rfile.readline(1 << 20)
        if not first:
            return
        head = first.split(b" ", 1)[0]
        if head in (b"GET", b"POST", b"PUT", b"DELETE", b"HEAD"):
            self._handle_http(service, first)
            return
        # JSON-lines: serve requests until the client hangs up
        line = first
        while line:
            line = line.strip()
            if line:
                try:
                    request = json.loads(line)
                except ValueError:
                    self._send({"ok": False, "error": "bad JSON"})
                    return
                if request.get("op") == "watch":
                    self._stream_watch(service, request)
                    return
                self._send(service.handle_request(request))
            try:
                line = self.rfile.readline(1 << 20)
            except OSError:
                return

    def _send(self, payload: dict) -> None:
        try:
            self.wfile.write(_canonical(payload).encode() + b"\n")
            self.wfile.flush()
        except OSError:
            pass

    def _stream_watch(self, service: SweepService,
                      request: dict) -> None:
        """One event object per line until the watched job finishes."""
        job_id = request.get("job")
        watcher = service._add_watcher(job_id)
        try:
            try:
                job = service.queue.get(job_id) if job_id else None
            except KeyError:
                self._send({"ok": False,
                            "error": f"unknown job {job_id!r}"})
                return
            self._send({"ok": True, "watching": job_id})
            if job is not None and job.finished:
                self._send({"event": "done", **job.describe()})
                return
            while not service._stop.is_set():
                event = watcher.pop(timeout=0.2)
                if event is None:
                    continue
                self._send(event)
                if event.get("event") == "done" and (
                        job_id is None or event.get("job") == job_id):
                    return
        finally:
            service._remove_watcher(watcher)

    # -- minimal HTTP -------------------------------------------------------
    def _handle_http(self, service: SweepService,
                     request_line: bytes) -> None:
        try:
            method, target, _ = \
                request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            return
        length = 0
        while True:  # drain headers, remember the body length
            header = self.rfile.readline(1 << 16)
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = 0
        body = self.rfile.read(length) if length else b""
        if method == "GET" and target.rstrip("/") == "/metrics":
            # Prometheus exposition is text, not JSON — and rendering
            # happens only here, so an unscraped daemon pays nothing.
            self._send_http(200, "OK", PROM_CONTENT_TYPE,
                            service.prometheus().encode())
            return
        status, payload = self._http_route(service, method,
                                           target.rstrip("/"), body)
        data = (_canonical(payload) + "\n").encode()
        reason = {200: "OK", 400: "Bad Request",
                  404: "Not Found"}.get(status, "OK")
        self._send_http(status, reason, "application/json", data)

    def _send_http(self, status: int, reason: str, ctype: str,
                   data: bytes) -> None:
        try:
            self.wfile.write(
                f"HTTP/1.0 {status} {reason}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(data)}\r\n\r\n".encode() + data)
            self.wfile.flush()
        except OSError:
            pass

    def _http_route(self, service: SweepService, method: str,
                    target: str, body: bytes) -> tuple[int, dict]:
        if method == "POST" and target == "/jobs":
            try:
                request = json.loads(body or b"{}")
            except ValueError:
                return 400, {"ok": False, "error": "bad JSON body"}
            request["op"] = "submit"
            reply = service.handle_request(request)
            return (200 if reply.get("ok") else 400), reply
        if method == "GET":
            if target in ("", "/", "/ping"):
                return 200, service.handle_request({"op": "ping"})
            if target == "/jobs":
                return 200, service.handle_request({"op": "jobs"})
            if target == "/stats":
                return 200, service.handle_request({"op": "stats"})
            if target.startswith("/jobs/"):
                parts = target.split("/")  # ['', 'jobs', id, ...]
                op = "result" if parts[3:] == ["result"] else "status"
                reply = service.handle_request({"op": op,
                                                "job": parts[2]})
                return (200 if reply.get("ok") else 404), reply
        return 404, {"ok": False, "error": f"no route {method} {target}"}


class ServiceClient:
    """Talk to a running daemon over its unix socket — or TCP — with
    one JSON-lines connection per request.

    One connection per request keeps the client trivial and the failure
    mode clean: a daemon that died mid-request surfaces as
    ``ConnectionError``, and a fresh daemon on the same socket serves
    the next call.  With ``retries > 0`` transient transport failures
    (connection refused during a daemon restart, a broken pipe through
    a partition) are retried transparently with exponential backoff
    plus jitter; :meth:`submit` always carries an idempotency token, so
    a retried submit whose first reply was lost can never double-
    enqueue the job.
    """

    #: exceptions worth retrying — the daemon is restarting, the socket
    #: file briefly missing, or the connection died mid-exchange
    _TRANSIENT = (ConnectionRefusedError, ConnectionResetError,
                  BrokenPipeError, ConnectionError,
                  FileNotFoundError, socket.timeout)

    def __init__(self, socket_path: Optional[str] = None,
                 timeout_s: float = 30.0,
                 tcp: Optional[tuple[str, int]] = None,
                 retries: int = 0, backoff_s: float = 0.2,
                 backoff_cap_s: float = 5.0, jitter: float = 0.25):
        if socket_path is None and tcp is None:
            raise ValueError("need a socket_path or a tcp address")
        self.socket_path = socket_path
        self.tcp = tcp
        self.timeout_s = timeout_s
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.jitter = jitter

    def _connect(self, timeout_s: Optional[float]) -> socket.socket:
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX)
            address: Any = self.socket_path
        else:
            sock = socket.socket(socket.AF_INET)
            address = (self.tcp[0], int(self.tcp[1]))
        sock.settimeout(timeout_s if timeout_s is not None
                        else self.timeout_s)
        try:
            sock.connect(address)
        except BaseException:
            sock.close()
            raise
        return sock

    def _call(self, request: dict,
              timeout_s: Optional[float] = None) -> dict:
        attempt = 0
        while True:
            try:
                reply = self._call_once(request, timeout_s)
                break
            except self._TRANSIENT:
                if attempt >= self.retries:
                    raise
                delay = min(self.backoff_cap_s,
                            self.backoff_s * (2 ** attempt))
                delay += random.uniform(0, self.jitter * delay)
                time.sleep(delay)
                attempt += 1
        if not reply.get("ok", False):
            raise RuntimeError(
                f"service error: {reply.get('error', reply)}")
        return reply

    def _call_once(self, request: dict,
                   timeout_s: Optional[float] = None) -> dict:
        sock = self._connect(timeout_s)
        try:
            sock.sendall(_canonical(request).encode() + b"\n")
            return self._read_line(sock)
        finally:
            sock.close()

    @staticmethod
    def _read_line(sock: socket.socket) -> dict:
        chunks = []
        while True:
            chunk = sock.recv(1 << 16)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
        data = b"".join(chunks)
        if not data:
            raise ConnectionError("service closed the connection")
        return json.loads(data.decode())

    def ping(self) -> dict:
        return self._call({"op": "ping"})

    def submit(self, kind: str, specs: list[dict],
               options: Optional[dict] = None,
               token: Optional[str] = None) -> dict:
        # the idempotency token rides every attempt of this call, so a
        # retry after a dropped reply returns the same job
        return self._call({"op": "submit", "kind": kind, "specs": specs,
                           "options": options or {},
                           "token": token or uuid.uuid4().hex})["job"]

    def status(self, job_id: str) -> dict:
        return self._call({"op": "status", "job": job_id})["job"]

    def result(self, job_id: str) -> dict:
        return self._call({"op": "result", "job": job_id})

    def wait(self, job_id: str,
             timeout_s: Optional[float] = None) -> dict:
        return self._call({"op": "wait", "job": job_id,
                           "timeout": timeout_s},
                          timeout_s=(None if timeout_s is None
                                     else timeout_s + 5.0))

    def jobs(self) -> list[dict]:
        return self._call({"op": "jobs"})["jobs"]

    def stats(self) -> dict:
        return self._call({"op": "stats"})["stats"]

    def telemetry(self) -> dict:
        """The daemon's telemetry snapshot (counters, gauges, per-kind
        latency histograms, span-log stats)."""
        return self._call({"op": "telemetry"})["telemetry"]

    def shutdown(self) -> None:
        self._call({"op": "shutdown"})

    def watch(self, job_id: str,
              on_event: Callable[[dict], None],
              timeout_s: Optional[float] = None) -> None:
        """Stream the job's progress events; returns when it is done."""
        sock = self._connect(timeout_s)
        sock.settimeout(timeout_s if timeout_s is not None else None)
        try:
            sock.sendall(_canonical({"op": "watch",
                                     "job": job_id}).encode() + b"\n")
            buf = b""
            while True:
                chunk = sock.recv(1 << 16)
                if not chunk:
                    return
                buf += chunk
                while b"\n" in buf:
                    line, buf = buf.split(b"\n", 1)
                    if not line.strip():
                        continue
                    event = json.loads(line.decode())
                    if event.get("ok") is False:
                        raise RuntimeError(
                            f"service error: {event.get('error')}")
                    if "event" in event:
                        on_event(event)
                        if event["event"] == "done":
                            return
        finally:
            sock.close()

    def sweep(self, kind: str, specs: list[dict],
              options: Optional[dict] = None,
              timeout_s: Optional[float] = None) -> list[Any]:
        """Submit + wait: a drop-in for
        :func:`repro.harness.parallel.sweep` running on the daemon."""
        job = self.submit(kind, specs, options)
        return self.wait(job["job"], timeout_s=timeout_s)["results"]


def serve(root: str, socket_path: Optional[str] = None,
          tcp_port: Optional[int] = None, jobs: int = 2,
          point_timeout_s: Optional[float] = 300.0, retries: int = 2,
          backoff_s: float = 0.1,
          store_budget_bytes: Optional[int] = None,
          lease_ttl_s: float = 30.0,
          verbose: bool = True) -> SweepService:
    """Build, start, and return a daemon (``python -m repro.harness
    serve`` blocks on it via :meth:`SweepService.run_forever`)."""
    if socket_path is None and tcp_port is None:
        socket_path = str(Path(root) / "service.sock")
    service = SweepService(
        root, socket_path=socket_path, tcp_port=tcp_port, jobs=jobs,
        point_timeout_s=point_timeout_s, retries=retries,
        backoff_s=backoff_s, store_budget_bytes=store_budget_bytes,
        lease_ttl_s=lease_ttl_s)
    service.start()
    if verbose:
        open_jobs = len(service.queue.open_jobs())
        where = socket_path or f"127.0.0.1:{service.tcp_port}"
        resumed = (f", resuming {open_jobs} journaled job(s)"
                   if open_jobs else "")
        print(f"sweep service on {where} ({service.jobs} worker "
              f"slot(s), journal {service.queue.journal_path})"
              f"{resumed}")
    return service
