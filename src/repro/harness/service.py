"""The sweep service: a persistent, fault-tolerant harness daemon.

``python -m repro.harness serve --socket /tmp/clmpi.sock`` turns the
sweep machinery (content-addressed cache, process-pool fan-out,
crash-proof error records) into a long-running *service*:

* **Durable job queue** — submissions and completions are journaled
  (:mod:`repro.harness.queue`); a daemon killed mid-sweep — ``kill -9``
  included — resumes its queue on restart and re-delivers results
  byte-identical to a serial :func:`repro.harness.parallel.sweep`.
* **Shared result store** — a :class:`~repro.harness.cache.SharedStore`
  (sharded dirs, atomic rename-into-place, advisory locking, LRU
  eviction under a byte budget) that many daemons and CLI runs can
  read and write concurrently.
* **Stuck-worker reaping** — every point runs in its own reapable
  process under a wall-clock budget with exponential-backoff retries
  (:func:`repro.harness.parallel.compute_with_retry`); a hung worker
  becomes a completed (retried) point or an error record, never a hung
  client, and a poisoned worker can only ever take its own point down.
* **In-flight deduplication** — identical points submitted by
  different jobs (same content address and measurement policy) compute
  once and deliver everywhere.
* **Statistically sound measurement** — a job may request adaptive
  repetitions (:mod:`repro.harness.stats`); the point's result and its
  RunReport then carry ``stats`` (repetitions, confidence interval,
  run-to-run variance) per Hunold & Carpen-Amarie.  Single-repetition
  jobs never touch the stats machinery.

Clients speak newline-delimited JSON over a unix socket (every request
is one object with an ``"op"``; ``watch`` streams one event object per
line), or minimal HTTP (``POST /jobs``, ``GET /jobs``, ``GET
/jobs/<id>``, ``GET /jobs/<id>/result``, and Prometheus-format ``GET
/metrics``) on the same socket — the server sniffs the first bytes.
Every lifecycle transition also lands in a telemetry span log next to
the queue journal (:mod:`repro.obs.telemetry`); watch a live daemon
with ``python -m repro.harness top --socket ...``.  See
``docs/service.md`` and ``docs/observability.md``.
"""

from __future__ import annotations

import importlib
import json
import os
import socket
import socketserver
import threading
import time
from multiprocessing import util as mp_util
from pathlib import Path
from typing import Any, Callable, Optional

from repro.harness.cache import SharedStore
from repro.harness.parallel import (
    RetryPolicy,
    compute_with_retry,
    is_error_record,
)
from repro.harness.queue import JobQueue
from repro.harness.stats import (
    MeasurePolicy,
    rep_spec,
    sample_of,
    should_stop,
    summarize_samples,
)
from repro.obs.telemetry import (
    PROM_CONTENT_TYPE,
    TELEMETRY_LOG_NAME,
    Telemetry,
    render_prometheus,
)

__all__ = ["WORKERS", "SweepService", "ServiceClient", "resolve_worker",
           "serve"]

#: job kinds the service accepts out of the box → worker dotted paths.
#: A job may instead name any importable ``module:function`` worker
#: explicitly via its ``options["worker"]``.
WORKERS: dict[str, str] = {
    "bandwidth": "repro.apps.pingpong:bandwidth_point",
    "himeno": "repro.harness.fig9:himeno_point",
    "nanopowder": "repro.harness.fig10:nanopowder_point",
    "chaos": "repro.faults.chaos:chaos_case",
}


def resolve_worker(path: str) -> Callable[[dict], Any]:
    """Import a ``module:function`` worker reference."""
    module, sep, name = path.partition(":")
    if not sep or not module or not name:
        raise ValueError(
            f"worker must be 'module:function', got {path!r}")
    fn = getattr(importlib.import_module(module), name, None)
    if not callable(fn):
        raise ValueError(f"worker {path!r} is not a callable")
    return fn


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class SweepService:
    """The daemon: queue + store + reapable executor (see module doc).

    Usable fully in-process (tests, embedding): ``start()`` spins up
    the dispatcher and — when a socket path or TCP port was given — the
    listener threads; ``submit()``/``wait()`` work with or without any
    socket.
    """

    def __init__(self, root: Path | str,
                 socket_path: Optional[str] = None,
                 tcp_port: Optional[int] = None,
                 jobs: int = 2,
                 point_timeout_s: Optional[float] = 300.0,
                 retries: int = 2,
                 backoff_s: float = 0.1,
                 store_budget_bytes: Optional[int] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.queue = JobQueue(self.root)
        self.store = SharedStore(self.root / "store",
                                 max_bytes=store_budget_bytes)
        # lifecycle spans, next to the queue journal (docs/observability.md)
        self.telemetry = Telemetry(self.root / TELEMETRY_LOG_NAME)
        self.socket_path = socket_path
        self.tcp_port = tcp_port
        self.jobs = max(1, int(jobs))
        self.default_policy = RetryPolicy(
            timeout_s=point_timeout_s, retries=retries,
            backoff_s=backoff_s)
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._lock = threading.Lock()
        self._slots = threading.Semaphore(self.jobs)
        #: dedup key -> list of (job_id, index) awaiting that result
        self._inflight: dict[str, list[tuple[str, int]]] = {}
        self._deduped = 0
        self._threads: list[threading.Thread] = []
        self._servers: list[socketserver.BaseServer] = []
        self._watchers: list[tuple[Optional[str], "_Watcher"]] = []
        self.queue.on_event = self._on_queue_event
        self.started = False

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self.started:
            return
        self.started = True
        # Reaped point workers fork from this process; close the
        # listening sockets in every child so an orphan (parent
        # SIGKILLed mid-point) cannot keep the address half-alive.
        mp_util.register_after_fork(self, SweepService._drop_listeners)
        dispatcher = threading.Thread(target=self._dispatch_loop,
                                      name="svc-dispatch", daemon=True)
        dispatcher.start()
        self._threads.append(dispatcher)
        if self.socket_path is not None:
            self._serve_socket()
        if self.tcp_port is not None:
            self._serve_tcp()
        self._wake.set()  # resume any journaled open jobs immediately

    def stop(self) -> None:
        self._stop.set()
        self._wake.set()
        for server in self._servers:
            server.shutdown()
            server.server_close()
        self._servers.clear()
        if self.socket_path and os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        for t in self._threads:
            t.join(timeout=5.0)
        self._threads.clear()
        self.telemetry.close()
        self.started = False

    def _drop_listeners(self) -> None:
        """Runs in forked children: release inherited server sockets."""
        for server in self._servers:
            try:
                server.socket.close()
            except OSError:
                pass

    def run_forever(self) -> None:
        """Block until :meth:`stop` (the ``serve`` CLI's main thread)."""
        try:
            while not self._stop.wait(0.2):
                pass
        except KeyboardInterrupt:
            self.stop()

    def _serve_socket(self) -> None:
        if os.path.exists(self.socket_path):
            # A previous daemon's leftover (e.g. after SIGKILL): only a
            # daemon that actually *answers* keeps the address.  A bare
            # connect() is not enough — a dead daemon's listen backlog
            # (or an orphaned worker child holding the inherited fd)
            # accepts connections the kernel will never service.
            if self._socket_answers():
                raise RuntimeError(
                    f"another daemon is live on {self.socket_path}")
            os.unlink(self.socket_path)
        server = _UnixServer(self.socket_path, _Handler)
        server.service = self
        self._start_server(server, "svc-unix")

    def _socket_answers(self, timeout_s: float = 2.0) -> bool:
        probe = socket.socket(socket.AF_UNIX)
        probe.settimeout(timeout_s)
        try:
            probe.connect(self.socket_path)
            probe.sendall(b'{"op": "ping"}\n')
            return bool(probe.recv(1))
        except OSError:
            return False
        finally:
            probe.close()

    def _serve_tcp(self) -> None:
        server = _TcpServer(("127.0.0.1", self.tcp_port), _Handler)
        server.service = self
        self.tcp_port = server.server_address[1]  # resolve port 0
        self._start_server(server, "svc-tcp")

    def _start_server(self, server, name: str) -> None:
        self._servers.append(server)
        t = threading.Thread(target=server.serve_forever,
                             kwargs={"poll_interval": 0.05},
                             name=name, daemon=True)
        t.start()
        self._threads.append(t)

    # -- job intake ---------------------------------------------------------
    def submit(self, kind: str, specs: list[dict],
               options: Optional[dict] = None) -> dict:
        """Accept a sweep; returns the job's status snapshot."""
        options = dict(options or {})
        worker = options.get("worker") or WORKERS.get(kind)
        if worker is None:
            raise ValueError(
                f"unknown job kind {kind!r} and no options['worker'] "
                f"given; built-in kinds: {sorted(WORKERS)}")
        resolve_worker(worker)          # validate before journaling
        MeasurePolicy.from_dict(options.get("measure"))  # validate
        job = self.queue.submit(kind, worker, specs, options)
        self._wake.set()
        return job.describe()

    def wait(self, job_id: str, timeout_s: Optional[float] = None
             ) -> dict:
        """Block until the job finishes; returns its full result set."""
        deadline = None if timeout_s is None \
            else time.monotonic() + timeout_s
        while True:
            job = self.queue.get(job_id)
            if job.finished:
                return self.result(job_id)
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{job_id} still has {job.total - job.completed} "
                    f"open point(s) after {timeout_s}s")
            time.sleep(0.02)

    def result(self, job_id: str) -> dict:
        job = self.queue.get(job_id)
        return {"job": job.job_id, "status": job.status,
                "finished": job.finished,
                "results": list(job.results),
                "attempts": list(job.attempts),
                "errors": job.errors}

    def stats(self) -> dict:
        with self._lock:
            inflight = len(self._inflight)
            deduped = self._deduped
        jobs = self.queue.list_jobs()
        return {
            "jobs": len(jobs),
            "open_jobs": sum(1 for j in jobs if j["status"] != "done"),
            "inflight_points": inflight,
            "deduped_points": deduped,
            "queue_depth": self.queue.depth(),
            "workers": self.jobs,
            "store": {"entries": self.store.entry_count(),
                      **self.store.read_stats()},
            "journal_recovered_drops": self.queue.recovered_drops,
            "telemetry": self.telemetry.log.stats(),
        }

    def prometheus(self) -> str:
        """The ``GET /metrics`` exposition body — built on demand, so a
        daemon nobody scrapes never pays for rendering."""
        with self._lock:
            inflight = len(self._inflight)
        jobs = self.queue.list_jobs()
        return render_prometheus(
            self.telemetry,
            queue_depth=self.queue.depth(),
            inflight=inflight,
            open_jobs=sum(1 for j in jobs if j["status"] != "done"),
            workers=self.jobs,
            store_stats=self.store.read_stats(),
            store_entries=self.store.entry_count())

    # -- dispatch -----------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            if self._wake.wait(timeout=0.2):
                self._wake.clear()
            if self._stop.is_set():
                return
            self._schedule_pending()

    def _schedule_pending(self) -> None:
        for job in self.queue.open_jobs():
            for index in job.pending_indices():
                if self._stop.is_set():
                    return
                spec = job.specs[index]
                key = self._dedup_key(job.kind, spec, job.options)
                with self._lock:
                    waiters = self._inflight.get(key)
                    if waiters is not None:
                        # an identical point is already computing:
                        # piggy-back on it instead of burning a slot
                        waiters.append((job.job_id, index))
                        self._deduped += 1
                if waiters is not None:
                    # claim outside self._lock: claiming emits a queue
                    # event, and the event fan-out re-takes the lock
                    self.queue.claim(job.job_id, index)
                    self.telemetry.point_deduped(job.job_id, index,
                                                 job.kind)
                    continue
                if not self._slots.acquire(blocking=False):
                    return  # every worker slot is busy; resume on wake
                with self._lock:
                    self._inflight[key] = [(job.job_id, index)]
                self.queue.claim(job.job_id, index)
                t = threading.Thread(
                    target=self._run_point,
                    args=(key, job.job_id, index, job.kind, job.worker,
                          spec, dict(job.options)),
                    name=f"svc-point-{job.job_id}-{index}", daemon=True)
                t.start()

    def _dedup_key(self, kind: str, spec: dict, options: dict) -> str:
        measure = options.get("measure") or {}
        return self.store.key(kind, spec) + "/" + _canonical(measure)

    def _retry_policy(self, options: dict) -> RetryPolicy:
        d = self.default_policy
        return RetryPolicy(
            timeout_s=options.get("timeout_s", d.timeout_s),
            retries=int(options.get("retries", d.retries)),
            backoff_s=float(options.get("backoff_s", d.backoff_s)),
            backoff_cap_s=float(options.get("backoff_cap_s",
                                            d.backoff_cap_s)))

    # -- point execution ----------------------------------------------------
    def _run_point(self, key: str, job_id: str, index: int, kind: str,
                   worker_path: str, spec: dict,
                   options: dict) -> None:
        self.telemetry.point_running(job_id, index, kind)
        try:
            result, attempts = self._compute(
                kind, worker_path, spec, options,
                on_failure=lambda failure, attempt, will_retry:
                    self.telemetry.point_failure(
                        job_id, index, kind, failure, attempt,
                        will_retry))
        except Exception as exc:  # defensive: never lose a point
            result = {"sweep_error": {"type": type(exc).__name__,
                                      "message": str(exc), "spec": spec}}
            attempts = 1
        finally:
            self._slots.release()
        with self._lock:
            waiters = self._inflight.pop(key, [])
        error = is_error_record(result)
        for job_id_, index_ in waiters:
            self.queue.record_point(job_id_, index_, result, error,
                                    attempts)
        self._wake.set()

    def _compute(self, kind: str, worker_path: str, spec: dict,
                 options: dict,
                 on_failure: Optional[Callable] = None
                 ) -> tuple[Any, int]:
        """One point, through store/reaping/retry — and, when the job
        asks for it, the adaptive-repetition measurement loop."""
        worker = resolve_worker(worker_path)
        policy = self._retry_policy(options)
        measure = MeasurePolicy.from_dict(options.get("measure"))
        if measure.single_shot:
            # the zero-cost path: no sampling, no stats arithmetic —
            # exactly a cached compute_with_retry
            return self._compute_one(kind, worker, spec, policy,
                                     on_failure)
        samples: list[float] = []
        base: Optional[dict] = None
        attempts_total = 0
        rep = 0
        while True:
            result, attempts = self._compute_one(
                kind, worker, rep_spec(spec, rep), policy, on_failure)
            attempts_total = max(attempts_total, attempts)
            if is_error_record(result):
                return result, attempts_total
            sample = sample_of(result)
            if sample is None:
                # nothing measurable in this worker's rows: stats are
                # impossible, deliver the plain result
                return result, attempts_total
            if rep == 0:
                base = result
            samples.append(sample)
            rep += 1
            if should_stop(samples, measure):
                break
        final = dict(base)
        stats = summarize_samples(samples, measure.confidence)
        final["stats"] = stats
        if isinstance(final.get("report"), dict):
            report = dict(final["report"])
            report["stats"] = stats
            final["report"] = report
        return final, attempts_total

    def _compute_one(self, kind: str, worker, spec: dict,
                     policy: RetryPolicy,
                     on_failure: Optional[Callable] = None
                     ) -> tuple[Any, int]:
        cached = self.store.get(kind, spec)
        if cached is not None:
            return cached, 0
        result, meta = compute_with_retry(worker, spec, policy,
                                          on_failure=on_failure)
        if not is_error_record(result):
            self.store.put(kind, spec, result)
        return result, meta["attempts"]

    # -- progress streaming -------------------------------------------------
    def _on_queue_event(self, kind: str, payload: dict) -> None:
        self._feed_telemetry(kind, payload)
        event = {"event": kind, **payload}
        with self._lock:
            watchers = list(self._watchers)
        for job_filter, watcher in watchers:
            if job_filter is None or payload.get("job") == job_filter:
                watcher.push(event)

    def _feed_telemetry(self, kind: str, payload: dict) -> None:
        """Queue transitions → lifecycle spans (docs/observability.md).

        ``running``/``reaped``/``retried``/``deduped`` spans come from
        the executor directly; everything that flows through the queue
        is mapped here so the span log and the watch stream can never
        disagree about what happened.
        """
        t = self.telemetry
        if kind == "submit":
            t.job_submitted(payload["job"], payload["kind"],
                            payload["total"])
        elif kind == "claim":
            t.point_claimed(payload["job"], payload["index"],
                            payload["kind"])
        elif kind == "point":
            t.point_done(payload["job"], payload["index"],
                         payload["kind"],
                         error=payload["status"] == "error",
                         attempts=payload.get("attempts", 1))
        elif kind == "done":
            t.job_done(payload["job"], payload["kind"])
        t.queue_depth(self.queue.depth())

    def _add_watcher(self, job_filter: Optional[str]) -> "_Watcher":
        watcher = _Watcher()
        with self._lock:
            self._watchers.append((job_filter, watcher))
        return watcher

    def _remove_watcher(self, watcher: "_Watcher") -> None:
        with self._lock:
            self._watchers = [(f, w) for f, w in self._watchers
                              if w is not watcher]

    # -- request handling (both protocols funnel here) ----------------------
    def handle_request(self, request: dict) -> dict:
        op = request.get("op")
        try:
            if op == "ping":
                return {"ok": True, "pong": True, "pid": os.getpid()}
            if op == "submit":
                return {"ok": True,
                        "job": self.submit(request["kind"],
                                           request["specs"],
                                           request.get("options"))}
            if op == "status":
                return {"ok": True,
                        "job": self.queue.get(
                            request["job"]).describe()}
            if op == "result":
                return {"ok": True, **self.result(request["job"])}
            if op == "wait":
                return {"ok": True,
                        **self.wait(request["job"],
                                    request.get("timeout"))}
            if op == "jobs":
                return {"ok": True, "jobs": self.queue.list_jobs()}
            if op == "stats":
                return {"ok": True, "stats": self.stats()}
            if op == "telemetry":
                return {"ok": True,
                        "telemetry": self.telemetry.snapshot()}
            if op == "shutdown":
                threading.Thread(target=self.stop, daemon=True).start()
                return {"ok": True, "stopping": True}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except (KeyError, ValueError, TimeoutError) as exc:
            return {"ok": False, "error": str(exc)}


class _Watcher:
    """One watching client's event mailbox."""

    def __init__(self):
        self._events: list[dict] = []
        self._cond = threading.Condition()

    def push(self, event: dict) -> None:
        with self._cond:
            self._events.append(event)
            self._cond.notify_all()

    def pop(self, timeout: float = 0.2) -> Optional[dict]:
        with self._cond:
            if self._cond.wait_for(lambda: bool(self._events), timeout):
                return self._events.pop(0)
            return None


class _UnixServer(socketserver.ThreadingUnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True
    service: "SweepService"


class _TcpServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    service: "SweepService"


class _Handler(socketserver.StreamRequestHandler):
    """Speaks JSON-lines natively; sniffs and answers minimal HTTP."""

    def handle(self) -> None:
        service: SweepService = self.server.service
        first = self.rfile.readline(1 << 20)
        if not first:
            return
        head = first.split(b" ", 1)[0]
        if head in (b"GET", b"POST", b"PUT", b"DELETE", b"HEAD"):
            self._handle_http(service, first)
            return
        # JSON-lines: serve requests until the client hangs up
        line = first
        while line:
            line = line.strip()
            if line:
                try:
                    request = json.loads(line)
                except ValueError:
                    self._send({"ok": False, "error": "bad JSON"})
                    return
                if request.get("op") == "watch":
                    self._stream_watch(service, request)
                    return
                self._send(service.handle_request(request))
            try:
                line = self.rfile.readline(1 << 20)
            except OSError:
                return

    def _send(self, payload: dict) -> None:
        try:
            self.wfile.write(_canonical(payload).encode() + b"\n")
            self.wfile.flush()
        except OSError:
            pass

    def _stream_watch(self, service: SweepService,
                      request: dict) -> None:
        """One event object per line until the watched job finishes."""
        job_id = request.get("job")
        watcher = service._add_watcher(job_id)
        try:
            try:
                job = service.queue.get(job_id) if job_id else None
            except KeyError:
                self._send({"ok": False,
                            "error": f"unknown job {job_id!r}"})
                return
            self._send({"ok": True, "watching": job_id})
            if job is not None and job.finished:
                self._send({"event": "done", **job.describe()})
                return
            while not service._stop.is_set():
                event = watcher.pop(timeout=0.2)
                if event is None:
                    continue
                self._send(event)
                if event.get("event") == "done" and (
                        job_id is None or event.get("job") == job_id):
                    return
        finally:
            service._remove_watcher(watcher)

    # -- minimal HTTP -------------------------------------------------------
    def _handle_http(self, service: SweepService,
                     request_line: bytes) -> None:
        try:
            method, target, _ = \
                request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            return
        length = 0
        while True:  # drain headers, remember the body length
            header = self.rfile.readline(1 << 16)
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = 0
        body = self.rfile.read(length) if length else b""
        if method == "GET" and target.rstrip("/") == "/metrics":
            # Prometheus exposition is text, not JSON — and rendering
            # happens only here, so an unscraped daemon pays nothing.
            self._send_http(200, "OK", PROM_CONTENT_TYPE,
                            service.prometheus().encode())
            return
        status, payload = self._http_route(service, method,
                                           target.rstrip("/"), body)
        data = (_canonical(payload) + "\n").encode()
        reason = {200: "OK", 400: "Bad Request",
                  404: "Not Found"}.get(status, "OK")
        self._send_http(status, reason, "application/json", data)

    def _send_http(self, status: int, reason: str, ctype: str,
                   data: bytes) -> None:
        try:
            self.wfile.write(
                f"HTTP/1.0 {status} {reason}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(data)}\r\n\r\n".encode() + data)
            self.wfile.flush()
        except OSError:
            pass

    def _http_route(self, service: SweepService, method: str,
                    target: str, body: bytes) -> tuple[int, dict]:
        if method == "POST" and target == "/jobs":
            try:
                request = json.loads(body or b"{}")
            except ValueError:
                return 400, {"ok": False, "error": "bad JSON body"}
            request["op"] = "submit"
            reply = service.handle_request(request)
            return (200 if reply.get("ok") else 400), reply
        if method == "GET":
            if target in ("", "/", "/ping"):
                return 200, service.handle_request({"op": "ping"})
            if target == "/jobs":
                return 200, service.handle_request({"op": "jobs"})
            if target == "/stats":
                return 200, service.handle_request({"op": "stats"})
            if target.startswith("/jobs/"):
                parts = target.split("/")  # ['', 'jobs', id, ...]
                op = "result" if parts[3:] == ["result"] else "status"
                reply = service.handle_request({"op": op,
                                                "job": parts[2]})
                return (200 if reply.get("ok") else 404), reply
        return 404, {"ok": False, "error": f"no route {method} {target}"}


class ServiceClient:
    """Talk to a running daemon over its unix socket (JSON lines).

    One connection per request keeps the client trivial and the failure
    mode clean: a daemon that died mid-request surfaces as
    ``ConnectionError``, and a fresh daemon on the same socket serves
    the next call.
    """

    def __init__(self, socket_path: str, timeout_s: float = 30.0):
        self.socket_path = socket_path
        self.timeout_s = timeout_s

    def _call(self, request: dict,
              timeout_s: Optional[float] = None) -> dict:
        sock = socket.socket(socket.AF_UNIX)
        sock.settimeout(timeout_s if timeout_s is not None
                        else self.timeout_s)
        try:
            sock.connect(self.socket_path)
            sock.sendall(_canonical(request).encode() + b"\n")
            reply = self._read_line(sock)
        finally:
            sock.close()
        if not reply.get("ok", False):
            raise RuntimeError(
                f"service error: {reply.get('error', reply)}")
        return reply

    @staticmethod
    def _read_line(sock: socket.socket) -> dict:
        chunks = []
        while True:
            chunk = sock.recv(1 << 16)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
        data = b"".join(chunks)
        if not data:
            raise ConnectionError("service closed the connection")
        return json.loads(data.decode())

    def ping(self) -> dict:
        return self._call({"op": "ping"})

    def submit(self, kind: str, specs: list[dict],
               options: Optional[dict] = None) -> dict:
        return self._call({"op": "submit", "kind": kind, "specs": specs,
                           "options": options or {}})["job"]

    def status(self, job_id: str) -> dict:
        return self._call({"op": "status", "job": job_id})["job"]

    def result(self, job_id: str) -> dict:
        return self._call({"op": "result", "job": job_id})

    def wait(self, job_id: str,
             timeout_s: Optional[float] = None) -> dict:
        return self._call({"op": "wait", "job": job_id,
                           "timeout": timeout_s},
                          timeout_s=(None if timeout_s is None
                                     else timeout_s + 5.0))

    def jobs(self) -> list[dict]:
        return self._call({"op": "jobs"})["jobs"]

    def stats(self) -> dict:
        return self._call({"op": "stats"})["stats"]

    def telemetry(self) -> dict:
        """The daemon's telemetry snapshot (counters, gauges, per-kind
        latency histograms, span-log stats)."""
        return self._call({"op": "telemetry"})["telemetry"]

    def shutdown(self) -> None:
        self._call({"op": "shutdown"})

    def watch(self, job_id: str,
              on_event: Callable[[dict], None],
              timeout_s: Optional[float] = None) -> None:
        """Stream the job's progress events; returns when it is done."""
        sock = socket.socket(socket.AF_UNIX)
        sock.settimeout(timeout_s if timeout_s is not None else None)
        try:
            sock.connect(self.socket_path)
            sock.sendall(_canonical({"op": "watch",
                                     "job": job_id}).encode() + b"\n")
            buf = b""
            while True:
                chunk = sock.recv(1 << 16)
                if not chunk:
                    return
                buf += chunk
                while b"\n" in buf:
                    line, buf = buf.split(b"\n", 1)
                    if not line.strip():
                        continue
                    event = json.loads(line.decode())
                    if event.get("ok") is False:
                        raise RuntimeError(
                            f"service error: {event.get('error')}")
                    if "event" in event:
                        on_event(event)
                        if event["event"] == "done":
                            return
        finally:
            sock.close()

    def sweep(self, kind: str, specs: list[dict],
              options: Optional[dict] = None,
              timeout_s: Optional[float] = None) -> list[Any]:
        """Submit + wait: a drop-in for
        :func:`repro.harness.parallel.sweep` running on the daemon."""
        job = self.submit(kind, specs, options)
        return self.wait(job["job"], timeout_s=timeout_s)["results"]


def serve(root: str, socket_path: Optional[str] = None,
          tcp_port: Optional[int] = None, jobs: int = 2,
          point_timeout_s: Optional[float] = 300.0, retries: int = 2,
          backoff_s: float = 0.1,
          store_budget_bytes: Optional[int] = None,
          verbose: bool = True) -> SweepService:
    """Build, start, and return a daemon (``python -m repro.harness
    serve`` blocks on it via :meth:`SweepService.run_forever`)."""
    if socket_path is None and tcp_port is None:
        socket_path = str(Path(root) / "service.sock")
    service = SweepService(
        root, socket_path=socket_path, tcp_port=tcp_port, jobs=jobs,
        point_timeout_s=point_timeout_s, retries=retries,
        backoff_s=backoff_s, store_budget_bytes=store_budget_bytes)
    service.start()
    if verbose:
        open_jobs = len(service.queue.open_jobs())
        where = socket_path or f"127.0.0.1:{service.tcp_port}"
        resumed = (f", resuming {open_jobs} journaled job(s)"
                   if open_jobs else "")
        print(f"sweep service on {where} ({service.jobs} worker "
              f"slot(s), journal {service.queue.journal_path})"
              f"{resumed}")
    return service
