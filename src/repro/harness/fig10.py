"""Fig 10 — nanopowder growth simulation, baseline vs clMPI on RICC."""

from __future__ import annotations

from typing import Optional

from repro.apps.nanopowder import NanoConfig, run_nanopowder
from repro.harness.report import Table
from repro.systems import get_system

__all__ = ["run_fig10"]

#: the node counts of §V.D ("the number of nodes must be a divisor of 40")
DEFAULT_NODES = [1, 2, 4, 5, 8, 10, 20, 40]


def run_fig10(system: str = "ricc",
              nodes: Optional[list[int]] = None,
              steps: int = 2, functional: bool = False,
              verbose: bool = True) -> Table:
    """Regenerate Fig 10: simulation throughput per implementation."""
    preset = get_system(system)
    nodes = nodes or DEFAULT_NODES
    cfg = (NanoConfig.paper_scale(steps=steps) if not functional
           else NanoConfig.test_scale(steps=steps))
    table = Table(
        f"Fig 10: nanopowder throughput on {preset.name} (steps/s)",
        ["nodes", "baseline", "clMPI", "clMPI gain", "clMPI speedup vs 1"])
    base1 = None
    for n in nodes:
        rb = run_nanopowder(preset, n, "baseline", cfg,
                            functional=functional)
        rc = run_nanopowder(preset, n, "clmpi", cfg, functional=functional)
        if base1 is None:
            base1 = rc
        table.add(n, round(rb.steps_per_second, 3),
                  round(rc.steps_per_second, 3),
                  f"{(rc.steps_per_second / rb.steps_per_second - 1) * 100:+.1f}%",
                  round(rc.speedup_vs(base1), 2))
    if verbose:
        print(table.render())
    return table
