"""Fig 10 — nanopowder growth simulation, baseline vs clMPI on RICC."""

from __future__ import annotations

from typing import Optional

from repro.harness.cache import ResultCache
from repro.harness.parallel import is_error_record, sweep
from repro.harness.report import Table
from repro.systems import get_system

__all__ = ["run_fig10"]

#: the node counts of §V.D ("the number of nodes must be a divisor of 40")
DEFAULT_NODES = [1, 2, 4, 5, 8, 10, 20, 40]

IMPLS = ("baseline", "clmpi")


def nanopowder_point(spec: dict) -> dict:
    """Sweep worker: one (nodes, implementation) nanopowder run.

    Dict-in/dict-out and module-level so the point can cross a process
    pool and the result cache (see :mod:`repro.harness.parallel`).
    """
    from repro.apps.nanopowder import NanoConfig, run_nanopowder

    cfg = (NanoConfig.paper_scale(steps=spec["steps"])
           if spec["scale"] == "paper"
           else NanoConfig.test_scale(steps=spec["steps"]))
    res = run_nanopowder(get_system(spec["system"]), spec["nodes"],
                         spec["impl"], cfg,
                         functional=spec.get("functional", False))
    return {"steps_per_second": res.steps_per_second}


def run_fig10(system: str = "ricc",
              nodes: Optional[list[int]] = None,
              steps: int = 2, functional: bool = False,
              verbose: bool = True,
              jobs: Optional[int] = 1,
              cache: Optional[ResultCache] = None) -> Table:
    """Regenerate Fig 10: simulation throughput per implementation."""
    preset = get_system(system)
    nodes = nodes or DEFAULT_NODES
    scale = "test" if functional else "paper"
    specs = [{"system": preset.name, "nodes": n, "impl": impl,
              "steps": steps, "scale": scale, "functional": functional}
             for n in nodes for impl in IMPLS]
    results = sweep(nanopowder_point, specs, jobs=jobs, cache=cache,
                    kind="nanopowder")
    errors = [r for r in results if is_error_record(r)]
    table = Table(
        f"Fig 10: nanopowder throughput on {preset.name} (steps/s)",
        ["nodes", "baseline", "clMPI", "clMPI gain", "clMPI speedup vs 1"])
    base1 = None
    for i, n in enumerate(nodes):
        rb, rc = results[i * 2], results[i * 2 + 1]
        if is_error_record(rb) or is_error_record(rc):
            table.add(n,
                      "ERROR" if is_error_record(rb)
                      else round(rb["steps_per_second"], 3),
                      "ERROR" if is_error_record(rc)
                      else round(rc["steps_per_second"], 3),
                      "n/a", "n/a")
            continue
        sb = rb["steps_per_second"]
        sc = rc["steps_per_second"]
        if base1 is None:
            base1 = sc
        table.add(n, round(sb, 3), round(sc, 3),
                  f"{(sc / sb - 1) * 100:+.1f}%",
                  round(sc / base1, 2))
    if verbose:
        print(table.render())
        if errors:
            print(f"WARNING: partial figure — {len(errors)} of "
                  f"{len(results)} points failed:")
            for e in errors:
                err, spec = e["sweep_error"], e["sweep_error"]["spec"]
                print(f"  {spec['impl']} @ {spec['nodes']} nodes: "
                      f"{err['type']}: {err['message']}")
    return table
