"""Experiment harness: one regenerator per evaluation table/figure.

Command line::

    python -m repro.harness table1
    python -m repro.harness fig8 --system cichlid
    python -m repro.harness fig9 --system ricc --nodes 1,2,4,8
    python -m repro.harness fig10
    python -m repro.harness fig4
    python -m repro.harness all
    python -m repro.harness serve --root .repro_service   # daemon
    python -m repro.harness submit bandwidth --socket ... --specs grid.json
    python -m repro.harness status --socket ...

Each runner prints the same rows/series the paper reports (virtual-time
measurements from the simulated cluster) and returns structured results
for the benchmark suite and EXPERIMENTS.md.
"""

from repro.harness.cache import ResultCache, SharedStore, code_version
from repro.harness.fig10 import run_fig10
from repro.harness.fig8 import run_fig8
from repro.harness.fig9 import run_fig9
from repro.harness.parallel import sweep
from repro.harness.report import Table, format_table
from repro.harness.table1 import run_table1
from repro.harness.timeline import run_fig4

__all__ = ["Table", "format_table", "run_table1", "run_fig8", "run_fig9",
           "run_fig10", "run_fig4", "ResultCache", "SharedStore",
           "code_version", "sweep"]
