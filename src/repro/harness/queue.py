"""Durable job queue for the sweep service.

A *job* is one sweep: a worker (named by dotted path, resolvable in any
process), a list of JSON-able spec dicts, and per-job execution options
(timeout/retry/backoff, measurement repetitions).  The queue records
every state transition in an append-only JSONL journal, so a daemon
killed at any instant — ``kill -9`` included — rebuilds its exact state
by replaying the file:

* ``{"event": "submit", "job": ..., "kind": ..., "worker": ...,
  "specs": [...], "options": {...}, "token": ...}``
* ``{"event": "point", "job": ..., "index": i, "status": "done" |
  "error", "result": ..., "attempts": n}``
* ``{"event": "done", "job": ...}``
* ``{"event": "lease", "job": ..., "index": i, "lease": ...,
  "agent": ..., "deadline": wall}`` — a federation agent's
  time-bounded claim (grants and renewals both land here)
* ``{"event": "lease_end", "lease": ..., "why": "done" | "expired" |
  "abandoned" | "stale"}``
* ``{"event": "duplicate", "job": ..., "index": i, "agent": ...}`` —
  a completion that lost the first-write-wins race
* ``{"event": "snapshot", ...}`` — a compaction checkpoint carrying the
  whole queue state in one line (see :meth:`JobQueue.compact`)

Completed points carry their full result inline, so a resumed job
re-delivers byte-identical rows even if the shared store has since
evicted the entry.  Appends are flushed and fsynced line-by-line; a
torn final line (the write the crash interrupted) is detected and
ignored on replay, losing at most the single transition it described —
which the resumed daemon simply recomputes.

Two claim idioms coexist:

* **Local claims** (:meth:`JobQueue.claim`) are deliberately never
  journaled — a point the daemon's own executor was running when it
  died is simply pending again on replay.
* **Leases** (:meth:`JobQueue.lease`) are journaled with a wall-clock
  deadline: a federation agent on another process (or host) holds the
  point, the coordinator re-queues it when the deadline passes without
  renewal, and a restarted coordinator replays outstanding leases so a
  surviving agent's completion is neither lost nor double-counted.

The journal is kept bounded by :meth:`JobQueue.compact`: the whole
state collapses into a single ``snapshot`` line written to a temp file
and atomically renamed over the journal, so a crash mid-compaction
leaves the previous journal fully intact.  Compaction runs at startup
and whenever the journal crosses ``compact_bytes``.

The queue is process-local (one daemon owns one journal) but
thread-safe: the service's dispatcher, executor threads, and client
handlers all mutate it under one lock.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

__all__ = ["Job", "JobQueue", "Lease", "JOURNAL_NAME"]

JOURNAL_NAME = "journal.jsonl"

#: point states, in lifecycle order (``leased`` sits beside ``running``:
#: the point is held by a federation agent instead of a local slot)
_PENDING, _LEASED, _RUNNING = "pending", "leased", "running"
_DONE, _ERROR = "done", "error"


@dataclass
class Lease:
    """One agent's time-bounded hold on one point."""

    lease_id: str
    job_id: str
    index: int
    agent: str
    deadline: float  # wall clock (time.time()); survives restarts

    def describe(self) -> dict:
        return {"lease": self.lease_id, "job": self.job_id,
                "index": self.index, "agent": self.agent,
                "deadline": self.deadline}


@dataclass
class Job:
    """One submitted sweep and its per-point progress."""

    job_id: str
    kind: str
    worker: str
    specs: list[dict]
    options: dict = field(default_factory=dict)
    status: str = "queued"          # queued | running | done
    point_status: list[str] = field(default_factory=list)
    results: list[Any] = field(default_factory=list)
    attempts: list[int] = field(default_factory=list)
    token: Optional[str] = None     # submit idempotency token

    def __post_init__(self):
        n = len(self.specs)
        if not self.point_status:
            self.point_status = [_PENDING] * n
        if not self.results:
            self.results = [None] * n
        if not self.attempts:
            self.attempts = [0] * n

    @property
    def total(self) -> int:
        return len(self.specs)

    @property
    def completed(self) -> int:
        return sum(1 for s in self.point_status if s in (_DONE, _ERROR))

    @property
    def errors(self) -> int:
        return sum(1 for s in self.point_status if s == _ERROR)

    @property
    def finished(self) -> bool:
        return self.completed == self.total

    def pending_indices(self) -> list[int]:
        return [i for i, s in enumerate(self.point_status)
                if s == _PENDING]

    def describe(self) -> dict:
        """JSON-able status snapshot (what clients poll)."""
        return {"job": self.job_id, "kind": self.kind,
                "status": self.status, "total": self.total,
                "completed": self.completed, "errors": self.errors,
                "leased": sum(1 for s in self.point_status
                              if s == _LEASED),
                "retried_points": sum(1 for a in self.attempts if a > 1),
                "options": dict(self.options)}


class JobQueue:
    """Journaled, crash-resumable queue of sweep jobs (see module doc).

    ``on_event(kind, payload)`` — when set — fires after every recorded
    transition (``"submit"``, ``"claim"``, ``"point"``, ``"done"``,
    ``"lease"``, ``"lease_end"``, ``"duplicate"``); the service uses it
    to stream progress to watching clients and to feed the telemetry
    span log.  ``"claim"`` is an in-memory event only — local claims
    are deliberately never journaled.
    """

    def __init__(self, root: Path,
                 compact_bytes: int = 8 << 20):
        if compact_bytes < 1:
            raise ValueError(
                f"compact_bytes must be >= 1, got {compact_bytes}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.root / JOURNAL_NAME
        self.compact_bytes = compact_bytes
        self.jobs: dict[str, Job] = {}
        self.leases: dict[str, Lease] = {}
        self._order: list[str] = []          # submission order
        self._tokens: dict[str, str] = {}    # idempotency token -> job
        self._lock = threading.RLock()
        self._seq = 0
        self.on_event: Optional[Callable[[str, dict], None]] = None
        #: journal lines dropped on replay (torn tail, corruption)
        self.recovered_drops = 0
        #: leases that passed their deadline and were re-queued
        self.lease_expirations = 0
        #: completions that arrived after the point was already done
        self.duplicate_results = 0
        #: snapshot-and-truncate passes over the journal
        self.compactions = 0
        self._journal_bytes = 0
        # A crash mid-compaction leaves a stale temp snapshot beside an
        # intact journal; drop it so a torn snapshot can never be read.
        try:
            os.unlink(self._compact_tmp_path)
        except OSError:
            pass
        self._replay()
        if self._journal_bytes > 0:
            # startup compaction: fold the replayed history into one
            # snapshot line so restarts never re-pay old replay cost
            self.compact()

    # -- journal ------------------------------------------------------------
    @property
    def _compact_tmp_path(self) -> Path:
        return self.journal_path.with_name(
            self.journal_path.name + ".compact.tmp")

    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with open(self.journal_path, "a") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
            self._journal_bytes = fh.tell()
        if self._journal_bytes > self.compact_bytes:
            self.compact()

    def _replay(self) -> None:
        """Rebuild queue state from the journal (daemon restart path)."""
        if not self.journal_path.exists():
            return
        with open(self.journal_path) as fh:
            for line in fh:
                self._journal_bytes += len(line.encode())
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    self._apply(record)
                except (ValueError, KeyError, IndexError, TypeError):
                    # a torn tail line (the crash-interrupted write) or
                    # hand-damage: drop it — at worst one transition is
                    # recomputed
                    self.recovered_drops += 1
        # points that were mid-flight when the daemon died have no
        # completion record: they are simply pending again
        leased = {(lease.job_id, lease.index)
                  for lease in self.leases.values()}
        for job in self.jobs.values():
            for i, s in enumerate(job.point_status):
                if s == _RUNNING:
                    job.point_status[i] = _PENDING
                elif s == _LEASED and (job.job_id, i) not in leased:
                    # the lease_end line was torn away: re-queue
                    job.point_status[i] = _PENDING
            if not job.finished and job.status == "done":
                job.status = "queued"  # journal said done prematurely
        # leases on points that completed (the point line outlived the
        # lease_end line) are spent; drop them instead of re-expiring
        for lease_id, lease in list(self.leases.items()):
            job = self.jobs.get(lease.job_id)
            if job is None or \
                    job.point_status[lease.index] in (_DONE, _ERROR):
                del self.leases[lease_id]

    def _apply(self, record: dict) -> None:
        event = record["event"]
        if event == "snapshot":
            self._apply_snapshot(record)
        elif event == "submit":
            job = Job(job_id=record["job"], kind=record["kind"],
                      worker=record["worker"],
                      specs=list(record["specs"]),
                      options=dict(record.get("options") or {}),
                      token=record.get("token"))
            self._register_job(job)
        elif event == "point":
            job = self.jobs[record["job"]]
            i = record["index"]
            job.point_status[i] = record["status"]
            job.results[i] = record.get("result")
            job.attempts[i] = int(record.get("attempts", 1))
        elif event == "done":
            self.jobs[record["job"]].status = "done"
        elif event == "lease":
            job = self.jobs[record["job"]]
            i = record["index"]
            self.leases[record["lease"]] = Lease(
                lease_id=record["lease"], job_id=record["job"],
                index=i, agent=record.get("agent", ""),
                deadline=float(record["deadline"]))
            if job.point_status[i] == _PENDING:
                job.point_status[i] = _LEASED
        elif event == "lease_end":
            lease = self.leases.pop(record["lease"], None)
            if record.get("why") == "expired":
                self.lease_expirations += 1
            if lease is not None:
                job = self.jobs.get(lease.job_id)
                if job is not None and \
                        job.point_status[lease.index] == _LEASED:
                    job.point_status[lease.index] = _PENDING
        elif event == "duplicate":
            self.duplicate_results += 1

    def _register_job(self, job: Job) -> None:
        self.jobs[job.job_id] = job
        self._order.append(job.job_id)
        if job.token:
            self._tokens[job.token] = job.job_id
        num = job.job_id.rsplit("-", 1)[-1]
        if num.isdigit():
            self._seq = max(self._seq, int(num))

    # -- compaction ---------------------------------------------------------
    def _snapshot_record(self) -> dict:
        return {
            "event": "snapshot",
            "jobs": [{"job": j.job_id, "kind": j.kind,
                      "worker": j.worker, "specs": j.specs,
                      "options": j.options, "status": j.status,
                      "point_status": j.point_status,
                      "results": j.results, "attempts": j.attempts,
                      "token": j.token}
                     for j in (self.jobs[job_id]
                               for job_id in self._order)],
            "leases": [lease.describe()
                       for lease in self.leases.values()],
            "seq": self._seq,
            "counters": {"lease_expirations": self.lease_expirations,
                         "duplicate_results": self.duplicate_results,
                         "recovered_drops": self.recovered_drops},
        }

    def _apply_snapshot(self, record: dict) -> None:
        """Load a compaction checkpoint (always the journal's first
        line when present; later lines replay on top of it)."""
        self.jobs.clear()
        self.leases.clear()
        self._order.clear()
        self._tokens.clear()
        for j in record["jobs"]:
            job = Job(job_id=j["job"], kind=j["kind"],
                      worker=j["worker"], specs=list(j["specs"]),
                      options=dict(j.get("options") or {}),
                      status=j.get("status", "queued"),
                      point_status=list(j["point_status"]),
                      results=list(j["results"]),
                      attempts=list(j["attempts"]),
                      token=j.get("token"))
            self._register_job(job)
        for entry in record.get("leases", []):
            self.leases[entry["lease"]] = Lease(
                lease_id=entry["lease"], job_id=entry["job"],
                index=entry["index"], agent=entry.get("agent", ""),
                deadline=float(entry["deadline"]))
        self._seq = max(self._seq, int(record.get("seq", 0)))
        counters = record.get("counters") or {}
        self.lease_expirations += int(
            counters.get("lease_expirations", 0))
        self.duplicate_results += int(
            counters.get("duplicate_results", 0))
        self.recovered_drops += int(counters.get("recovered_drops", 0))

    def compact(self) -> None:
        """Snapshot-and-truncate the journal (one atomic rename).

        The full queue state — jobs with inline results, outstanding
        leases, counters — collapses into a single ``snapshot`` line.
        The new journal is written to a temp file, fsynced, and renamed
        over the old one, so a crash at any instant leaves either the
        complete old journal or the complete compacted one; a torn
        snapshot can only ever exist in the temp file, which startup
        discards.
        """
        with self._lock:
            line = json.dumps(self._snapshot_record(), sort_keys=True,
                              separators=(",", ":")) + "\n"
            tmp = self._compact_tmp_path
            with open(tmp, "w") as fh:
                fh.write(line)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.journal_path)
            self._journal_bytes = len(line.encode())
            self.compactions += 1

    # -- mutation (all journaled) -------------------------------------------
    def submit(self, kind: str, worker: str, specs: list[dict],
               options: Optional[dict] = None,
               token: Optional[str] = None) -> Job:
        """Enqueue a sweep; returns the durable :class:`Job`.

        ``token`` — a client-supplied idempotency token — makes the
        submit safe to retry after a dropped reply: a token the journal
        has already seen returns the existing job instead of enqueuing
        a second copy.
        """
        if not specs:
            raise ValueError("a job needs at least one spec")
        with self._lock:
            if token is not None and token in self._tokens:
                return self.jobs[self._tokens[token]]
            self._seq += 1
            job = Job(job_id=f"job-{self._seq:06d}", kind=kind,
                      worker=worker, specs=[dict(s) for s in specs],
                      options=dict(options or {}), token=token)
            record = {"event": "submit", "job": job.job_id,
                      "kind": kind, "worker": worker,
                      "specs": job.specs, "options": job.options}
            if token is not None:
                record["token"] = token
            self._append(record)
            self.jobs[job.job_id] = job
            self._order.append(job.job_id)
            if token is not None:
                self._tokens[token] = job.job_id
        self._emit("submit", job.describe())
        return job

    def claim(self, job_id: str, index: int) -> None:
        """Mark one point in-flight locally (not journaled: a crash
        while running leaves the point pending on replay, exactly
        right for the single-daemon executor)."""
        with self._lock:
            job = self.jobs[job_id]
            job.point_status[index] = _RUNNING
            if job.status == "queued":
                job.status = "running"
            kind = job.kind
        self._emit("claim", {"job": job_id, "index": index,
                             "kind": kind})

    # -- leases (the federation claim idiom) --------------------------------
    def lease(self, job_id: str, index: int, agent: str,
              ttl_s: float, now: Optional[float] = None) -> Lease:
        """Grant a journaled, time-bounded hold on one pending point."""
        now = time.time() if now is None else now
        with self._lock:
            job = self.jobs[job_id]
            if job.point_status[index] != _PENDING:
                raise ValueError(
                    f"{job_id}[{index}] is "
                    f"{job.point_status[index]}, not pending")
            lease = Lease(lease_id=f"lease-{uuid.uuid4().hex[:12]}",
                          job_id=job_id, index=index, agent=agent,
                          deadline=now + ttl_s)
            self._append({"event": "lease", "job": job_id,
                          "index": index, "lease": lease.lease_id,
                          "agent": agent, "deadline": lease.deadline})
            self.leases[lease.lease_id] = lease
            job.point_status[index] = _LEASED
            if job.status == "queued":
                job.status = "running"
            kind = job.kind
        self._emit("lease", {"job": job_id, "index": index,
                             "kind": kind, "agent": agent,
                             "lease": lease.lease_id})
        return lease

    def renew_lease(self, lease_id: str, agent: str, ttl_s: float,
                    now: Optional[float] = None) -> Lease:
        """Extend a live lease's deadline (journaled, so a restarted
        coordinator honours the renewal).  Raises :class:`KeyError` for
        an unknown/expired lease and :class:`ValueError` when another
        agent holds it — the caller treats either as "stale"."""
        now = time.time() if now is None else now
        with self._lock:
            lease = self.leases.get(lease_id)
            if lease is None:
                raise KeyError(f"unknown or expired lease {lease_id!r}")
            if lease.agent != agent:
                raise ValueError(
                    f"lease {lease_id!r} is held by {lease.agent!r}, "
                    f"not {agent!r}")
            lease.deadline = now + ttl_s
            self._append({"event": "lease", "job": lease.job_id,
                          "index": lease.index, "lease": lease_id,
                          "agent": agent, "deadline": lease.deadline})
            return lease

    def release_lease(self, lease_id: str, why: str) -> Optional[Lease]:
        """End a lease (``why`` ∈ done/expired/abandoned/stale); a
        still-open point goes back to pending."""
        with self._lock:
            lease = self.leases.pop(lease_id, None)
            if lease is None:
                return None
            self._append({"event": "lease_end", "lease": lease_id,
                          "why": why})
            if why == "expired":
                self.lease_expirations += 1
            job = self.jobs.get(lease.job_id)
            requeued = False
            if job is not None and \
                    job.point_status[lease.index] == _LEASED:
                job.point_status[lease.index] = _PENDING
                requeued = True
            kind = job.kind if job is not None else "?"
        self._emit("lease_end", {"job": lease.job_id,
                                 "index": lease.index, "kind": kind,
                                 "lease": lease_id, "why": why,
                                 "agent": lease.agent,
                                 "requeued": requeued})
        return lease

    def expire_due_leases(self,
                          now: Optional[float] = None) -> list[Lease]:
        """Re-queue every lease whose deadline has passed; returns the
        expired leases (the coordinator's heartbeat-sweep tick)."""
        now = time.time() if now is None else now
        with self._lock:
            due = [lease_id for lease_id, lease in self.leases.items()
                   if lease.deadline <= now]
        expired = []
        for lease_id in due:
            lease = self.release_lease(lease_id, "expired")
            if lease is not None:
                expired.append(lease)
        return expired

    def agent_leases(self, agent: str) -> list[Lease]:
        with self._lock:
            return [lease for lease in self.leases.values()
                    if lease.agent == agent]

    def active_leases(self) -> int:
        with self._lock:
            return len(self.leases)

    def complete_leased(self, lease_id: str, job_id: str, index: int,
                        result: Any, error: bool,
                        attempts: int, agent: str = "") -> str:
        """Record a (possibly stale) leased completion; returns the
        disposition:

        * ``"recorded"`` — the lease was live; the point completes.
        * ``"adopted"`` — the lease had expired but the point is still
          open (nobody recomputed it yet); the result is valid — the
          workload is deterministic — so it completes the point within
          the lease timeout instead of forcing a recompute.
        * ``"duplicate_result"`` — the point was already completed by
          someone else; nothing is recorded beyond the duplicate
          counter.  First write wins, the loser is harmless.
        """
        emits: list[tuple[str, dict]] = []
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            lease = self.leases.get(lease_id)
            lease_live = (lease is not None and lease.job_id == job_id
                          and lease.index == index)
            if job.point_status[index] in (_DONE, _ERROR):
                self._append({"event": "duplicate", "job": job_id,
                              "index": index, "agent": agent})
                self.duplicate_results += 1
                if lease_live:
                    # e.g. the point was adopted from this agent's
                    # previous expired lease while a fresh lease raced
                    self.leases.pop(lease_id, None)
                    self._append({"event": "lease_end",
                                  "lease": lease_id, "why": "stale"})
                emits.append(("duplicate",
                              {"job": job_id, "index": index,
                               "kind": job.kind, "agent": agent}))
                disposition = "duplicate_result"
            else:
                if lease_live:
                    self.leases.pop(lease_id, None)
                    self._append({"event": "lease_end",
                                  "lease": lease_id, "why": "done"})
                    disposition = "recorded"
                else:
                    disposition = "adopted"
                status = _ERROR if error else _DONE
                self._append({"event": "point", "job": job_id,
                              "index": index, "status": status,
                              "result": result, "attempts": attempts})
                job.point_status[index] = status
                job.results[index] = result
                job.attempts[index] = attempts
                emits.append(("point", {"job": job_id, "index": index,
                                        "status": status,
                                        "attempts": attempts,
                                        "kind": job.kind}))
                if job.finished and job.status != "done":
                    self._append({"event": "done", "job": job_id})
                    job.status = "done"
                    emits.append(("done", job.describe()))
        for kind, payload in emits:
            self._emit(kind, payload)
        return disposition

    def record_point(self, job_id: str, index: int, result: Any,
                     error: bool, attempts: int) -> None:
        """Journal one point's completion (result inline)."""
        status = _ERROR if error else _DONE
        with self._lock:
            self._append({"event": "point", "job": job_id,
                          "index": index, "status": status,
                          "result": result, "attempts": attempts})
            job = self.jobs[job_id]
            job.point_status[index] = status
            job.results[index] = result
            job.attempts[index] = attempts
            finished = job.finished
            if finished and job.status != "done":
                self._append({"event": "done", "job": job_id})
                job.status = "done"
            kind = job.kind
        self._emit("point", {"job": job_id, "index": index,
                             "status": status, "attempts": attempts,
                             "kind": kind})
        if finished:
            self._emit("done", self.jobs[job_id].describe())

    # -- views --------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self.jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job {job_id!r}") from None

    def list_jobs(self) -> list[dict]:
        with self._lock:
            return [self.jobs[j].describe() for j in self._order]

    def open_jobs(self) -> list[Job]:
        """Jobs with uncomputed points, in submission order — the
        dispatcher's work list (and the resume set after a restart)."""
        with self._lock:
            return [self.jobs[j] for j in self._order
                    if not self.jobs[j].finished]

    def depth(self) -> int:
        """Points not yet completed across all jobs (the queue-depth
        gauge ``GET /metrics`` exposes)."""
        with self._lock:
            return sum(job.total - job.completed
                       for job in self.jobs.values())

    def _emit(self, kind: str, payload: dict) -> None:
        hook = self.on_event
        if hook is not None:
            try:
                hook(kind, payload)
            except Exception:  # listeners must never break the queue
                pass
