"""Durable job queue for the sweep service.

A *job* is one sweep: a worker (named by dotted path, resolvable in any
process), a list of JSON-able spec dicts, and per-job execution options
(timeout/retry/backoff, measurement repetitions).  The queue records
every state transition in an append-only JSONL journal, so a daemon
killed at any instant — ``kill -9`` included — rebuilds its exact state
by replaying the file:

* ``{"event": "submit", "job": ..., "kind": ..., "worker": ...,
  "specs": [...], "options": {...}}``
* ``{"event": "point", "job": ..., "index": i, "status": "done" |
  "error", "result": ..., "attempts": n}``
* ``{"event": "done", "job": ...}``

Completed points carry their full result inline, so a resumed job
re-delivers byte-identical rows even if the shared store has since
evicted the entry.  Appends are flushed and fsynced line-by-line; a
torn final line (the write the crash interrupted) is detected and
ignored on replay, losing at most the single transition it described —
which the resumed daemon simply recomputes.

The queue is process-local (one daemon owns one journal) but
thread-safe: the service's dispatcher, executor threads, and client
handlers all mutate it under one lock.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

__all__ = ["Job", "JobQueue", "JOURNAL_NAME"]

JOURNAL_NAME = "journal.jsonl"

#: point states, in lifecycle order
_PENDING, _RUNNING, _DONE, _ERROR = "pending", "running", "done", "error"


@dataclass
class Job:
    """One submitted sweep and its per-point progress."""

    job_id: str
    kind: str
    worker: str
    specs: list[dict]
    options: dict = field(default_factory=dict)
    status: str = "queued"          # queued | running | done
    point_status: list[str] = field(default_factory=list)
    results: list[Any] = field(default_factory=list)
    attempts: list[int] = field(default_factory=list)

    def __post_init__(self):
        n = len(self.specs)
        if not self.point_status:
            self.point_status = [_PENDING] * n
        if not self.results:
            self.results = [None] * n
        if not self.attempts:
            self.attempts = [0] * n

    @property
    def total(self) -> int:
        return len(self.specs)

    @property
    def completed(self) -> int:
        return sum(1 for s in self.point_status if s in (_DONE, _ERROR))

    @property
    def errors(self) -> int:
        return sum(1 for s in self.point_status if s == _ERROR)

    @property
    def finished(self) -> bool:
        return self.completed == self.total

    def pending_indices(self) -> list[int]:
        return [i for i, s in enumerate(self.point_status)
                if s == _PENDING]

    def describe(self) -> dict:
        """JSON-able status snapshot (what clients poll)."""
        return {"job": self.job_id, "kind": self.kind,
                "status": self.status, "total": self.total,
                "completed": self.completed, "errors": self.errors,
                "retried_points": sum(1 for a in self.attempts if a > 1),
                "options": dict(self.options)}


class JobQueue:
    """Journaled, crash-resumable queue of sweep jobs (see module doc).

    ``on_event(kind, payload)`` — when set — fires after every recorded
    transition (``"submit"``, ``"claim"``, ``"point"``, ``"done"``); the
    service uses it to stream progress to watching clients and to feed
    the telemetry span log.  ``"claim"`` is an in-memory event only —
    claims are deliberately never journaled.
    """

    def __init__(self, root: Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.root / JOURNAL_NAME
        self.jobs: dict[str, Job] = {}
        self._order: list[str] = []          # submission order
        self._lock = threading.RLock()
        self._seq = 0
        self.on_event: Optional[Callable[[str, dict], None]] = None
        #: journal lines dropped on replay (torn tail, corruption)
        self.recovered_drops = 0
        self._replay()

    # -- journal ------------------------------------------------------------
    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with open(self.journal_path, "a") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())

    def _replay(self) -> None:
        """Rebuild queue state from the journal (daemon restart path)."""
        if not self.journal_path.exists():
            return
        with open(self.journal_path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    self._apply(record)
                except (ValueError, KeyError, IndexError, TypeError):
                    # a torn tail line (the crash-interrupted write) or
                    # hand-damage: drop it — at worst one transition is
                    # recomputed
                    self.recovered_drops += 1
        # points that were mid-flight when the daemon died have no
        # completion record: they are simply pending again
        for job in self.jobs.values():
            for i, s in enumerate(job.point_status):
                if s == _RUNNING:
                    job.point_status[i] = _PENDING
            if not job.finished and job.status == "done":
                job.status = "queued"  # journal said done prematurely

    def _apply(self, record: dict) -> None:
        event = record["event"]
        if event == "submit":
            job = Job(job_id=record["job"], kind=record["kind"],
                      worker=record["worker"],
                      specs=list(record["specs"]),
                      options=dict(record.get("options") or {}))
            self.jobs[job.job_id] = job
            self._order.append(job.job_id)
            num = job.job_id.rsplit("-", 1)[-1]
            if num.isdigit():
                self._seq = max(self._seq, int(num))
        elif event == "point":
            job = self.jobs[record["job"]]
            i = record["index"]
            job.point_status[i] = record["status"]
            job.results[i] = record.get("result")
            job.attempts[i] = int(record.get("attempts", 1))
        elif event == "done":
            self.jobs[record["job"]].status = "done"

    # -- mutation (all journaled) -------------------------------------------
    def submit(self, kind: str, worker: str, specs: list[dict],
               options: Optional[dict] = None) -> Job:
        """Enqueue a sweep; returns the durable :class:`Job`."""
        if not specs:
            raise ValueError("a job needs at least one spec")
        with self._lock:
            self._seq += 1
            job = Job(job_id=f"job-{self._seq:06d}", kind=kind,
                      worker=worker, specs=[dict(s) for s in specs],
                      options=dict(options or {}))
            self._append({"event": "submit", "job": job.job_id,
                          "kind": kind, "worker": worker,
                          "specs": job.specs, "options": job.options})
            self.jobs[job.job_id] = job
            self._order.append(job.job_id)
        self._emit("submit", job.describe())
        return job

    def claim(self, job_id: str, index: int) -> None:
        """Mark one point in-flight (not journaled: a crash while
        running leaves the point pending on replay, exactly right)."""
        with self._lock:
            job = self.jobs[job_id]
            job.point_status[index] = _RUNNING
            if job.status == "queued":
                job.status = "running"
            kind = job.kind
        self._emit("claim", {"job": job_id, "index": index,
                             "kind": kind})

    def record_point(self, job_id: str, index: int, result: Any,
                     error: bool, attempts: int) -> None:
        """Journal one point's completion (result inline)."""
        status = _ERROR if error else _DONE
        with self._lock:
            self._append({"event": "point", "job": job_id,
                          "index": index, "status": status,
                          "result": result, "attempts": attempts})
            job = self.jobs[job_id]
            job.point_status[index] = status
            job.results[index] = result
            job.attempts[index] = attempts
            finished = job.finished
            if finished and job.status != "done":
                self._append({"event": "done", "job": job_id})
                job.status = "done"
            kind = job.kind
        self._emit("point", {"job": job_id, "index": index,
                             "status": status, "attempts": attempts,
                             "kind": kind})
        if finished:
            self._emit("done", self.jobs[job_id].describe())

    # -- views --------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self.jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job {job_id!r}") from None

    def list_jobs(self) -> list[dict]:
        with self._lock:
            return [self.jobs[j].describe() for j in self._order]

    def open_jobs(self) -> list[Job]:
        """Jobs with uncomputed points, in submission order — the
        dispatcher's work list (and the resume set after a restart)."""
        with self._lock:
            return [self.jobs[j] for j in self._order
                    if not self.jobs[j].finished]

    def depth(self) -> int:
        """Points not yet completed across all jobs (the queue-depth
        gauge ``GET /metrics`` exposes)."""
        with self._lock:
            return sum(job.total - job.completed
                       for job in self.jobs.values())

    def _emit(self, kind: str, payload: dict) -> None:
        hook = self.on_event
        if hook is not None:
            try:
                hook(kind, payload)
            except Exception:  # listeners must never break the queue
                pass
