"""Deterministic fan-out of independent sweep points.

Every harness artefact (Fig 8/9/10, Table 1, the autotune survey) is a
grid of *independent* simulations, each fully described by a small
JSON-able spec dict.  :func:`sweep` maps a picklable worker over such a
grid, optionally through a :class:`~repro.harness.cache.ResultCache`,
and returns results **in spec order** regardless of completion order —
so a serial run, a parallel run, and a warm-cache run produce
byte-identical reports.

Contract for workers:

* a module-level function (picklable by reference) taking one spec dict;
* returns a JSON-able dict of primitives — no tuples, no objects — so
  the value survives both the pickle hop from a pool worker and the
  JSON round-trip through the cache without changing shape.

A sweep never dies with its points: a worker that raises — or a pool
process that is killed outright — yields an *error record* (see
:func:`is_error_record`) in that point's slot, and every other point
still completes.  Error records are never written to the cache, so a
repaired run recomputes exactly the failed points.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Optional, Sequence

from repro.harness.cache import ResultCache

__all__ = ["resolve_jobs", "sweep", "is_error_record", "error_record"]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Worker-count policy: None/0 → one per CPU, else the given count."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    return jobs


def error_record(spec: dict, exc: BaseException,
                 message: Optional[str] = None) -> dict:
    """Structured record for a sweep point that could not be computed."""
    return {"sweep_error": {
        "type": type(exc).__name__,
        "message": message if message is not None else str(exc),
        "spec": spec,
    }}


def is_error_record(result: Any) -> bool:
    """True for the error records :func:`sweep` leaves in failed slots."""
    return isinstance(result, dict) and "sweep_error" in result


def sweep(worker: Callable[[dict], Any], specs: Sequence[dict],
          jobs: Optional[int] = None,
          cache: Optional[ResultCache] = None,
          kind: str = "sweep") -> list[Any]:
    """``[worker(s) for s in specs]``, cached, fanned out, crash-proof.

    Cache lookups and stores happen here in the parent — pool workers
    never touch the cache directory, so no locking is needed and the
    hit/miss counters are exact.  ``jobs=1`` (or a one-point grid) runs
    inline with no pool at all; results are identical either way because
    each point is an isolated simulation.

    A point whose worker raises (or whose pool process dies) comes back
    as an error record instead of aborting the sweep; the figure code
    skips such slots and reports a partial result.
    """
    results: list[Any] = [None] * len(specs)
    todo: list[int] = []
    for i, spec in enumerate(specs):
        if cache is not None:
            hit = cache.get(kind, spec)
            if hit is not None:
                results[i] = hit
                continue
        todo.append(i)

    njobs = resolve_jobs(jobs)
    if todo:
        pending = [specs[i] for i in todo]
        if njobs <= 1 or len(todo) == 1:
            computed = [_run_inline(worker, spec) for spec in pending]
        else:
            computed = _run_pool(worker, pending, njobs)
        for i, result in zip(todo, computed):
            if cache is not None and not is_error_record(result):
                cache.put(kind, specs[i], result)
            results[i] = result
    return results


def _run_inline(worker: Callable[[dict], Any], spec: dict) -> Any:
    try:
        return worker(spec)
    except Exception as exc:
        return error_record(spec, exc)


def _run_pool(worker: Callable[[dict], Any], pending: list[dict],
              njobs: int) -> list[Any]:
    """Fan ``pending`` over a process pool, isolating failures per slot."""
    computed: list[Any] = [None] * len(pending)
    broken: list[int] = []
    with ProcessPoolExecutor(max_workers=min(njobs, len(pending))) as pool:
        futures = [(pool.submit(worker, spec), k)
                   for k, spec in enumerate(pending)]
        for fut, k in futures:
            try:
                computed[k] = fut.result()
            except BrokenProcessPool:
                # A killed worker process poisons the *whole* pool:
                # every still-pending future fails with this, no matter
                # which spec actually crashed.  Defer them all.
                broken.append(k)
            except Exception as exc:
                computed[k] = error_record(pending[k], exc)
    # Isolation round: rerun each deferred point in its own one-worker
    # pool, so only the spec that genuinely kills its interpreter ends
    # up as an error record — innocent bystanders just recompute.
    for k in broken:
        computed[k] = _run_isolated(worker, pending[k])
    return computed


def _run_isolated(worker: Callable[[dict], Any], spec: dict) -> Any:
    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(worker, spec).result()
    except BrokenProcessPool as exc:
        return error_record(
            spec, exc, "worker process died (killed, or it crashed "
            "the interpreter) while computing this point")
    except Exception as exc:
        return error_record(spec, exc)
