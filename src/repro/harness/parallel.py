"""Deterministic fan-out of independent sweep points.

Every harness artefact (Fig 8/9/10, Table 1, the autotune survey) is a
grid of *independent* simulations, each fully described by a small
JSON-able spec dict.  :func:`sweep` maps a picklable worker over such a
grid, optionally through a :class:`~repro.harness.cache.ResultCache`,
and returns results **in spec order** regardless of completion order —
so a serial run, a parallel run, and a warm-cache run produce
byte-identical reports.

Contract for workers:

* a module-level function (picklable by reference) taking one spec dict;
* returns a JSON-able dict of primitives — no tuples, no objects — so
  the value survives both the pickle hop from a pool worker and the
  JSON round-trip through the cache without changing shape.

A sweep never dies with its points: a worker that raises — or a pool
process that is killed outright — yields an *error record* (see
:func:`is_error_record`) in that point's slot, and every other point
still completes.  Error records are never written to the cache, so a
repaired run recomputes exactly the failed points.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.harness.cache import ResultCache

__all__ = ["resolve_jobs", "sweep", "measured_sweep",
           "is_error_record", "error_record", "PointTimeout",
           "WorkerDied", "RetryPolicy", "run_reaped",
           "compute_with_retry", "compute_point"]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Worker-count policy: None/0 → one per CPU, else the given count."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    return jobs


def error_record(spec: dict, exc: BaseException,
                 message: Optional[str] = None) -> dict:
    """Structured record for a sweep point that could not be computed."""
    return {"sweep_error": {
        "type": type(exc).__name__,
        "message": message if message is not None else str(exc),
        "spec": spec,
    }}


def is_error_record(result: Any) -> bool:
    """True for the error records :func:`sweep` leaves in failed slots."""
    return isinstance(result, dict) and "sweep_error" in result


def sweep(worker: Callable[[dict], Any], specs: Sequence[dict],
          jobs: Optional[int] = None,
          cache: Optional[ResultCache] = None,
          kind: str = "sweep",
          telemetry=None) -> list[Any]:
    """``[worker(s) for s in specs]``, cached, fanned out, crash-proof.

    Cache lookups and stores happen here in the parent — pool workers
    never touch the cache directory, so no locking is needed and the
    hit/miss counters are exact.  ``jobs=1`` (or a one-point grid) runs
    inline with no pool at all; results are identical either way because
    each point is an isolated simulation.

    A point whose worker raises (or whose pool process dies) comes back
    as an error record instead of aborting the sweep; the figure code
    skips such slots and reports a partial result.

    ``telemetry`` (a :class:`repro.obs.telemetry.Telemetry`, or None)
    receives the same lifecycle spans the sweep service emits — every
    point goes queued → claimed → running → stored/error, so a serial
    run, a ``-j N`` run, and a daemon job over the same grid produce
    the same span *structure*.  ``None`` (the default) is the zero-cost
    path: not a single extra attribute lookup per point.
    """
    if telemetry is not None:
        telemetry.job_submitted("sweep", kind, len(specs))
    results: list[Any] = [None] * len(specs)
    todo: list[int] = []
    for i, spec in enumerate(specs):
        if cache is not None:
            hit = cache.get(kind, spec)
            if hit is not None:
                results[i] = hit
                continue
        todo.append(i)

    njobs = resolve_jobs(jobs)
    if todo:
        pending = [specs[i] for i in todo]
        if njobs <= 1 or len(todo) == 1:
            computed = []
            for k, spec in enumerate(pending):
                computed.append(_run_one_traced(
                    worker, spec, telemetry, kind, todo[k]))
        else:
            if telemetry is not None:
                # terminal spans are emitted in spec order below —
                # completion order inside the pool is a wall-clock
                # accident the span structure must not record
                for i in todo:
                    telemetry.point_claimed("sweep", i, kind)
                    telemetry.point_running("sweep", i, kind)
            computed = _run_pool(worker, pending, njobs)
            if telemetry is not None:
                for i, result in zip(todo, computed):
                    telemetry.point_done(
                        "sweep", i, kind,
                        error=is_error_record(result))
        for i, result in zip(todo, computed):
            if cache is not None and not is_error_record(result):
                cache.put(kind, specs[i], result)
            results[i] = result
    if telemetry is not None:
        todo_set = set(todo)
        for i, result in enumerate(results):
            if i not in todo_set:  # warm-cache point: instant lifecycle
                telemetry.point_claimed("sweep", i, kind)
                telemetry.point_running("sweep", i, kind)
                telemetry.point_done("sweep", i, kind,
                                     error=is_error_record(result))
        telemetry.job_done("sweep", kind)
    return results


def _run_one_traced(worker: Callable[[dict], Any], spec: dict,
                    telemetry, kind: str, index: int) -> Any:
    """Inline execution with per-point lifecycle spans."""
    if telemetry is not None:
        telemetry.point_claimed("sweep", index, kind)
        telemetry.point_running("sweep", index, kind)
    result = _run_inline(worker, spec)
    if telemetry is not None:
        telemetry.point_done("sweep", index, kind,
                             error=is_error_record(result))
    return result


def _run_inline(worker: Callable[[dict], Any], spec: dict) -> Any:
    try:
        return worker(spec)
    except Exception as exc:
        return error_record(spec, exc)


def _run_pool(worker: Callable[[dict], Any], pending: list[dict],
              njobs: int) -> list[Any]:
    """Fan ``pending`` over a process pool, isolating failures per slot."""
    computed: list[Any] = [None] * len(pending)
    broken: list[int] = []
    with ProcessPoolExecutor(max_workers=min(njobs, len(pending))) as pool:
        futures = [(pool.submit(worker, spec), k)
                   for k, spec in enumerate(pending)]
        for fut, k in futures:
            try:
                computed[k] = fut.result()
            except BrokenProcessPool:
                # A killed worker process poisons the *whole* pool:
                # every still-pending future fails with this, no matter
                # which spec actually crashed.  Defer them all.
                broken.append(k)
            except Exception as exc:
                computed[k] = error_record(pending[k], exc)
    # Isolation round: rerun each deferred point in its own one-worker
    # pool, so only the spec that genuinely kills its interpreter ends
    # up as an error record — innocent bystanders just recompute.
    for k in broken:
        computed[k] = _run_isolated(worker, pending[k])
    return computed


def _run_isolated(worker: Callable[[dict], Any], spec: dict) -> Any:
    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(worker, spec).result()
    except BrokenProcessPool as exc:
        return error_record(
            spec, exc, "worker process died (killed, or it crashed "
            "the interpreter) while computing this point")
    except Exception as exc:
        return error_record(spec, exc)


def measured_sweep(worker: Callable[[dict], Any],
                   specs: Sequence[dict],
                   measure: Optional[dict] = None,
                   jobs: Optional[int] = None,
                   cache: Optional[ResultCache] = None,
                   kind: str = "sweep",
                   telemetry=None) -> list[Any]:
    """:func:`sweep` with Hunold & Carpen-Amarie adaptive repetitions.

    ``measure`` is a :class:`~repro.harness.stats.MeasurePolicy` dict
    (``min_reps``/``max_reps``/``target_rel_ci``/``confidence``);
    ``None`` or ``max_reps=1`` delegates straight to :func:`sweep` —
    the zero-cost single-shot path.  Otherwise each point runs its
    repetition loop: rep 0 is the bare spec (shared cache address with
    plain sweeps), later reps are salted via
    :func:`~repro.harness.stats.rep_spec`, and the final row (plus its
    embedded ``report``, when present) carries the ``stats`` record —
    the same shape the sweep service attaches for measured jobs.

    Repetitions of one point run *inside* that point's slot, so the
    fan-out over points is unchanged; each rep is cached individually
    and a warm rerun replays the identical samples (determinism: the
    stats of a rerun are byte-identical).
    """
    from repro.harness.stats import (MeasurePolicy, rep_spec, sample_of,
                                     should_stop, summarize_samples)
    policy = MeasurePolicy.from_dict(measure)
    if policy.single_shot:
        return sweep(worker, specs, jobs=jobs, cache=cache, kind=kind,
                     telemetry=telemetry)

    results: list[Any] = list(
        sweep(worker, specs, jobs=jobs, cache=cache, kind=kind,
              telemetry=telemetry))
    for i, base in enumerate(results):
        if is_error_record(base) or sample_of(base) is None:
            continue  # nothing measurable: deliver the plain row
        samples = [sample_of(base)]
        rep = 1
        while not should_stop(samples, policy):
            salted = rep_spec(specs[i], rep)
            result = None
            if cache is not None:
                result = cache.get(kind, salted)
            if result is None:
                result = _run_inline(worker, salted)
                if cache is not None and not is_error_record(result):
                    cache.put(kind, salted, result)
            if is_error_record(result):
                break
            sample = sample_of(result)
            if sample is None:
                break
            samples.append(sample)
            rep += 1
        stats = summarize_samples(samples, policy.confidence)
        final = dict(base)
        final["stats"] = stats
        if isinstance(final.get("report"), dict):
            report = dict(final["report"])
            report["stats"] = stats
            final["report"] = report
        results[i] = final
    return results


# ---------------------------------------------------------------------------
# reapable single-point execution (the sweep service's unit of work)
# ---------------------------------------------------------------------------
class PointTimeout(Exception):
    """A sweep point overran its wall-clock budget and was reaped."""


class WorkerDied(Exception):
    """The point's worker process exited without producing a result
    (killed from outside, or it crashed the interpreter)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry/backoff knobs for one point's execution.

    ``timeout_s=None`` disables reaping (a point may run forever);
    ``retries`` counts *additional* attempts after the first, taken only
    for infrastructure failures (timeout, killed worker) — a worker that
    raises an ordinary exception fails deterministically and is never
    retried.  The delay before attempt *k* (0-based retry index) is
    ``min(backoff_cap_s, backoff_s * 2**k)``.
    """

    timeout_s: Optional[float] = None
    retries: int = 2
    backoff_s: float = 0.1
    backoff_cap_s: float = 5.0

    def __post_init__(self):
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(
                f"timeout_s must be positive, got {self.timeout_s}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff_s and backoff_cap_s must be >= 0")

    def delay(self, retry_index: int) -> float:
        return min(self.backoff_cap_s, self.backoff_s * (2 ** retry_index))


def _point_child(worker: Callable[[dict], Any], spec: dict, conn) -> None:
    """Child-process body: compute one point, ship the outcome back."""
    # Local alias: this is a multiprocessing pipe, not a simulation
    # coroutine — the alias also keeps the self-lint (CLM001) focused on
    # real sim-API misuse.
    ship = conn.send
    try:
        try:
            ship(("ok", worker(spec)))
        except Exception as exc:
            ship(("error", error_record(spec, exc)))
    finally:
        conn.close()


def run_reaped(worker: Callable[[dict], Any], spec: dict,
               timeout_s: Optional[float] = None) -> Any:
    """One point in a fresh process with a hard wall-clock deadline.

    Returns the worker's result (or its error record, if it raised).
    A point still running at the deadline is SIGKILLed and raises
    :class:`PointTimeout`; a worker that dies without reporting (killed
    from outside, interpreter crash) raises :class:`WorkerDied`.  Either
    way the stuck/poisoned process is reaped — a hung worker can never
    hang the caller.
    """
    ctx = multiprocessing.get_context()
    parent, child = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_point_child, args=(worker, spec, child),
                       daemon=True)
    proc.start()
    child.close()
    deadline = None if timeout_s is None else time.monotonic() + timeout_s
    try:
        while True:
            if parent.poll(0.02):
                try:
                    status, payload = parent.recv()
                except (EOFError, OSError) as exc:
                    proc.join()
                    raise WorkerDied(
                        f"worker exited (code {proc.exitcode}) without "
                        "a result") from exc
                proc.join()
                return payload
            if not proc.is_alive():
                # drain the race window between poll() and is_alive()
                if parent.poll(0):
                    try:
                        status, payload = parent.recv()
                        proc.join()
                        return payload
                    except (EOFError, OSError):
                        pass
                proc.join()
                raise WorkerDied(
                    f"worker exited (code {proc.exitcode}) without "
                    "a result")
            if deadline is not None and time.monotonic() >= deadline:
                proc.kill()
                proc.join()
                raise PointTimeout(
                    f"point exceeded its {timeout_s}s budget and was "
                    "reaped")
    finally:
        parent.close()
        if proc.is_alive():  # pragma: no cover - belt and braces
            proc.kill()
            proc.join()


def compute_with_retry(worker: Callable[[dict], Any], spec: dict,
                       policy: RetryPolicy,
                       sleep: Callable[[float], None] = time.sleep,
                       on_failure: Optional[
                           Callable[[str, int, bool], None]] = None
                       ) -> tuple[Any, dict]:
    """Run one point under ``policy``; returns ``(result, meta)``.

    ``meta`` records ``attempts`` (total launches) and ``failures``
    (the infrastructure failures that forced each retry: ``"timeout"``
    or ``"died"``).  After the retry budget is spent the point comes
    back as an error record — never an exception, and never a hang:
    this is the graceful-degradation contract the sweep service builds
    on.  Deterministic worker errors (error records) return on the
    first attempt, unretried.

    ``on_failure(failure, attempt, will_retry)`` — when given — fires
    after each reaped attempt (``failure`` is ``"timeout"`` or
    ``"died"``, ``attempt`` is 1-based), letting the caller emit
    reaped/retried telemetry spans without polling.  Callback errors
    are swallowed: observability must never change a point's outcome.
    """
    failures: list[str] = []
    for attempt in range(policy.retries + 1):
        try:
            result = run_reaped(worker, spec, policy.timeout_s)
        except PointTimeout:
            failures.append("timeout")
        except WorkerDied:
            failures.append("died")
        else:
            return result, {"attempts": attempt + 1, "failures": failures}
        if on_failure is not None:
            try:
                on_failure(failures[-1], attempt + 1,
                           attempt < policy.retries)
            except Exception:
                pass
        if attempt < policy.retries:
            delay = policy.delay(attempt)
            if delay > 0:
                sleep(delay)
    kinds = ", ".join(failures)
    record = error_record(
        spec, PointTimeout(kinds),
        f"point failed {len(failures)} attempt(s) ({kinds}) and "
        "exhausted its retry budget")
    record["sweep_error"]["type"] = \
        "PointTimeout" if failures[-1] == "timeout" else "WorkerDied"
    return record, {"attempts": policy.retries + 1, "failures": failures}


def compute_point(worker: Callable[[dict], Any], spec: dict,
                  policy: RetryPolicy,
                  measure: Optional[dict] = None,
                  store=None, kind: str = "sweep",
                  on_failure: Optional[Callable] = None
                  ) -> tuple[Any, int]:
    """One sweep point end-to-end: store lookup, reaped execution with
    retry/backoff, and — when ``measure`` asks for repetitions — the
    Hunold & Carpen-Amarie adaptive-measurement loop.

    Returns ``(result, attempts)`` where ``attempts`` is the worst
    per-rep launch count (0 for a pure store hit).  This is the shared
    unit of work behind both the sweep service's local executor and the
    federation agents (:mod:`repro.harness.federation`): the daemon
    passes its :class:`~repro.harness.cache.SharedStore`, an agent
    passes ``store=None`` and lets the coordinator arbitrate storage —
    either way the computed rows are byte-identical.
    """
    from repro.harness.stats import (MeasurePolicy, rep_spec, sample_of,
                                     should_stop, summarize_samples)

    def one(point_spec: dict) -> tuple[Any, int]:
        if store is not None:
            cached = store.get(kind, point_spec)
            if cached is not None:
                return cached, 0
        result, meta = compute_with_retry(worker, point_spec, policy,
                                          on_failure=on_failure)
        if store is not None and not is_error_record(result):
            store.put(kind, point_spec, result)
        return result, meta["attempts"]

    policy_m = MeasurePolicy.from_dict(measure)
    if policy_m.single_shot:
        # the zero-cost path: no sampling, no stats arithmetic
        return one(spec)
    samples: list[float] = []
    base: Optional[dict] = None
    attempts_total = 0
    rep = 0
    while True:
        result, attempts = one(rep_spec(spec, rep))
        attempts_total = max(attempts_total, attempts)
        if is_error_record(result):
            return result, attempts_total
        sample = sample_of(result)
        if sample is None:
            # nothing measurable in this worker's rows: stats are
            # impossible, deliver the plain result
            return result, attempts_total
        if rep == 0:
            base = result
        samples.append(sample)
        rep += 1
        if should_stop(samples, policy_m):
            break
    final = dict(base)
    stats = summarize_samples(samples, policy_m.confidence)
    final["stats"] = stats
    if isinstance(final.get("report"), dict):
        report = dict(final["report"])
        report["stats"] = stats
        final["report"] = report
    return final, attempts_total
