"""Deterministic fan-out of independent sweep points.

Every harness artefact (Fig 8/9/10, Table 1, the autotune survey) is a
grid of *independent* simulations, each fully described by a small
JSON-able spec dict.  :func:`sweep` maps a picklable worker over such a
grid, optionally through a :class:`~repro.harness.cache.ResultCache`,
and returns results **in spec order** regardless of completion order —
so a serial run, a parallel run, and a warm-cache run produce
byte-identical reports.

Contract for workers:

* a module-level function (picklable by reference) taking one spec dict;
* returns a JSON-able dict of primitives — no tuples, no objects — so
  the value survives both the pickle hop from a pool worker and the
  JSON round-trip through the cache without changing shape.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Optional, Sequence

from repro.harness.cache import ResultCache

__all__ = ["resolve_jobs", "sweep"]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Worker-count policy: None/0 → one per CPU, else the given count."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    return jobs


def sweep(worker: Callable[[dict], Any], specs: Sequence[dict],
          jobs: Optional[int] = None,
          cache: Optional[ResultCache] = None,
          kind: str = "sweep") -> list[Any]:
    """``[worker(s) for s in specs]``, cached and fanned out.

    Cache lookups and stores happen here in the parent — pool workers
    never touch the cache directory, so no locking is needed and the
    hit/miss counters are exact.  ``jobs=1`` (or a one-point grid) runs
    inline with no pool at all; results are identical either way because
    each point is an isolated simulation.
    """
    results: list[Any] = [None] * len(specs)
    todo: list[int] = []
    for i, spec in enumerate(specs):
        if cache is not None:
            hit = cache.get(kind, spec)
            if hit is not None:
                results[i] = hit
                continue
        todo.append(i)

    njobs = resolve_jobs(jobs)
    if todo:
        if njobs <= 1 or len(todo) == 1:
            computed = [worker(specs[i]) for i in todo]
        else:
            with ProcessPoolExecutor(max_workers=min(njobs,
                                                     len(todo))) as pool:
                computed = list(pool.map(worker, [specs[i] for i in todo]))
        for i, result in zip(todo, computed):
            if cache is not None:
                cache.put(kind, specs[i], result)
            results[i] = result
    return results
