"""CUDA-flavoured facade over the simulated runtime (§VI).

The paper argues its extension "could be trivially extrapolated to other
programming models such as CUDA".  This package demonstrates that claim:
a CUDA-style API — streams, events, ``memcpy_*_async``, kernel launches —
implemented on the very same device/queue/event substrate, plus
*stream-enqueued inter-node transfers* (:func:`send_async` /
:func:`recv_async`) that reuse the clMPI runtime unchanged.  Only the
programming-model surface differs; the communicator-device semantics,
transfer engines, and selector carry over verbatim.

As everywhere in this repository, potentially blocking calls are
simulation coroutines (``yield from``).
"""

from repro.cuda.api import (
    CudaEvent,
    DeviceArray,
    Stream,
    launch_kernel,
    malloc,
    memcpy_dtoh_async,
    memcpy_htod_async,
    recv_async,
    send_async,
)

__all__ = [
    "Stream",
    "CudaEvent",
    "DeviceArray",
    "malloc",
    "memcpy_htod_async",
    "memcpy_dtoh_async",
    "launch_kernel",
    "send_async",
    "recv_async",
]
