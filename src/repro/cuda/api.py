"""The CUDA-style API surface.

Mapping (CUDA concept → substrate object):

* stream           → in-order :class:`~repro.ocl.queue.CommandQueue`
* event            → queue marker (``cudaEventRecord`` records a point in
  the stream; ``cudaStreamWaitEvent`` makes later work wait on it)
* device pointer   → :class:`DeviceArray` wrapping a
  :class:`~repro.ocl.buffer.Buffer`
* ``cudaMemcpyAsync`` → read/write buffer commands
* kernel launch    → NDRange command with the shared
  :class:`~repro.ocl.kernel.Kernel` objects
* clMPI-for-CUDA   → :func:`send_async` / :func:`recv_async`, delegating
  to the *same* :class:`~repro.clmpi.ClmpiRuntime`
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from repro.errors import OclError
from repro.launcher import RankContext
from repro.ocl.buffer import Buffer
from repro.ocl.enums import CommandStatus
from repro.ocl.event import CLEvent
from repro.ocl.kernel import Kernel

__all__ = ["Stream", "CudaEvent", "DeviceArray", "malloc",
           "memcpy_htod_async", "memcpy_dtoh_async", "launch_kernel",
           "send_async", "recv_async"]


class DeviceArray:
    """A device allocation (``CUdeviceptr`` stand-in)."""

    def __init__(self, buffer: Buffer, nbytes: int):
        self.buffer = buffer
        self.nbytes = nbytes

    def view(self, dtype, shape=None) -> np.ndarray:
        """Typed NumPy view (simulator-side inspection)."""
        return self.buffer.view(dtype, shape)

    def free(self) -> None:
        """``cudaFree``."""
        self.buffer.release()


class CudaEvent:
    """``cudaEvent_t``: a recorded point in a stream."""

    def __init__(self, ctx: RankContext):
        self._ctx = ctx
        self._marker: Optional[CLEvent] = None

    @property
    def recorded(self) -> bool:
        return self._marker is not None

    @property
    def done(self) -> bool:
        """``cudaEventQuery`` == cudaSuccess."""
        return self._marker is not None and self._marker.is_complete

    def record(self, stream: "Stream") -> Generator[Any, Any, None]:
        """``cudaEventRecord``: capture the stream's current tail."""
        self._marker = yield from stream.queue.enqueue_marker()

    def synchronize(self) -> Generator[Any, Any, None]:
        """``cudaEventSynchronize`` (blocks the host thread)."""
        if self._marker is None:
            raise OclError("CL_INVALID_EVENT", "event was never recorded")
        yield self._marker.completion
        yield from self._ctx.node.host.sync_wakeup()

    def elapsed_time(self, other: "CudaEvent") -> float:
        """``cudaEventElapsedTime`` (seconds, not ms — we are honest)."""
        if self._marker is None or other._marker is None:
            raise OclError("CL_INVALID_EVENT", "both events must be recorded")
        return (other._marker.profile[CommandStatus.COMPLETE]
                - self._marker.profile[CommandStatus.COMPLETE])

    @property
    def cl_event(self) -> CLEvent:
        """Escape hatch to the substrate event (for mixed wait lists)."""
        if self._marker is None:
            raise OclError("CL_INVALID_EVENT", "event was never recorded")
        return self._marker


class Stream:
    """``cudaStream_t``: an in-order execution lane on one device."""

    def __init__(self, ctx: RankContext, name: str = ""):
        self._ctx = ctx
        self.queue = ctx.ocl.create_queue(in_order=True,
                                          name=name or "cuda-stream")
        self._gate: tuple[CLEvent, ...] = ()

    def wait_event(self, event: CudaEvent) -> None:
        """``cudaStreamWaitEvent``: all later work in this stream waits
        for ``event`` (no host blocking)."""
        self._gate = self._gate + (event.cl_event,)

    def _take_gate(self) -> tuple[CLEvent, ...]:
        gate, self._gate = self._gate, ()
        return gate

    def synchronize(self) -> Generator[Any, Any, None]:
        """``cudaStreamSynchronize``."""
        yield from self.queue.finish()


def malloc(ctx: RankContext, nbytes: int, name: str = "") -> DeviceArray:
    """``cudaMalloc``."""
    return DeviceArray(ctx.ocl.create_buffer(nbytes, name=name), nbytes)


def memcpy_htod_async(stream: Stream, dst: DeviceArray,
                      src: Optional[np.ndarray],
                      nbytes: Optional[int] = None
                      ) -> Generator[Any, Any, CLEvent]:
    """``cudaMemcpyAsync(..., cudaMemcpyHostToDevice, stream)``."""
    nbytes = dst.nbytes if nbytes is None else nbytes
    return (yield from stream.queue.enqueue_write_buffer(
        dst.buffer, False, 0, nbytes, src, wait_for=stream._take_gate()))


def memcpy_dtoh_async(stream: Stream, dst: Optional[np.ndarray],
                      src: DeviceArray, nbytes: Optional[int] = None
                      ) -> Generator[Any, Any, CLEvent]:
    """``cudaMemcpyAsync(..., cudaMemcpyDeviceToHost, stream)``."""
    nbytes = src.nbytes if nbytes is None else nbytes
    return (yield from stream.queue.enqueue_read_buffer(
        src.buffer, False, 0, nbytes, dst, wait_for=stream._take_gate()))


def launch_kernel(stream: Stream, kernel: Kernel, *args
                  ) -> Generator[Any, Any, CLEvent]:
    """``kernel<<<grid, block, 0, stream>>>(args...)``."""
    mapped = tuple(a.buffer if isinstance(a, DeviceArray) else a
                   for a in args)
    return (yield from stream.queue.enqueue_nd_range_kernel(
        kernel, mapped, wait_for=stream._take_gate()))


def send_async(stream: Stream, src: DeviceArray, dest: int, tag: int
               ) -> Generator[Any, Any, CLEvent]:
    """The clMPI idea in CUDA clothes: enqueue an inter-node send on a
    stream.  Uses the rank's ClmpiRuntime — engines, selector and all."""
    from repro.clmpi import enqueue_send_buffer
    ctx = stream._ctx
    return (yield from enqueue_send_buffer(
        stream.queue, src.buffer, False, 0, src.nbytes, dest, tag,
        ctx.comm, wait_for=stream._take_gate()))


def recv_async(stream: Stream, dst: DeviceArray, source: int, tag: int
               ) -> Generator[Any, Any, CLEvent]:
    """Stream-enqueued inter-node receive (see :func:`send_async`)."""
    from repro.clmpi import enqueue_recv_buffer
    ctx = stream._ctx
    return (yield from enqueue_recv_buffer(
        stream.queue, dst.buffer, False, 0, dst.nbytes, source, tag,
        ctx.comm, wait_for=stream._take_gate()))
